//! The event-driven HTTP server.
//!
//! One loop thread owns every socket through a readiness poller
//! (`epoll` on Linux, portable `poll(2)` elsewhere — see
//! [`sys`](crate::sys)); nonblocking reads feed a per-connection
//! incremental parser, decoded requests dispatch onto a small worker
//! pool, and responses drain back through nonblocking writes. The full
//! state machine, timer wheel, and backpressure rules live in
//! [`event`](crate::event); this module keeps the stable surface:
//! [`ServerConfig`], [`HttpServer::bind`], and graceful
//! [`shutdown`](HttpServer::shutdown).
//!
//! Compared to the original thread-per-connection pool, concurrency is
//! no longer bounded by worker count: ten thousand idle keep-alive
//! connections cost ten thousand registered file descriptors and some
//! buffers, not ten thousand blocked threads. A connection consumes a
//! worker only while its request handler runs.
//!
//! The server still enacts [`ConnectionFault`]s from a seeded
//! [`ConnectionFaultSchedule`] — refuse-on-accept, stalls, truncated
//! responses — which is how `pe-net`'s resilience tests drive the client
//! through real wire failures.
//!
//! [`ConnectionFault`]: pe_cloud::fault::ConnectionFault
//! [`ConnectionFaultSchedule`]: pe_cloud::fault::ConnectionFaultSchedule

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use pe_cloud::fault::ConnectionFaultSchedule;

use crate::event::{self, EventServer, LoopConfig, LoopShared};
use crate::Service;

/// Tuning knobs for [`HttpServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads running request handlers. `0` runs handlers inline
    /// on the event loop: lowest latency, but a slow handler then stalls
    /// every connection — only for services known to be fast.
    pub workers: usize,
    /// Bound of the decoded-request dispatch queue. When full, further
    /// complete requests park their connections (reads masked) until a
    /// worker frees up — backpressure instead of unbounded queueing.
    pub accept_backlog: usize,
    /// Read budget: how long a keep-alive connection may sit idle, and
    /// how long a request may take from its *first byte* to a complete
    /// parse. The request deadline is not extended by trickling bytes,
    /// so slow-loris clients are closed on schedule.
    pub read_timeout: Duration,
    /// How long a response flush may remain unfinished.
    pub write_timeout: Duration,
    /// Budget for a *parked* long-poll subscription (a service returned
    /// [`Served::Parked`](crate::Served::Parked)). Deliberately separate
    /// from `read_timeout`: a parked subscriber has already delivered a
    /// complete request and is not a slow-loris, so it may outlive the
    /// request deadline; when this budget expires the service's timeout
    /// response is sent and the connection continues normally.
    pub subscription_timeout: Duration,
    /// Whether to honor keep-alive (false forces one request per
    /// connection).
    pub keep_alive: bool,
    /// Maximum concurrently open connections. At the cap the listener is
    /// unarmed (pending connections wait in the kernel backlog) and
    /// re-armed as connections close.
    pub max_conns: usize,
    /// Use the portable `poll(2)` backend even where `epoll` is
    /// available (tests / comparison runs). Defaults to the
    /// `PE_NET_FORCE_POLL` environment variable.
    pub force_poll: bool,
    /// How long shutdown waits for in-flight requests to finish before
    /// force-closing their connections.
    pub drain: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            accept_backlog: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            subscription_timeout: Duration::from_secs(30),
            keep_alive: true,
            max_conns: 8192,
            force_poll: std::env::var_os("PE_NET_FORCE_POLL").is_some(),
            drain: Duration::from_secs(5),
        }
    }
}

/// A running HTTP server bound to a local address.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pe_cloud::docs::DocsServer;
/// use pe_net::{HttpServer, ServerConfig};
///
/// let server = HttpServer::bind(
///     "127.0.0.1:0",
///     Arc::new(DocsServer::new()),
///     ServerConfig::default(),
/// )
/// .unwrap();
/// let addr = server.local_addr();
/// // … point an HttpClient at `addr` …
/// server.shutdown();
/// # let _ = addr;
/// ```
pub struct HttpServer {
    addr: SocketAddr,
    inner: EventServer,
}

impl HttpServer {
    /// Binds to `addr` and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener or creating
    /// the readiness poller.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn Service>,
        config: ServerConfig,
    ) -> std::io::Result<HttpServer> {
        HttpServer::bind_with_faults(addr, service, config, None)
    }

    /// Like [`HttpServer::bind`] but enacting connection faults from
    /// `faults` (tests and resilience drills).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener or creating
    /// the readiness poller.
    pub fn bind_with_faults(
        addr: impl ToSocketAddrs,
        service: Arc<dyn Service>,
        config: ServerConfig,
        faults: Option<Arc<ConnectionFaultSchedule>>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = LoopShared {
            service,
            faults,
            shutdown: Arc::new(AtomicBool::new(false)),
            keep_alive: config.keep_alive,
        };
        let loop_config = LoopConfig {
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            subscription_timeout: config.subscription_timeout,
            max_conns: config.max_conns.max(1),
            queue: config.accept_backlog.max(1),
            workers: config.workers,
            force_poll: config.force_poll,
            drain: config.drain,
        };
        let inner = event::spawn(listener, shared, loop_config)?;
        Ok(HttpServer { addr, inner })
    }

    /// The address the server actually bound (resolves `:0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and blocks until every thread has exited.
    /// Accepting stops immediately; in-flight requests finish and flush
    /// (bounded by [`ServerConfig::drain`]); idle connections close.
    pub fn shutdown(mut self) {
        self.inner.begin_shutdown();
        if let Some(event_loop) = self.inner.loop_thread.take() {
            let _ = event_loop.join();
        }
        for worker in self.inner.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        // `shutdown()` takes self and joins; a plain drop still stops the
        // threads, just without blocking on them.
        self.inner.begin_shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use pe_cloud::docs::DocsServer;
    use pe_cloud::{Request, Response};
    use std::io::{BufReader, Write};
    use std::net::TcpStream;

    fn start(service: Arc<dyn Service>) -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            service,
            ServerConfig { read_timeout: Duration::from_millis(500), ..ServerConfig::default() },
        )
        .expect("bind loopback")
    }

    fn raw_exchange(addr: SocketAddr, request: &Request, keep_alive: bool) -> Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        let bytes = codec::request_bytes(request, keep_alive).unwrap();
        stream.write_all(&bytes).unwrap();
        let mut reader = BufReader::new(stream);
        codec::read_response(&mut reader).unwrap().response
    }

    #[test]
    fn serves_a_docs_request_over_a_socket() {
        let server = start(Arc::new(DocsServer::new()));
        let resp =
            raw_exchange(server.local_addr(), &Request::post("/Doc", &[("cmd", "create")], ""), false);
        assert!(resp.is_success());
        assert!(resp.body_text().unwrap().contains("docID"));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = start(Arc::new(DocsServer::new()));
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for _ in 0..3 {
            let bytes =
                codec::request_bytes(&Request::post("/Doc", &[("cmd", "create")], ""), true)
                    .unwrap();
            writer.write_all(&bytes).unwrap();
            let parsed = codec::read_response(&mut reader).unwrap();
            assert!(parsed.response.is_success());
            assert!(parsed.keep_alive);
        }
        server.shutdown();
    }

    #[test]
    fn malformed_input_gets_a_400_not_a_hang() {
        let server = start(Arc::new(DocsServer::new()));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let parsed = codec::read_response(&mut reader).unwrap();
        assert_eq!(parsed.response.status, 400);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_frees_the_port() {
        let server = start(Arc::new(DocsServer::new()));
        let addr = server.local_addr();
        server.shutdown();
        // The port is released: a new bind to the same address succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after shutdown: {rebind:?}");
    }

    #[test]
    fn inline_workers_zero_serves_requests() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(DocsServer::new()),
            ServerConfig { workers: 0, ..ServerConfig::default() },
        )
        .unwrap();
        let resp =
            raw_exchange(server.local_addr(), &Request::post("/Doc", &[("cmd", "create")], ""), false);
        assert!(resp.is_success());
        server.shutdown();
    }

    #[test]
    fn poll_backend_serves_requests_too() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(DocsServer::new()),
            ServerConfig { force_poll: true, ..ServerConfig::default() },
        )
        .unwrap();
        let resp =
            raw_exchange(server.local_addr(), &Request::post("/Doc", &[("cmd", "create")], ""), false);
        assert!(resp.is_success());
        server.shutdown();
    }

    /// A service that parks `/wait` requests. Wakers are stashed so the
    /// test controls exactly when (or whether) a subscriber is woken; on
    /// re-dispatch after a wake it answers immediately.
    struct ParkingService {
        wakers: std::sync::Mutex<Vec<crate::Waker>>,
        release: std::sync::atomic::AtomicBool,
    }

    impl ParkingService {
        fn new() -> ParkingService {
            ParkingService {
                wakers: std::sync::Mutex::new(Vec::new()),
                release: std::sync::atomic::AtomicBool::new(false),
            }
        }
    }

    impl crate::Service for ParkingService {
        fn call(&self, _request: &Request) -> Response {
            Response::ok("immediate")
        }

        fn call_deferred(&self, request: &Request, waker: crate::Waker) -> crate::Served {
            if request.path == "/wait" {
                if self.release.load(std::sync::atomic::Ordering::SeqCst) {
                    return crate::Served::Response(Response::ok("woken"));
                }
                self.wakers.lock().unwrap().push(waker);
                return crate::Served::Parked {
                    on_timeout: Response::ok("poll-timeout"),
                    wait: None,
                };
            }
            crate::Served::Response(self.call(request))
        }
    }

    #[test]
    fn parked_subscriber_outlives_request_deadline_while_slow_loris_dies() {
        let service = Arc::new(ParkingService::new());
        let server = HttpServer::bind(
            "127.0.0.1:0",
            service.clone(),
            ServerConfig {
                read_timeout: Duration::from_millis(300),
                subscription_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // The subscriber: a complete /wait request that the service parks.
        let mut sub = TcpStream::connect(addr).unwrap();
        sub.write_all(&codec::request_bytes(&Request::get("/wait", &[]), true).unwrap())
            .unwrap();

        // The slow-loris: dribbles a partial request and stalls.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"GET /wait HTT").unwrap();

        // Well past the 300 ms request deadline.
        std::thread::sleep(Duration::from_millis(900));

        // The slow-loris connection is dead: its write eventually fails
        // or its read returns EOF without a response.
        loris.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut buf = [0u8; 16];
        use std::io::Read;
        match loris.read(&mut buf) {
            Ok(0) => {} // clean close, no response bytes
            Ok(n) => panic!("slow-loris got {n} response bytes instead of a close"),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                panic!("slow-loris connection still open past the request deadline")
            }
            Err(_) => {} // reset — also closed
        }

        // The parked subscriber is still open; wake it and get the data.
        service.release.store(true, std::sync::atomic::Ordering::SeqCst);
        for waker in service.wakers.lock().unwrap().drain(..) {
            waker.wake();
        }
        sub.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = BufReader::new(sub);
        let parsed = codec::read_response(&mut reader).unwrap();
        assert_eq!(parsed.response.body_text(), Some("woken"));
        server.shutdown();
    }

    #[test]
    fn subscription_deadline_sends_timeout_response_and_keeps_the_connection() {
        let service = Arc::new(ParkingService::new());
        let server = HttpServer::bind(
            "127.0.0.1:0",
            service.clone(),
            ServerConfig {
                read_timeout: Duration::from_secs(5),
                subscription_timeout: Duration::from_millis(200),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer
            .write_all(&codec::request_bytes(&Request::get("/wait", &[]), true).unwrap())
            .unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = BufReader::new(stream);
        let parsed = codec::read_response(&mut reader).unwrap();
        assert_eq!(parsed.response.body_text(), Some("poll-timeout"));
        assert!(parsed.keep_alive, "connection survives a poll timeout");
        // The same connection serves an ordinary request afterwards.
        writer
            .write_all(&codec::request_bytes(&Request::get("/other", &[]), true).unwrap())
            .unwrap();
        let parsed = codec::read_response(&mut reader).unwrap();
        assert_eq!(parsed.response.body_text(), Some("immediate"));
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_all_get_responses() {
        let server = start(Arc::new(DocsServer::new()));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut burst = Vec::new();
        for _ in 0..3 {
            burst.extend_from_slice(
                &codec::request_bytes(&Request::post("/Doc", &[("cmd", "create")], ""), true)
                    .unwrap(),
            );
        }
        stream.write_all(&burst).unwrap();
        let mut reader = BufReader::new(stream);
        for _ in 0..3 {
            let parsed = codec::read_response(&mut reader).unwrap();
            assert!(parsed.response.is_success());
        }
        server.shutdown();
    }
}
