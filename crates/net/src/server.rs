//! The thread-pool HTTP server.
//!
//! One acceptor thread pushes connections into a bounded queue; a fixed
//! pool of workers drains it, each running the per-connection keep-alive
//! loop: read request → dispatch to the mounted [`Service`](crate::Service)
//! → write response, until the peer closes, a timeout fires, or the
//! server shuts down. Shutdown is graceful: in-flight requests finish,
//! the listener is woken with a loopback connect, and every thread is
//! joined.
//!
//! The server can enact [`ConnectionFault`]s from a seeded
//! [`ConnectionFaultSchedule`] — refuse-on-accept, stalls, truncated
//! responses — which is how `pe-net`'s resilience tests drive the client
//! through real wire failures.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pe_cloud::fault::{ConnectionFault, ConnectionFaultSchedule};
use pe_cloud::Response;

use crate::codec;
use crate::error::NetError;
use crate::Service;

/// Tuning knobs for [`HttpServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bound of the accepted-connection queue; connections arriving while
    /// it is full are closed immediately (load shedding).
    pub accept_backlog: usize,
    /// Per-connection read timeout (also bounds keep-alive idle time).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Whether to honor keep-alive (false forces one request per
    /// connection).
    pub keep_alive: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            accept_backlog: 128,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            keep_alive: true,
        }
    }
}

/// A running HTTP server bound to a local address.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pe_cloud::docs::DocsServer;
/// use pe_net::{HttpServer, ServerConfig};
///
/// let server = HttpServer::bind(
///     "127.0.0.1:0",
///     Arc::new(DocsServer::new()),
///     ServerConfig::default(),
/// )
/// .unwrap();
/// let addr = server.local_addr();
/// // … point an HttpClient at `addr` …
/// server.shutdown();
/// # let _ = addr;
/// ```
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

struct WorkerShared {
    service: Arc<dyn Service>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    faults: Option<Arc<ConnectionFaultSchedule>>,
}

impl HttpServer {
    /// Binds to `addr` and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<dyn Service>,
        config: ServerConfig,
    ) -> std::io::Result<HttpServer> {
        HttpServer::bind_with_faults(addr, service, config, None)
    }

    /// Like [`HttpServer::bind`] but enacting connection faults from
    /// `faults` (tests and resilience drills).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind_with_faults(
        addr: impl ToSocketAddrs,
        service: Arc<dyn Service>,
        config: ServerConfig,
        faults: Option<Arc<ConnectionFaultSchedule>>,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);
        let (sender, receiver) = std::sync::mpsc::sync_channel::<TcpStream>(
            config.accept_backlog.max(1),
        );
        let receiver = Arc::new(Mutex::new(receiver));
        let shared = Arc::new(WorkerShared {
            service,
            config,
            shutdown: Arc::clone(&shutdown),
            faults,
        });

        let worker_handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pe-net-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &shared))
                    .expect("spawn worker thread")
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pe-net-acceptor".into())
                .spawn(move || accept_loop(&listener, &sender, &shutdown, &shared))
                .expect("spawn acceptor thread")
        };

        Ok(HttpServer { addr, shutdown, acceptor: Some(acceptor), workers: worker_handles })
    }

    /// The address the server actually bound (resolves `:0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and blocks until every thread has exited.
    /// In-flight requests complete; queued-but-unserved connections are
    /// dropped.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        // `shutdown()` takes self and joins; a plain drop still stops the
        // threads, just without blocking on them.
        self.begin_shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    sender: &SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    shared: &WorkerShared,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        pe_observe::static_counter!("net.server.connections").inc();
        // Refuse-on-accept faults close the socket before any read.
        if let Some(schedule) = &shared.faults {
            if schedule.fault() == ConnectionFault::Refuse
                && schedule.next() == Some(ConnectionFault::Refuse)
            {
                pe_observe::static_counter!("net.server.faults.refused").inc();
                drop(stream);
                continue;
            }
        }
        match sender.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                // Bounded queue: shed load by closing the connection.
                pe_observe::static_counter!("net.server.accept_shed").inc();
                drop(stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<TcpStream>>, shared: &WorkerShared) {
    loop {
        let next = {
            let receiver = receiver.lock().unwrap_or_else(|e| e.into_inner());
            receiver.recv_timeout(Duration::from_millis(50))
        };
        match next {
            Ok(stream) => handle_connection(stream, shared),
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The per-connection keep-alive loop.
fn handle_connection(stream: TcpStream, shared: &WorkerShared) {
    let config = &shared.config;
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served = 0u64;
    loop {
        let parsed = match codec::read_request(&mut reader) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => break, // clean close
            Err(NetError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Keep-alive idle timeout.
                pe_observe::static_counter!("net.server.idle_closes").inc();
                break;
            }
            Err(e) => {
                pe_observe::static_counter!("net.server.read_errors").inc();
                // Tell the peer what happened when the socket still works.
                let response = Response::error(400, &format!("bad request: {e}"));
                let mut bytes = Vec::new();
                if codec::write_response(&response, false, &mut bytes).is_ok() {
                    let _ = codec::write_all(&mut writer, &bytes);
                }
                break;
            }
        };
        served += 1;
        if served > 1 {
            pe_observe::static_counter!("net.server.keepalive_reuses").inc();
        }
        pe_observe::static_counter!("net.server.requests").inc();
        let response = {
            let _timed = pe_observe::static_histogram!("net.server.handle_ns").span();
            shared.service.call(&parsed.request)
        };
        let keep_alive = parsed.keep_alive
            && config.keep_alive
            && !shared.shutdown.load(Ordering::SeqCst);
        let mut bytes = Vec::new();
        if write_faulted(shared, &response, keep_alive, &mut writer, &mut bytes).is_err() {
            pe_observe::static_counter!("net.server.write_errors").inc();
            break;
        }
        if !keep_alive || bytes.is_empty() {
            break;
        }
    }
}

/// Serializes and writes `response`, enacting stall/truncate faults.
/// Leaves `bytes` empty when the connection must close afterwards.
fn write_faulted(
    shared: &WorkerShared,
    response: &Response,
    keep_alive: bool,
    writer: &mut TcpStream,
    bytes: &mut Vec<u8>,
) -> Result<(), NetError> {
    let fault = shared
        .faults
        .as_ref()
        .filter(|s| s.fault() != ConnectionFault::Refuse)
        .and_then(|s| s.next());
    codec::write_response(response, keep_alive, bytes)?;
    match fault {
        Some(ConnectionFault::Stall(delay)) => {
            pe_observe::static_counter!("net.server.faults.stalled").inc();
            std::thread::sleep(delay);
            codec::write_all(writer, bytes)
        }
        Some(ConnectionFault::Truncate(n)) => {
            pe_observe::static_counter!("net.server.faults.truncated").inc();
            let cut = n.min(bytes.len());
            codec::write_all(writer, &bytes[..cut])?;
            // Force the connection closed so the client sees the
            // truncation immediately.
            bytes.clear();
            Ok(())
        }
        Some(ConnectionFault::Refuse) | None => codec::write_all(writer, bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_cloud::docs::DocsServer;
    use pe_cloud::{Request, Response};
    use std::io::Write;

    fn start(service: Arc<dyn Service>) -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            service,
            ServerConfig { read_timeout: Duration::from_millis(500), ..ServerConfig::default() },
        )
        .expect("bind loopback")
    }

    fn raw_exchange(addr: SocketAddr, request: &Request, keep_alive: bool) -> Response {
        let mut stream = TcpStream::connect(addr).unwrap();
        let bytes = codec::request_bytes(request, keep_alive).unwrap();
        stream.write_all(&bytes).unwrap();
        let mut reader = BufReader::new(stream);
        codec::read_response(&mut reader).unwrap().response
    }

    #[test]
    fn serves_a_docs_request_over_a_socket() {
        let server = start(Arc::new(DocsServer::new()));
        let resp =
            raw_exchange(server.local_addr(), &Request::post("/Doc", &[("cmd", "create")], ""), false);
        assert!(resp.is_success());
        assert!(resp.body_text().unwrap().contains("docID"));
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = start(Arc::new(DocsServer::new()));
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for _ in 0..3 {
            let bytes =
                codec::request_bytes(&Request::post("/Doc", &[("cmd", "create")], ""), true)
                    .unwrap();
            writer.write_all(&bytes).unwrap();
            let parsed = codec::read_response(&mut reader).unwrap();
            assert!(parsed.response.is_success());
            assert!(parsed.keep_alive);
        }
        server.shutdown();
    }

    #[test]
    fn malformed_input_gets_a_400_not_a_hang() {
        let server = start(Arc::new(DocsServer::new()));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let parsed = codec::read_response(&mut reader).unwrap();
        assert_eq!(parsed.response.status, 400);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_frees_the_port() {
        let server = start(Arc::new(DocsServer::new()));
        let addr = server.local_addr();
        server.shutdown();
        // The port is released: a new bind to the same address succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after shutdown: {rebind:?}");
    }
}
