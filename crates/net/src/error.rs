//! Error type shared by the codec, server, and client.

use std::fmt;

/// Anything that can go wrong on the wire.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A socket operation failed (connect, read, write, timeout).
    Io(std::io::Error),
    /// Bytes arrived but did not parse as the HTTP subset we speak.
    Malformed {
        /// What was wrong, for logs and assertions.
        detail: String,
    },
    /// A message exceeded a codec limit (header bytes, body bytes).
    TooLarge {
        /// Which limit was hit.
        what: &'static str,
        /// The limit in bytes.
        limit: usize,
    },
    /// The peer closed the connection mid-message.
    UnexpectedEof,
    /// Every attempt failed; carries the last error's description and how
    /// many attempts were made.
    RetriesExhausted {
        /// Total attempts made (initial try + retries).
        attempts: u32,
        /// Description of the final failure.
        last: String,
    },
    /// The configured deadline elapsed before a response arrived.
    DeadlineExceeded,
}

impl NetError {
    /// Helper for malformed-input errors.
    pub fn malformed(detail: impl Into<String>) -> NetError {
        NetError::Malformed { detail: detail.into() }
    }

    /// True when retrying the request might help (transport-level
    /// failures), false for permanent conditions.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io(_) | NetError::UnexpectedEof => true,
            // A malformed *response* usually means truncation or a broken
            // intermediary; a fresh exchange can succeed.
            NetError::Malformed { .. } => true,
            NetError::TooLarge { .. }
            | NetError::RetriesExhausted { .. }
            | NetError::DeadlineExceeded => false,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Malformed { detail } => write!(f, "malformed message: {detail}"),
            NetError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds the {limit}-byte limit")
            }
            NetError::UnexpectedEof => f.write_str("connection closed mid-message"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last error: {last}")
            }
            NetError::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::UnexpectedEof
        } else {
            NetError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NetError::malformed("no request line").to_string().contains("no request line"));
        assert!(NetError::TooLarge { what: "body", limit: 42 }.to_string().contains("42"));
        assert!(NetError::RetriesExhausted { attempts: 3, last: "refused".into() }
            .to_string()
            .contains("3 attempts"));
    }

    #[test]
    fn retryability_classification() {
        assert!(NetError::UnexpectedEof.is_retryable());
        assert!(NetError::malformed("x").is_retryable());
        assert!(!NetError::DeadlineExceeded.is_retryable());
        assert!(!NetError::TooLarge { what: "body", limit: 1 }.is_retryable());
    }

    #[test]
    fn eof_io_errors_map_to_unexpected_eof() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(NetError::from(io), NetError::UnexpectedEof));
    }
}
