//! The readiness-driven event loop behind [`HttpServer`](crate::HttpServer).
//!
//! One loop thread owns every socket. Connections move through a staged
//! state machine:
//!
//! ```text
//!   accept ──▶ Reading ──(request complete)──▶ Dispatched ──▶ Writing ─┐
//!                ▲   ╲──(queue full)──▶ DispatchQueued ──▶─┘           │
//!                │                                                     │
//!                └───────────────(keep-alive, response flushed)────────┘
//! ```
//!
//! * **Reading** — nonblocking reads append to a [`RequestAccumulator`],
//!   which re-frames bytes through the untouched blocking codec: a parse
//!   that would block mid-message reports "need more", so the request can
//!   arrive split at *any* byte boundary and resume correctly.
//! * **Dispatched** — the decoded request runs on a small worker pool;
//!   the loop never calls user handlers, so a slow [`Service`] can stall
//!   at most `workers` requests, never the wire. With `workers == 0`
//!   handlers run inline on the loop (lowest latency, for trusted-fast
//!   services).
//! * **DispatchQueued** — the worker queue was full; the connection
//!   parks (reads masked) until a completion frees a slot. This is the
//!   backpressure path: overload slows clients down instead of growing
//!   queues without bound.
//! * **Writing** — the serialized response drains through nonblocking
//!   writes; partial writes re-arm write interest and continue on the
//!   next readiness event.
//!
//! Deadlines are enforced by a coarse [`TimerWheel`], not per-socket
//! kernel timeouts: a **request deadline** starts at the first byte of a
//! request and is *not* extended by further bytes — a slow-loris client
//! dribbling one byte per interval is closed on schedule while costing
//! no worker and no thread. Idle keep-alive connections and stalled
//! response writes get the same treatment (`read_timeout` respectively
//! `write_timeout`).
//!
//! Shutdown is graceful: accepting stops immediately, idle connections
//! close, in-flight requests finish and flush (bounded by a drain
//! deadline), then the loop exits and the worker pool drains and joins.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pe_cloud::fault::{ConnectionFault, ConnectionFaultSchedule};
use pe_cloud::Response;

use crate::codec;
use crate::error::NetError;
use crate::sys::{Event, Interest, Poller};
use crate::{Served, Service, Waker};

/// Hard cap on buffered inbound bytes per connection: the largest legal
/// message (16 MiB body) plus head room for its head.
const INBUF_CAP: usize = codec::MAX_BODY_BYTES + 64 * 1024;

/// If no head terminator shows up within this many bytes, hand the
/// buffer to the codec anyway so its line/header limits produce the
/// right error instead of the accumulator hoarding garbage.
const HEAD_ATTEMPT_BYTES: usize = codec::MAX_LINE_BYTES + 2;

/// Read chunk size per `read()` call.
const READ_CHUNK: usize = 16 * 1024;

/// Reserved poller tokens (chosen to never collide with slot tokens,
/// whose generation half never reaches `u32::MAX`).
const LISTENER_TOKEN: u64 = u64::MAX;
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// How long accepting stays paused after a persistent `accept` failure
/// (EMFILE/ENFILE and friends). Retrying immediately would livelock the
/// loop: the pending connection stays in the kernel queue and accept
/// keeps failing the same way, so the only cure is letting existing
/// connections progress (their closes free the fds that un-wedge us).
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(100);

// ---------------------------------------------------------------------
// Incremental request framing
// ---------------------------------------------------------------------

/// Re-frames a nonblocking byte stream into requests using the blocking
/// codec unchanged.
///
/// Bytes are pushed in as they arrive off the wire — split at arbitrary
/// boundaries — and [`try_next`](RequestAccumulator::try_next) yields a
/// request exactly when one is complete. Internally a parse attempt runs
/// the real `codec::read_request` over the buffered prefix; a parse that
/// runs out of bytes mid-message maps to "need more", so the codec
/// itself stays the single authority on what the bytes mean.
///
/// To avoid re-parsing a large body on every arriving chunk, the
/// accumulator remembers (from a cheap, non-authoritative scan of the
/// complete head) how many bytes the message needs and skips parse
/// attempts until they are buffered.
#[derive(Debug, Default)]
pub struct RequestAccumulator {
    buf: Vec<u8>,
    /// How far `buf` has been scanned for the head terminator.
    scanned: usize,
    /// Index just past the head terminator, once found.
    head_end: Option<usize>,
    /// Known total size of the in-flight message, once the head is
    /// complete; parse attempts are skipped below this.
    need: Option<usize>,
}

impl RequestAccumulator {
    /// An empty accumulator.
    pub fn new() -> RequestAccumulator {
        RequestAccumulator::default()
    }

    /// Appends bytes read off the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete requests are drained out).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Tries to parse one complete request off the front of the buffer.
    ///
    /// Returns `Ok(None)` when more bytes are needed, `Ok(Some(_))` with
    /// the parsed request (its bytes are consumed; pipelined followers
    /// stay buffered), and `Err` exactly when the blocking codec would
    /// reject the same bytes.
    ///
    /// # Errors
    ///
    /// The codec's own classes: [`NetError::Malformed`] and
    /// [`NetError::TooLarge`].
    pub fn try_next(&mut self) -> Result<Option<codec::ParsedRequest>, NetError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        if let Some(need) = self.need {
            if self.buf.len() < need {
                return Ok(None);
            }
        }
        let head_end = match self.find_head_end() {
            Some(end) => end,
            // No complete head yet: only bother the codec once enough is
            // buffered that it can diagnose a limit violation.
            None if self.buf.len() <= HEAD_ATTEMPT_BYTES => return Ok(None),
            None => self.buf.len(),
        };
        let mut cursor = std::io::Cursor::new(&self.buf[..]);
        match codec::read_request(&mut cursor) {
            Ok(Some(parsed)) => {
                let consumed = usize::try_from(cursor.position()).unwrap_or(self.buf.len());
                self.buf.drain(..consumed);
                self.scanned = 0;
                self.head_end = None;
                self.need = None;
                Ok(Some(parsed))
            }
            // Non-empty buffer never yields the clean-EOF case, but treat
            // it as "need more" rather than asserting.
            Ok(None) => Ok(None),
            Err(NetError::UnexpectedEof) => {
                // Head parsed, body incomplete: schedule the next attempt
                // for when the whole message is here.
                self.need = Some(head_end + scan_content_length(&self.buf[..head_end]));
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Finds the end of the head (the index just past `\r\n\r\n`),
    /// scanning only bytes not examined before and caching the answer
    /// until the message is consumed.
    fn find_head_end(&mut self) -> Option<usize> {
        if let Some(end) = self.head_end {
            return Some(end);
        }
        let start = self.scanned.saturating_sub(3);
        if let Some(pos) =
            self.buf[start..].windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + start)
        {
            self.head_end = Some(pos + 4);
            return Some(pos + 4);
        }
        self.scanned = self.buf.len();
        None
    }
}

/// Best-effort `content-length` scan of a complete head, used only to
/// decide when the next (authoritative) parse attempt is worthwhile.
/// Returns 0 when absent or unparseable — the codec then re-checks on
/// every chunk, which is correct, just slower.
fn scan_content_length(head: &[u8]) -> usize {
    for line in head.split(|&b| b == b'\n') {
        let Some(colon) = line.iter().position(|&b| b == b':') else { continue };
        let name = &line[..colon];
        if name.eq_ignore_ascii_case(b"content-length") {
            let value: &[u8] = &line[colon + 1..];
            let value = std::str::from_utf8(value).unwrap_or("").trim();
            return value.parse().unwrap_or(0);
        }
    }
    0
}

// ---------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------

/// A hashed timer wheel: O(1) schedule, O(slots-stepped) tick. Entries
/// are `(slot, generation, seq)` connection handles; entries are never
/// removed early — when one fires, the caller compares its `seq` against
/// the connection's live arm-sequence and drops superseded entries, so a
/// busy keep-alive connection (which re-arms deadlines on every request)
/// sheds its dead entries within one wheel revolution instead of
/// recirculating them forever. Deadlines past the wheel horizon park in
/// the farthest slot and re-circulate until due.
struct TimerWheel {
    slots: Vec<Vec<(u32, u32, u32)>>,
    granularity: Duration,
    cursor: usize,
    last_tick: Instant,
}

impl TimerWheel {
    fn new(slots: usize, granularity: Duration, now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            cursor: 0,
            last_tick: now,
        }
    }

    fn schedule(&mut self, deadline: Instant, now: Instant, slot: u32, generation: u32, seq: u32) {
        let ticks = deadline
            .saturating_duration_since(now)
            .as_nanos()
            .div_ceil(self.granularity.as_nanos().max(1));
        // At least one tick out (never the live cursor slot), at most a
        // full revolution minus one.
        let ticks = (ticks as usize).clamp(1, self.slots.len() - 1);
        let index = (self.cursor + ticks) % self.slots.len();
        self.slots[index].push((slot, generation, seq));
    }

    /// Advances the wheel to `now`, collecting every entry in elapsed
    /// slots into `fired`.
    fn tick(&mut self, now: Instant, fired: &mut Vec<(u32, u32, u32)>) {
        let elapsed = now.saturating_duration_since(self.last_tick);
        let steps = (elapsed.as_nanos() / self.granularity.as_nanos().max(1)) as usize;
        if steps == 0 {
            return;
        }
        let steps = steps.min(self.slots.len());
        for _ in 0..steps {
            self.cursor = (self.cursor + 1) % self.slots.len();
            fired.append(&mut self.slots[self.cursor]);
        }
        self.last_tick = now;
    }
}

// ---------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes (also the keep-alive idle state).
    Reading,
    /// Parked: worker queue was full when the request completed.
    DispatchQueued,
    /// Request running on a worker; awaiting its completion.
    Dispatched,
    /// Long-poll subscriber: the service deferred the response; the
    /// connection holds no worker and waits for its [`Waker`] (or the
    /// subscription deadline).
    Parked,
    /// Response bytes draining to the socket.
    Writing,
}

/// Why a deadline was armed — picks the metric and log on expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    /// Keep-alive connection with no request bytes yet.
    Idle,
    /// Mid-request: first byte seen, message incomplete.
    Request,
    /// Response flush in progress.
    Write,
    /// Parked long-poll subscriber. Deliberately distinct from
    /// `Request`: a parked subscriber has *completed* its request and is
    /// not a slow-loris, so it gets the (much longer) subscription
    /// budget, and expiry sends the service's timeout response instead
    /// of closing the socket.
    Subscription,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    acc: RequestAccumulator,
    outbuf: Vec<u8>,
    outpos: usize,
    /// Close once `outbuf` drains (truncation fault, keep-alive off,
    /// protocol error response).
    close_after_write: bool,
    deadline: Option<(Instant, DeadlineKind)>,
    /// Bumped on every arm/disarm; wheel entries carrying an older value
    /// are superseded and dropped when they fire.
    deadline_seq: u32,
    /// Requests served on this connection.
    served: u64,
    /// Parked request waiting for a dispatch slot.
    queued: Option<Job>,
    /// Deferred long-poll request held while in `Parked` state.
    parked: Option<ParkedReq>,
    /// Peer sent EOF; serve what is buffered, then close.
    peer_eof: bool,
    created: Instant,
}

/// What a `Parked` connection remembers: the request to re-dispatch on
/// wake, and the pre-serialized response to send if the subscription
/// deadline fires first.
struct ParkedReq {
    request: pe_cloud::Request,
    keep_alive: bool,
    timeout_bytes: Vec<u8>,
    timeout_close_after: bool,
}

struct Slab {
    conns: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<u32>,
}

impl Slab {
    fn new() -> Slab {
        Slab { conns: Vec::new(), generations: Vec::new(), free: Vec::new() }
    }

    fn insert(&mut self, conn: Conn) -> (u32, u32) {
        if let Some(slot) = self.free.pop() {
            self.conns[slot as usize] = Some(conn);
            (slot, self.generations[slot as usize])
        } else {
            self.conns.push(Some(conn));
            self.generations.push(0);
            ((self.conns.len() - 1) as u32, 0)
        }
    }

    fn get_mut(&mut self, slot: u32, generation: u32) -> Option<&mut Conn> {
        if self.generations.get(slot as usize) != Some(&generation) {
            return None;
        }
        self.conns.get_mut(slot as usize).and_then(Option::as_mut)
    }

    fn remove(&mut self, slot: u32) -> Option<Conn> {
        let conn = self.conns.get_mut(slot as usize).and_then(Option::take);
        if conn.is_some() {
            self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
            self.free.push(slot);
        }
        conn
    }

    fn len(&self) -> usize {
        self.conns.len() - self.free.len()
    }

    fn live_slots(&self) -> Vec<u32> {
        (0..self.conns.len() as u32).filter(|&s| self.conns[s as usize].is_some()).collect()
    }
}

fn token_of(slot: u32, generation: u32) -> u64 {
    u64::from(slot) | (u64::from(generation) << 32)
}

// ---------------------------------------------------------------------
// Dispatch plumbing
// ---------------------------------------------------------------------

/// A decoded request handed to the worker pool.
struct Job {
    slot: u32,
    generation: u32,
    request: pe_cloud::Request,
    /// Peer asked for keep-alive (final decision happens at completion).
    keep_alive: bool,
    /// True when this is a parked subscriber being re-dispatched after a
    /// wake — already counted as a request the first time around.
    redispatch: bool,
}

/// What a worker decided for one job.
enum Outcome {
    /// Ordinary response: send these bytes.
    Respond { bytes: Vec<u8>, close_after: bool },
    /// The service deferred: park the connection until its waker fires
    /// or the subscription deadline sends `timeout_bytes`.
    Park {
        request: pe_cloud::Request,
        keep_alive: bool,
        timeout_bytes: Vec<u8>,
        timeout_close_after: bool,
        /// Caller-requested wait; caps the park below the server-wide
        /// subscription timeout.
        wait: Option<Duration>,
    },
}

/// A job outcome coming back from a worker.
struct Completion {
    slot: u32,
    generation: u32,
    outcome: Outcome,
}

/// Wake requests from parked subscribers, drained by the loop thread.
/// Entries carry the connection's (slot, generation) identity; the loop
/// validates both plus the `Parked` state before re-dispatching, so
/// stale or duplicate wakes are harmless no-ops.
pub(crate) struct ParkedWakeups {
    pending: Mutex<Vec<(u32, u32)>>,
}

impl ParkedWakeups {
    fn new() -> ParkedWakeups {
        ParkedWakeups { pending: Mutex::new(Vec::new()) }
    }

    fn push(&self, slot: u32, generation: u32) {
        self.pending.lock().unwrap_or_else(|e| e.into_inner()).push((slot, generation));
    }

    fn drain(&self) -> Vec<(u32, u32)> {
        std::mem::take(&mut *self.pending.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Wakes the event loop from other threads by writing one byte to a
/// loopback socket registered in the poller.
struct WakeHandle {
    tx: Mutex<TcpStream>,
}

impl WakeHandle {
    fn wake(&self) {
        if let Ok(mut tx) = self.tx.lock() {
            // WouldBlock means a wake is already pending — good enough.
            let _ = tx.write(&[1u8]);
        }
    }
}

/// Builds a connected loopback pair for the waker without any
/// platform-specific socketpair call.
fn waker_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((tx, rx))
}

/// Everything the loop and workers share.
pub(crate) struct LoopShared {
    pub service: Arc<dyn Service>,
    pub faults: Option<Arc<ConnectionFaultSchedule>>,
    pub shutdown: Arc<AtomicBool>,
    pub keep_alive: bool,
}

/// Loop tuning, distilled from [`ServerConfig`](crate::ServerConfig).
#[derive(Debug, Clone)]
pub(crate) struct LoopConfig {
    pub read_timeout: Duration,
    pub write_timeout: Duration,
    pub subscription_timeout: Duration,
    pub max_conns: usize,
    pub queue: usize,
    pub workers: usize,
    pub force_poll: bool,
    pub drain: Duration,
}

/// Handles joined by [`HttpServer::shutdown`](crate::HttpServer).
pub(crate) struct EventServer {
    pub shutdown: Arc<AtomicBool>,
    pub loop_thread: Option<std::thread::JoinHandle<()>>,
    pub workers: Vec<std::thread::JoinHandle<()>>,
    waker: Arc<WakeHandle>,
}

impl EventServer {
    /// Signals the loop to begin its graceful drain.
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.waker.wake();
        }
    }
}

/// Spawns the loop thread and worker pool for an already-bound listener.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: LoopShared,
    config: LoopConfig,
) -> std::io::Result<EventServer> {
    listener.set_nonblocking(true)?;
    let (waker_tx, waker_rx) = waker_pair()?;
    let waker = Arc::new(WakeHandle { tx: Mutex::new(waker_tx) });
    let shutdown = Arc::clone(&shared.shutdown);
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let wakeups = Arc::new(ParkedWakeups::new());

    let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<Job>(config.queue.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));
    let shared = Arc::new(shared);

    let workers = (0..config.workers)
        .map(|i| {
            let job_rx = Arc::clone(&job_rx);
            let shared = Arc::clone(&shared);
            let completions = Arc::clone(&completions);
            let waker = Arc::clone(&waker);
            let wakeups = Arc::clone(&wakeups);
            std::thread::Builder::new()
                .name(format!("pe-net-worker-{i}"))
                .spawn(move || worker_loop(&job_rx, &shared, &completions, &waker, &wakeups))
                .expect("spawn worker thread")
        })
        .collect();

    let loop_waker = Arc::clone(&waker);
    let thread_waker = Arc::clone(&waker);
    let loop_thread = std::thread::Builder::new()
        .name("pe-net-loop".into())
        .spawn(move || {
            let mut event_loop = match EventLoop::new(
                listener, waker_rx, shared, config, job_tx, completions, wakeups, thread_waker,
            ) {
                Ok(event_loop) => event_loop,
                Err(e) => {
                    // Bind succeeded, so this is a poller-creation failure
                    // (fd exhaustion); nothing to serve on.
                    eprintln!("pe-net: event loop failed to start: {e}");
                    return;
                }
            };
            event_loop.run();
        })
        .expect("spawn event-loop thread");

    Ok(EventServer {
        shutdown,
        loop_thread: Some(loop_thread),
        workers,
        waker: loop_waker,
    })
}

fn worker_loop(
    jobs: &Mutex<Receiver<Job>>,
    shared: &LoopShared,
    completions: &Mutex<Vec<Completion>>,
    waker: &Arc<WakeHandle>,
    wakeups: &Arc<ParkedWakeups>,
) {
    loop {
        let job = {
            let rx = jobs.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(job) = job else { return };
        let completion = serve_job(job, shared, wakeups, waker);
        completions.lock().unwrap_or_else(|e| e.into_inner()).push(completion);
        waker.wake();
    }
}

/// Runs one request through the service and serializes the response,
/// enacting stall/truncate faults. Shared by the worker pool and the
/// `workers == 0` inline path. A service that defers ([`Served::Parked`])
/// yields a `Park` outcome instead; faults are not applied to parks —
/// they act on responses, and a park has none yet.
fn serve_job(
    job: Job,
    shared: &LoopShared,
    wakeups: &Arc<ParkedWakeups>,
    waker: &Arc<WakeHandle>,
) -> Completion {
    let Job { slot, generation, request, keep_alive: peer_keep_alive, redispatch: _ } = job;
    let served = {
        let _timed = pe_observe::static_histogram!("net.server.handle_ns").span();
        let wake_list = Arc::clone(wakeups);
        let wake_handle = Arc::clone(waker);
        let wake = Waker::from_fn(move || {
            wake_list.push(slot, generation);
            wake_handle.wake();
        });
        shared.service.call_deferred(&request, wake)
    };
    let keep_alive =
        peer_keep_alive && shared.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
    let serialize = |response: &Response| {
        let mut bytes = Vec::new();
        let mut close_after = !keep_alive;
        if codec::write_response(response, keep_alive, &mut bytes).is_err() {
            bytes.clear();
            let oversize = Response::error(500, "response exceeded the wire size limit");
            let _ = codec::write_response(&oversize, false, &mut bytes);
            close_after = true;
        }
        (bytes, close_after)
    };
    match served {
        Served::Response(response) => {
            let (mut bytes, mut close_after) = serialize(&response);
            let fault = shared
                .faults
                .as_ref()
                .filter(|s| s.fault() != ConnectionFault::Refuse)
                .and_then(|s| s.next());
            match fault {
                Some(ConnectionFault::Stall(delay)) => {
                    pe_observe::static_counter!("net.server.faults.stalled").inc();
                    std::thread::sleep(delay);
                }
                Some(ConnectionFault::Truncate(n)) => {
                    pe_observe::static_counter!("net.server.faults.truncated").inc();
                    bytes.truncate(n.min(bytes.len()));
                    close_after = true;
                }
                Some(ConnectionFault::Refuse) | None => {}
            }
            Completion { slot, generation, outcome: Outcome::Respond { bytes, close_after } }
        }
        Served::Parked { on_timeout, wait } => {
            let (timeout_bytes, timeout_close_after) = serialize(&on_timeout);
            Completion {
                slot,
                generation,
                outcome: Outcome::Park {
                    request,
                    keep_alive: peer_keep_alive,
                    timeout_bytes,
                    timeout_close_after,
                    wait,
                },
            }
        }
    }
}

// ---------------------------------------------------------------------
// The loop itself
// ---------------------------------------------------------------------

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    waker_rx: TcpStream,
    shared: Arc<LoopShared>,
    config: LoopConfig,
    job_tx: SyncSender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    /// Pending wakes from parked subscribers' wakers.
    wakeups: Arc<ParkedWakeups>,
    /// Loop's own wake handle, lent to inline-mode (`workers == 0`)
    /// service calls so their wakers can reach the poller.
    wake_handle: Arc<WakeHandle>,
    slab: Slab,
    wheel: TimerWheel,
    /// Slots parked in `DispatchQueued`, oldest first.
    dispatch_queue: VecDeque<u32>,
    /// Listener interest currently disabled (connection cap reached or
    /// persistent accept failure).
    accept_paused: bool,
    /// Earliest time a failure-paused listener may re-arm; connection
    /// closes resume it sooner (they free the fds accept was missing).
    accept_resume_at: Option<Instant>,
    /// Shutdown observed; draining in-flight work.
    draining: Option<Instant>,
    events: Vec<Event>,
    fired: Vec<(u32, u32, u32)>,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        listener: TcpListener,
        waker_rx: TcpStream,
        shared: Arc<LoopShared>,
        config: LoopConfig,
        job_tx: SyncSender<Job>,
        completions: Arc<Mutex<Vec<Completion>>>,
        wakeups: Arc<ParkedWakeups>,
        wake_handle: Arc<WakeHandle>,
    ) -> std::io::Result<EventLoop> {
        let mut poller = Poller::new(config.force_poll)?;
        match poller.backend() {
            crate::sys::Backend::Epoll => {
                pe_observe::static_counter!("net.server.backend.epoll").inc();
            }
            crate::sys::Backend::Poll => {
                pe_observe::static_counter!("net.server.backend.poll").inc();
            }
        }
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        poller.register(waker_rx.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
        let now = Instant::now();
        Ok(EventLoop {
            poller,
            listener,
            waker_rx,
            shared,
            config,
            job_tx,
            completions,
            wakeups,
            wake_handle,
            slab: Slab::new(),
            wheel: TimerWheel::new(512, Duration::from_millis(16), now),
            dispatch_queue: VecDeque::new(),
            accept_paused: false,
            accept_resume_at: None,
            draining: None,
            events: Vec::with_capacity(1024),
            fired: Vec::new(),
        })
    }

    fn run(&mut self) {
        loop {
            let timeout = if self.slab.len() == 0 && self.draining.is_none() {
                Duration::from_millis(200)
            } else {
                Duration::from_millis(10)
            };
            self.events.clear();
            if let Err(e) = self.poller.wait(timeout, &mut self.events) {
                // A broken poller cannot recover; drop every connection.
                eprintln!("pe-net: poller failed: {e}");
                break;
            }
            pe_observe::static_counter!("net.server.epoll_wakeups").inc();

            let events = std::mem::take(&mut self.events);
            for event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.drain_waker(),
                    token => self.conn_event(token, event),
                }
            }
            self.events = events;

            self.drain_completions();
            self.drain_parked_wakeups();
            self.retry_queued_dispatches();
            self.expire_deadlines();
            if self.accept_resume_at.is_some_and(|at| Instant::now() >= at) {
                self.accept_resume_at = None;
                self.resume_accept();
            }

            if self.shared.shutdown.load(Ordering::SeqCst) && self.draining.is_none() {
                self.begin_drain();
            }
            if let Some(since) = self.draining {
                let expired = since.elapsed() > self.config.drain;
                if self.slab.len() == 0 || expired {
                    for slot in self.slab.live_slots() {
                        self.close(slot, None);
                    }
                    break;
                }
            }
        }
    }

    // -- accept ----------------------------------------------------

    fn accept_ready(&mut self) {
        if self.draining.is_some() {
            return;
        }
        loop {
            if self.slab.len() >= self.config.max_conns {
                pe_observe::static_counter!("net.server.accept_pressure").inc();
                self.pause_accept();
                return;
            }
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                // The connection died between the kernel queue and our
                // accept — gone for good, take the next one.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue
                }
                // Anything else (fd exhaustion, ENOMEM) persists across
                // retries: back off instead of livelocking the loop.
                Err(_) => {
                    pe_observe::static_counter!("net.server.accept_errors").inc();
                    self.pause_accept();
                    self.accept_resume_at = Some(Instant::now() + ACCEPT_ERROR_BACKOFF);
                    return;
                }
            };
            pe_observe::static_counter!("net.server.connections").inc();
            // Refuse-on-accept faults close the socket before any read.
            if let Some(schedule) = &self.shared.faults {
                if schedule.fault() == ConnectionFault::Refuse
                    && schedule.next() == Some(ConnectionFault::Refuse)
                {
                    pe_observe::static_counter!("net.server.faults.refused").inc();
                    drop(stream);
                    continue;
                }
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let now = Instant::now();
            let conn = Conn {
                stream,
                state: ConnState::Reading,
                acc: RequestAccumulator::new(),
                outbuf: Vec::new(),
                outpos: 0,
                close_after_write: false,
                deadline: None,
                deadline_seq: 0,
                served: 0,
                queued: None,
                parked: None,
                peer_eof: false,
                created: now,
            };
            let (slot, generation) = self.slab.insert(conn);
            let fd =
                self.slab.get_mut(slot, generation).expect("just inserted").stream.as_raw_fd();
            if self.poller.register(fd, token_of(slot, generation), Interest::READ).is_err() {
                self.slab.remove(slot);
                continue;
            }
            pe_observe::static_gauge!("net.server.conns_open").inc();
            self.arm_deadline(slot, generation, DeadlineKind::Idle);
        }
    }

    fn pause_accept(&mut self) {
        if !self.accept_paused {
            self.accept_paused = true;
            let _ =
                self.poller.modify(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::NONE);
        }
    }

    fn resume_accept(&mut self) {
        if self.accept_paused && self.slab.len() < self.config.max_conns {
            self.accept_paused = false;
            self.accept_resume_at = None;
            let _ =
                self.poller.modify(self.listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ);
            // Level-triggered: pending backlog re-fires on the next wait.
        }
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 64];
        loop {
            match self.waker_rx.read(&mut sink) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    // -- per-connection events --------------------------------------

    fn conn_event(&mut self, token: u64, event: &Event) {
        let slot = (token & u64::from(u32::MAX)) as u32;
        let generation = (token >> 32) as u32;
        let Some(conn) = self.slab.get_mut(slot, generation) else { return };
        if event.readable && conn.state == ConnState::Reading {
            self.read_ready(slot, generation);
            return;
        }
        if event.writable && conn.state == ConnState::Writing {
            self.write_ready(slot, generation);
            return;
        }
        if event.hangup {
            // No readable/writable work to do and the peer is gone.
            self.close(slot, None);
        }
    }

    fn read_ready(&mut self, slot: u32, generation: u32) {
        let mut chunk = [0u8; READ_CHUNK];
        let conn = self.slab.get_mut(slot, generation).expect("validated by caller");
        let was_idle = conn.acc.is_empty();
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.acc.len() + n > INBUF_CAP {
                        pe_observe::static_counter!("net.server.read_errors").inc();
                        self.close(slot, None);
                        return;
                    }
                    conn.acc.push(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(slot, None);
                    return;
                }
            }
        }
        // First byte of a new request arms the slow-loris deadline; more
        // bytes never extend it.
        if was_idle && !self.slab.get_mut(slot, generation).expect("live").acc.is_empty() {
            self.arm_deadline(slot, generation, DeadlineKind::Request);
        }
        self.advance_parse(slot, generation);
    }

    /// Tries to turn buffered bytes into a dispatched request (or an
    /// error response, or a clean close).
    fn advance_parse(&mut self, slot: u32, generation: u32) {
        let Some(conn) = self.slab.get_mut(slot, generation) else { return };
        if conn.state != ConnState::Reading {
            return;
        }
        match conn.acc.try_next() {
            Ok(Some(parsed)) => {
                let keep_alive = parsed.keep_alive;
                conn.deadline = None;
                conn.deadline_seq = conn.deadline_seq.wrapping_add(1);
                self.dispatch(slot, generation, Job {
                    slot,
                    generation,
                    request: parsed.request,
                    keep_alive,
                    redispatch: false,
                });
            }
            Ok(None) => {
                if conn.peer_eof {
                    // Clean close between requests, or EOF mid-message —
                    // either way there is nothing left to serve.
                    self.close(slot, None);
                }
            }
            Err(e) => {
                pe_observe::static_counter!("net.server.read_errors").inc();
                let response = Response::error(400, &format!("bad request: {e}"));
                let mut bytes = Vec::new();
                let _ = codec::write_response(&response, false, &mut bytes);
                self.start_response(slot, generation, bytes, true);
            }
        }
    }

    fn dispatch(&mut self, slot: u32, generation: u32, job: Job) {
        if !job.redispatch {
            pe_observe::static_counter!("net.server.requests").inc();
            let conn = self.slab.get_mut(slot, generation).expect("live");
            if conn.served > 0 {
                pe_observe::static_counter!("net.server.keepalive_reuses").inc();
            }
        }
        if self.config.workers == 0 {
            // Inline mode: the handler runs on the loop thread.
            let completion = serve_job(job, &self.shared, &self.wakeups, &self.wake_handle);
            let conn = self.slab.get_mut(slot, generation).expect("live");
            conn.state = ConnState::Dispatched;
            self.apply_completion(completion);
            return;
        }
        match self.job_tx.try_send(job) {
            Ok(()) => {
                let conn = self.slab.get_mut(slot, generation).expect("live");
                conn.state = ConnState::Dispatched;
                let fd = conn.stream.as_raw_fd();
                let _ = self.poller.modify(fd, token_of(slot, generation), Interest::NONE);
            }
            Err(TrySendError::Full(job)) => {
                pe_observe::static_counter!("net.server.dispatch_stalls").inc();
                let conn = self.slab.get_mut(slot, generation).expect("live");
                conn.state = ConnState::DispatchQueued;
                conn.queued = Some(job);
                let fd = conn.stream.as_raw_fd();
                let _ = self.poller.modify(fd, token_of(slot, generation), Interest::NONE);
                self.dispatch_queue.push_back(slot);
            }
            Err(TrySendError::Disconnected(_)) => self.close(slot, None),
        }
    }

    fn retry_queued_dispatches(&mut self) {
        while let Some(&slot) = self.dispatch_queue.front() {
            let Some(generation) =
                self.slab.generations.get(slot as usize).copied()
            else {
                self.dispatch_queue.pop_front();
                continue;
            };
            let Some(conn) = self.slab.get_mut(slot, generation) else {
                self.dispatch_queue.pop_front();
                continue;
            };
            if conn.state != ConnState::DispatchQueued {
                self.dispatch_queue.pop_front();
                continue;
            }
            let Some(job) = conn.queued.take() else {
                self.dispatch_queue.pop_front();
                continue;
            };
            match self.job_tx.try_send(job) {
                Ok(()) => {
                    self.dispatch_queue.pop_front();
                    let conn = self.slab.get_mut(slot, generation).expect("live");
                    conn.state = ConnState::Dispatched;
                }
                Err(TrySendError::Full(job)) => {
                    let conn = self.slab.get_mut(slot, generation).expect("live");
                    conn.queued = Some(job);
                    return;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.dispatch_queue.pop_front();
                    self.close(slot, None);
                }
            }
        }
    }

    // -- responses ---------------------------------------------------

    fn drain_completions(&mut self) {
        let drained: Vec<Completion> = {
            let mut completions =
                self.completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *completions)
        };
        for completion in drained {
            self.apply_completion(completion);
        }
    }

    fn apply_completion(&mut self, completion: Completion) {
        let Completion { slot, generation, outcome } = completion;
        let Some(conn) = self.slab.get_mut(slot, generation) else {
            return; // connection died while the worker ran
        };
        if conn.state != ConnState::Dispatched {
            return;
        }
        match outcome {
            Outcome::Respond { bytes, close_after } => {
                self.start_response(slot, generation, bytes, close_after);
            }
            Outcome::Park { request, keep_alive, timeout_bytes, timeout_close_after, wait } => {
                if self.draining.is_some() {
                    // Shutting down: answer immediately with the timeout
                    // response instead of holding the subscriber open.
                    self.start_response(slot, generation, timeout_bytes, true);
                    return;
                }
                conn.state = ConnState::Parked;
                conn.parked =
                    Some(ParkedReq { request, keep_alive, timeout_bytes, timeout_close_after });
                pe_observe::static_gauge!("net.server.parked_conns").inc();
                // Reads stay masked while parked. The caller's requested
                // wait bounds the park, clamped by the server-wide
                // subscription timeout (a client cannot hold a slot
                // longer than the server allows).
                let fd = conn.stream.as_raw_fd();
                let _ = self.poller.modify(fd, token_of(slot, generation), Interest::NONE);
                let budget = match wait {
                    Some(wait) => wait.min(self.config.subscription_timeout),
                    None => self.config.subscription_timeout,
                };
                self.arm_deadline_for(slot, generation, DeadlineKind::Subscription, budget);
                // The waker may have fired while the park completion was
                // in flight (publish raced the park) — its entry is
                // already queued and will re-dispatch on this same pass.
            }
        }
    }

    /// Re-dispatches parked subscribers whose wakers fired.
    fn drain_parked_wakeups(&mut self) {
        let pending = self.wakeups.drain();
        for (slot, generation) in pending {
            let Some(conn) = self.slab.get_mut(slot, generation) else { continue };
            if conn.state != ConnState::Parked {
                continue; // stale or duplicate wake
            }
            let Some(parked) = conn.parked.take() else { continue };
            pe_observe::static_gauge!("net.server.parked_conns").dec();
            pe_observe::static_counter!("net.server.parked_wakes").inc();
            conn.deadline = None;
            conn.deadline_seq = conn.deadline_seq.wrapping_add(1);
            conn.state = ConnState::Reading; // transient; dispatch advances it
            self.dispatch(slot, generation, Job {
                slot,
                generation,
                request: parked.request,
                keep_alive: parked.keep_alive,
                redispatch: true,
            });
        }
    }

    /// Installs response bytes and drives the first (optimistic) write.
    fn start_response(
        &mut self,
        slot: u32,
        generation: u32,
        bytes: Vec<u8>,
        close_after: bool,
    ) {
        let conn = self.slab.get_mut(slot, generation).expect("validated by caller");
        conn.outbuf = bytes;
        conn.outpos = 0;
        conn.close_after_write = close_after;
        conn.state = ConnState::Writing;
        self.arm_deadline(slot, generation, DeadlineKind::Write);
        self.write_ready(slot, generation);
    }

    fn write_ready(&mut self, slot: u32, generation: u32) {
        let conn = self.slab.get_mut(slot, generation).expect("validated by caller");
        while conn.outpos < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => {
                    pe_observe::static_counter!("net.server.write_errors").inc();
                    self.close(slot, None);
                    return;
                }
                Ok(n) => conn.outpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let fd = conn.stream.as_raw_fd();
                    let _ =
                        self.poller.modify(fd, token_of(slot, generation), Interest::WRITE);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    pe_observe::static_counter!("net.server.write_errors").inc();
                    self.close(slot, None);
                    return;
                }
            }
        }
        self.finish_response(slot, generation);
    }

    fn finish_response(&mut self, slot: u32, generation: u32) {
        let draining = self.draining.is_some();
        let conn = self.slab.get_mut(slot, generation).expect("validated by caller");
        conn.served += 1;
        conn.outbuf = Vec::new();
        conn.outpos = 0;
        if conn.close_after_write || draining {
            self.close(slot, None);
            return;
        }
        conn.state = ConnState::Reading;
        if conn.peer_eof {
            // The peer half-closed, but it may have pipelined further
            // requests before its FIN: serve everything still buffered
            // (advance_parse closes once the accumulator runs dry). No
            // poller re-arm — no more bytes are coming.
            self.advance_parse(slot, generation);
            return;
        }
        let fd = conn.stream.as_raw_fd();
        let _ = self.poller.modify(fd, token_of(slot, generation), Interest::READ);
        let kind =
            if conn.acc.is_empty() { DeadlineKind::Idle } else { DeadlineKind::Request };
        self.arm_deadline(slot, generation, kind);
        // Pipelined follower already buffered? Serve it now.
        self.advance_parse(slot, generation);
    }

    // -- deadlines ---------------------------------------------------

    fn arm_deadline(&mut self, slot: u32, generation: u32, kind: DeadlineKind) {
        let budget = match kind {
            DeadlineKind::Idle | DeadlineKind::Request => self.config.read_timeout,
            DeadlineKind::Write => self.config.write_timeout,
            DeadlineKind::Subscription => self.config.subscription_timeout,
        };
        self.arm_deadline_for(slot, generation, kind, budget);
    }

    /// Arms a deadline with an explicit budget (parks use the caller's
    /// requested wait instead of the kind's default).
    fn arm_deadline_for(
        &mut self,
        slot: u32,
        generation: u32,
        kind: DeadlineKind,
        budget: Duration,
    ) {
        let now = Instant::now();
        let deadline = now + budget;
        if let Some(conn) = self.slab.get_mut(slot, generation) {
            conn.deadline_seq = conn.deadline_seq.wrapping_add(1);
            conn.deadline = Some((deadline, kind));
            let seq = conn.deadline_seq;
            self.wheel.schedule(deadline, now, slot, generation, seq);
        }
    }

    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.tick(now, &mut fired);
        for (slot, generation, seq) in fired.drain(..) {
            let Some(conn) = self.slab.get_mut(slot, generation) else { continue };
            if seq != conn.deadline_seq {
                continue; // superseded by a later arm/disarm — drop it
            }
            let Some((deadline, kind)) = conn.deadline else { continue };
            if deadline > now {
                // Beyond-horizon entry recirculating; keep it live.
                self.wheel.schedule(deadline, now, slot, generation, seq);
                continue;
            }
            match kind {
                DeadlineKind::Idle => {
                    pe_observe::static_counter!("net.server.idle_closes").inc();
                }
                DeadlineKind::Request => {
                    pe_observe::static_counter!("net.server.request_timeouts").inc();
                }
                DeadlineKind::Write => {
                    pe_observe::static_counter!("net.server.write_timeouts").inc();
                }
                DeadlineKind::Subscription => {
                    // Not an error: the long-poll ran dry. Send the
                    // service's timeout response; the connection lives on
                    // (keep-alive permitting).
                    pe_observe::static_counter!("net.server.subscription_timeouts").inc();
                    pe_observe::static_gauge!("net.server.parked_conns").dec();
                    if let Some(parked) = conn.parked.take() {
                        conn.state = ConnState::Dispatched; // start_response path
                        self.start_response(
                            slot,
                            generation,
                            parked.timeout_bytes,
                            parked.timeout_close_after,
                        );
                    } else {
                        self.close(slot, None);
                    }
                    continue;
                }
            }
            self.close(slot, None);
        }
        self.fired = fired;
    }

    // -- teardown ----------------------------------------------------

    fn begin_drain(&mut self) {
        self.draining = Some(Instant::now());
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        // Idle and mid-request connections have nothing to finish; parked
        // subscribers get their timeout response now (flush, then close)
        // instead of holding the drain open.
        for slot in self.slab.live_slots() {
            let generation = self.slab.generations[slot as usize];
            let Some(conn) = self.slab.get_mut(slot, generation) else { continue };
            if conn.state == ConnState::Reading {
                self.close(slot, None);
            } else if conn.state == ConnState::Parked {
                pe_observe::static_gauge!("net.server.parked_conns").dec();
                let parked = conn.parked.take();
                conn.state = ConnState::Dispatched;
                conn.deadline = None;
                conn.deadline_seq = conn.deadline_seq.wrapping_add(1);
                match parked {
                    Some(p) => self.start_response(slot, generation, p.timeout_bytes, true),
                    None => self.close(slot, None),
                }
            }
        }
    }

    fn close(&mut self, slot: u32, _reason: Option<&str>) {
        let Some(conn) = self.slab.remove(slot) else { return };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if conn.state == ConnState::Parked {
            pe_observe::static_gauge!("net.server.parked_conns").dec();
        }
        pe_observe::static_gauge!("net.server.conns_open").dec();
        pe_observe::static_histogram!("net.server.conn_lifetime_ns")
            .record(u64::try_from(conn.created.elapsed().as_nanos()).unwrap_or(u64::MAX));
        drop(conn);
        self.resume_accept();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_cloud::{Method, Request};

    fn request_bytes(body: &str) -> Vec<u8> {
        codec::request_bytes(
            &Request::post("/Doc", &[("cmd", "open"), ("docID", "d1")], body.to_string()),
            true,
        )
        .unwrap()
    }

    #[test]
    fn accumulator_parses_whole_request() {
        let bytes = request_bytes("docContents=hello");
        let mut acc = RequestAccumulator::new();
        acc.push(&bytes);
        let parsed = acc.try_next().unwrap().unwrap();
        assert_eq!(parsed.request.method, Method::Post);
        assert_eq!(parsed.request.path, "/Doc");
        assert!(acc.is_empty(), "whole message consumed");
    }

    #[test]
    fn accumulator_resumes_across_byte_splits() {
        let bytes = request_bytes("docContents=split+me");
        for split in 0..bytes.len() {
            let mut acc = RequestAccumulator::new();
            acc.push(&bytes[..split]);
            assert!(
                acc.try_next().unwrap().is_none(),
                "no request from a {split}-byte prefix"
            );
            acc.push(&bytes[split..]);
            let parsed = acc.try_next().unwrap().expect("complete after remainder");
            assert_eq!(parsed.request.body_text().unwrap(), "docContents=split+me");
        }
    }

    #[test]
    fn accumulator_keeps_pipelined_followers() {
        let mut bytes = request_bytes("a=1");
        bytes.extend_from_slice(&request_bytes("b=2"));
        let mut acc = RequestAccumulator::new();
        acc.push(&bytes);
        let first = acc.try_next().unwrap().unwrap();
        assert_eq!(first.request.body_text().unwrap(), "a=1");
        let second = acc.try_next().unwrap().unwrap();
        assert_eq!(second.request.body_text().unwrap(), "b=2");
        assert!(acc.try_next().unwrap().is_none());
    }

    #[test]
    fn accumulator_surfaces_malformed_bytes() {
        let mut acc = RequestAccumulator::new();
        acc.push(b"NONSENSE\r\n\r\n");
        assert!(matches!(acc.try_next(), Err(NetError::Malformed { .. })));
    }

    #[test]
    fn accumulator_rejects_oversize_heads_without_hoarding() {
        let mut acc = RequestAccumulator::new();
        // An endless request line with no terminator in sight.
        acc.push(&vec![b'a'; HEAD_ATTEMPT_BYTES + 10]);
        assert!(matches!(acc.try_next(), Err(NetError::TooLarge { .. })));
    }

    #[test]
    fn content_length_scan_is_permissive() {
        assert_eq!(scan_content_length(b"POST / HTTP/1.1\r\ncontent-length: 42\r\n\r\n"), 42);
        assert_eq!(scan_content_length(b"POST / HTTP/1.1\r\nCONTENT-LENGTH:7\r\n\r\n"), 7);
        assert_eq!(scan_content_length(b"GET / HTTP/1.1\r\nhost: x\r\n\r\n"), 0);
        assert_eq!(scan_content_length(b"GET / HTTP/1.1\r\ncontent-length: pear\r\n\r\n"), 0);
    }

    #[test]
    fn timer_wheel_fires_in_order_and_recirculates() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10), start);
        wheel.schedule(start + Duration::from_millis(25), start, 1, 0, 7);
        // Far beyond the 80 ms horizon: parks at the farthest slot.
        wheel.schedule(start + Duration::from_millis(500), start, 2, 0, 3);
        let mut fired = Vec::new();
        wheel.tick(start + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![(1, 0, 7)]);
        fired.clear();
        // The far entry surfaces within one revolution; the caller would
        // re-schedule it (same seq) because its deadline is still ahead,
        // or drop it if the connection re-armed with a newer seq.
        wheel.tick(start + Duration::from_millis(120), &mut fired);
        assert_eq!(fired, vec![(2, 0, 3)]);
    }

    #[test]
    fn slab_generations_invalidate_stale_handles() {
        let mut slab = Slab::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let make_conn = || Conn {
            stream: TcpStream::connect(listener.local_addr().unwrap()).unwrap(),
            state: ConnState::Reading,
            acc: RequestAccumulator::new(),
            outbuf: Vec::new(),
            outpos: 0,
            close_after_write: false,
            deadline: None,
            deadline_seq: 0,
            served: 0,
            queued: None,
            parked: None,
            peer_eof: false,
            created: Instant::now(),
        };
        let (slot, gen0) = slab.insert(make_conn());
        assert!(slab.get_mut(slot, gen0).is_some());
        slab.remove(slot);
        assert!(slab.get_mut(slot, gen0).is_none(), "stale generation rejected");
        let (slot2, gen1) = slab.insert(make_conn());
        assert_eq!(slot2, slot, "slot reused");
        assert_ne!(gen0, gen1);
        assert!(slab.get_mut(slot2, gen1).is_some());
    }
}
