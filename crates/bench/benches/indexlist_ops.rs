//! Criterion comparison of the IndexedSkipList against the IndexedAvlTree
//! (the §V-C "any balanced tree would do" ablation) and against naive
//! `Vec` splicing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pe_indexlist::{BlockSeq, IndexedAvlTree, IndexedSkipList, Weighted};

#[derive(Debug, Clone)]
struct Block(u8);

impl Weighted for Block {
    fn weight(&self) -> usize {
        self.0 as usize
    }
}

fn fill<S: BlockSeq<Block>>(seq: &mut S, n: usize) {
    for i in 0..n {
        seq.insert(i, Block(1 + (i % 8) as u8));
    }
}

fn locate(c: &mut Criterion) {
    let mut group = c.benchmark_group("locate_by_char");
    for n in [1_000usize, 10_000, 100_000] {
        let mut skiplist = IndexedSkipList::with_seed(1);
        fill(&mut skiplist, n);
        let mut avl = IndexedAvlTree::new();
        fill(&mut avl, n);
        let total = skiplist.total_weight();
        group.bench_with_input(BenchmarkId::new("skiplist", n), &total, |b, &total| {
            let mut probe = 0usize;
            b.iter(|| {
                probe = (probe + 7919) % total;
                skiplist.locate(probe)
            })
        });
        group.bench_with_input(BenchmarkId::new("avl", n), &total, |b, &total| {
            let mut probe = 0usize;
            b.iter(|| {
                probe = (probe + 7919) % total;
                avl.locate(probe)
            })
        });
    }
    group.finish();
}

fn insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_remove_middle");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_function(BenchmarkId::new("skiplist", n), |b| {
            let mut seq = IndexedSkipList::with_seed(2);
            fill(&mut seq, n);
            b.iter(|| {
                seq.insert(n / 2, Block(4));
                seq.remove(n / 2);
            })
        });
        group.bench_function(BenchmarkId::new("avl", n), |b| {
            let mut seq = IndexedAvlTree::new();
            fill(&mut seq, n);
            b.iter(|| {
                seq.insert(n / 2, Block(4));
                seq.remove(n / 2);
            })
        });
        group.bench_function(BenchmarkId::new("vec_splice", n), |b| {
            let mut seq: Vec<Block> = (0..n).map(|i| Block(1 + (i % 8) as u8)).collect();
            b.iter(|| {
                seq.insert(n / 2, Block(4));
                seq.remove(n / 2);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, locate, insert_remove);
criterion_main!(benches);
