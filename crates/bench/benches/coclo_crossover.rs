//! Criterion comparison of one edit under incremental encryption vs the
//! CoClo full-re-encryption baseline, across document sizes — the
//! efficiency claim that motivates the paper's scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pe_core::baseline::CoCloDocument;
use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, SchemeParams};
use pe_crypto::CtrDrbg;

fn key() -> DocumentKey {
    DocumentKey::derive("criterion", &[0x57; 16], 100)
}

fn text(len: usize) -> Vec<u8> {
    (0..len).map(|i| 32 + ((i * 31) % 95) as u8).collect()
}

fn single_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_edit_cost");
    for size in [1_000usize, 10_000, 50_000] {
        let plaintext = text(size);
        group.bench_with_input(
            BenchmarkId::new("incremental_recb", size),
            &plaintext,
            |b, pt| {
                let mut doc = RecbDocument::create(
                    &key(),
                    SchemeParams::recb(8),
                    pt,
                    CtrDrbg::from_seed(6),
                )
                .unwrap();
                let mut toggle = false;
                b.iter(|| {
                    if toggle {
                        doc.apply(&EditOp::delete(doc.len() / 2, 10)).unwrap()
                    } else {
                        doc.apply(&EditOp::insert(doc.len() / 2, b"ten chars!")).unwrap()
                    };
                    toggle = !toggle;
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("coclo_full", size), &plaintext, |b, pt| {
            let mut doc =
                CoCloDocument::create(&key(), SchemeParams::recb(8), pt, CtrDrbg::from_seed(7))
                    .unwrap();
            let mut toggle = false;
            b.iter(|| {
                if toggle {
                    doc.apply(&EditOp::delete(doc.len() / 2, 10)).unwrap()
                } else {
                    doc.apply(&EditOp::insert(doc.len() / 2, b"ten chars!")).unwrap()
                };
                toggle = !toggle;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, single_edit);
criterion_main!(benches);
