//! Criterion micro-benchmarks for the cryptographic operations of both
//! incremental schemes (the Figure 4 quantities, statistically rigorous).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pe_core::{
    DeltaTransformer, DocumentKey, IncrementalCipherDoc, RecbDocument, RpcDocument, SchemeParams,
};
use pe_crypto::CtrDrbg;
use pe_delta::Delta;

fn key() -> DocumentKey {
    DocumentKey::derive("criterion", &[0x55; 16], 100)
}

fn text(len: usize) -> Vec<u8> {
    (0..len).map(|i| 32 + ((i * 31) % 95) as u8).collect()
}

fn encrypt_whole(c: &mut Criterion) {
    let mut group = c.benchmark_group("encrypt_whole_document");
    for size in [1_000usize, 5_000, 10_000] {
        let plaintext = text(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("rpc_b7", size), &plaintext, |b, pt| {
            b.iter(|| {
                RpcDocument::create(&key(), SchemeParams::rpc(7), pt, CtrDrbg::from_seed(1))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("recb_b8", size), &plaintext, |b, pt| {
            b.iter(|| {
                RecbDocument::create(&key(), SchemeParams::recb(8), pt, CtrDrbg::from_seed(1))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn decrypt_whole(c: &mut Criterion) {
    let mut group = c.benchmark_group("decrypt_whole_document");
    for size in [1_000usize, 10_000] {
        let plaintext = text(size);
        let rpc =
            RpcDocument::create(&key(), SchemeParams::rpc(7), &plaintext, CtrDrbg::from_seed(2))
                .unwrap();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("rpc_b7", size), &rpc, |b, doc| {
            b.iter(|| doc.decrypt().unwrap())
        });
    }
    group.finish();
}

fn incremental_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_update");
    for size in [1_000usize, 10_000] {
        let plaintext = text(size);
        let delta = {
            let mut builder = Delta::builder();
            builder.retain(size / 2).delete(5).insert("refre");
            builder.build()
        };
        group.bench_with_input(BenchmarkId::new("rpc_b7", size), &plaintext, |b, pt| {
            let doc =
                RpcDocument::create(&key(), SchemeParams::rpc(7), pt, CtrDrbg::from_seed(3))
                    .unwrap();
            let mut transformer = DeltaTransformer::new(doc);
            b.iter(|| {
                transformer.transform(&delta).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, encrypt_whole, decrypt_whole, incremental_update);
criterion_main!(benches);
