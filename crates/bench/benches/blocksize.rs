//! Criterion sweep over block sizes (the Figure 6/7 axis): encryption and
//! edit cost per block size for rECB mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, SchemeParams, SealedBlock};
use pe_crypto::CtrDrbg;
use pe_indexlist::IndexedAvlTree;

fn key() -> DocumentKey {
    DocumentKey::derive("criterion", &[0x56; 16], 100)
}

fn text(len: usize) -> Vec<u8> {
    (0..len).map(|i| 32 + ((i * 31) % 95) as u8).collect()
}

fn encrypt_by_block_size(c: &mut Criterion) {
    let plaintext = text(10_000);
    let mut group = c.benchmark_group("encrypt_by_block_size");
    group.throughput(Throughput::Bytes(plaintext.len() as u64));
    for b in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(b), &plaintext, |bench, pt| {
            bench.iter(|| {
                RecbDocument::create(&key(), SchemeParams::recb(b), pt, CtrDrbg::from_seed(4))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn edit_by_block_size(c: &mut Criterion) {
    let plaintext = text(10_000);
    let mut group = c.benchmark_group("edit_by_block_size");
    for b in [1usize, 2, 4, 8] {
        let mut doc =
            RecbDocument::create(&key(), SchemeParams::recb(b), &plaintext, CtrDrbg::from_seed(5))
                .unwrap();
        group.bench_function(BenchmarkId::from_parameter(b), |bench| {
            let mut toggle = false;
            bench.iter(|| {
                // Alternate insert/delete so the document size stays bounded.
                if toggle {
                    doc.apply(&EditOp::delete(doc.len() / 2, 7)).unwrap()
                } else {
                    doc.apply(&EditOp::insert(doc.len() / 2, b"seven!!")).unwrap()
                };
                toggle = !toggle;
            })
        });
    }
    group.finish();
}

/// Scheme-level ablation of the §V-C backing-store choice: the same rECB
/// edits over the IndexedSkipList vs the IndexedAvlTree.
fn edit_by_backing_store(c: &mut Criterion) {
    let plaintext = text(10_000);
    let mut group = c.benchmark_group("edit_by_backing_store");
    group.bench_function("skiplist", |bench| {
        let mut doc =
            RecbDocument::create(&key(), SchemeParams::recb(8), &plaintext, CtrDrbg::from_seed(8))
                .unwrap();
        let mut toggle = false;
        bench.iter(|| {
            if toggle {
                doc.apply(&EditOp::delete(doc.len() / 2, 7)).unwrap()
            } else {
                doc.apply(&EditOp::insert(doc.len() / 2, b"seven!!")).unwrap()
            };
            toggle = !toggle;
        })
    });
    group.bench_function("avl", |bench| {
        let mut doc: RecbDocument<IndexedAvlTree<SealedBlock>> =
            RecbDocument::create_with_backing(
                &key(),
                SchemeParams::recb(8),
                &plaintext,
                CtrDrbg::from_seed(8),
            )
            .unwrap();
        let mut toggle = false;
        bench.iter(|| {
            if toggle {
                doc.apply(&EditOp::delete(doc.len() / 2, 7)).unwrap()
            } else {
                doc.apply(&EditOp::insert(doc.len() / 2, b"seven!!")).unwrap()
            };
            toggle = !toggle;
        })
    });
    group.finish();
}

criterion_group!(benches, encrypt_by_block_size, edit_by_block_size, edit_by_backing_store);
criterion_main!(benches);
