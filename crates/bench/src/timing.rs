//! Small timing/statistics helpers shared by the harnesses.

use std::time::{Duration, Instant};

/// Times a closure, returning its result and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub dev: f64,
}

impl Stats {
    /// Computes statistics over a sample; empty samples give zeros.
    pub fn of(samples: &[f64]) -> Stats {
        if samples.is_empty() {
            return Stats { mean: 0.0, dev: 0.0 };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Stats { mean, dev: var.sqrt() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_sample() {
        let stats = Stats::of(&[2.0, 2.0, 2.0]);
        assert_eq!(stats.mean, 2.0);
        assert_eq!(stats.dev, 0.0);
    }

    #[test]
    fn stats_of_known_sample() {
        let stats = Stats::of(&[1.0, 2.0, 3.0]);
        assert!((stats.mean - 2.0).abs() < 1e-12);
        assert!((stats.dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_sample() {
        assert_eq!(Stats::of(&[]), Stats { mean: 0.0, dev: 0.0 });
    }

    #[test]
    fn timed_returns_value() {
        let (value, elapsed) = timed(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(elapsed < Duration::from_secs(1));
    }
}
