//! Crypto fast-path throughput: full-document encrypt+decrypt, scalar
//! baseline vs the T-table batch engine, measured **in the same run**.
//!
//! The baseline replays the pre-fast-path rECB full-document loop
//! exactly: owned per-chunk buffers, one byte-oriented
//! [`ScalarAes128`](pe_crypto::aes::reference::ScalarAes128) call per
//! block, a per-block position-searched insert into the vendored pre-PR
//! skip list ([`PreprSkipList`], whose nodes still heap-allocate their
//! towers), and — on decrypt — a per-ordinal skip-list search plus a
//! fresh `Vec` per opened block. The fast path is the shipping
//! [`RecbDocument`] `create`/`decrypt` pair, which packs all blocks
//! contiguously, runs the T-table cipher in one batch pass, and
//! bulk-appends the sealed blocks. Both sides draw identical nonce
//! values — the baseline through the vendored pre-PR
//! [`PreprCtrDrbg`](crate::prepr_drbg::PreprCtrDrbg), which pays one
//! scalar AES call per 16 keystream bytes just as the old generator did
//! — so the ratio isolates the cipher engine and the allocation
//! discipline.

use pe_core::{DocumentKey, IncrementalCipherDoc, RecbDocument, SchemeParams};
use pe_crypto::aes::reference::ScalarAes128;
use pe_crypto::aes::FORCE_BACKEND_ENV;
use pe_crypto::drbg::NonceSource;
use pe_crypto::{AesBackend, BlockCipher, CtrDrbg};
use pe_indexlist::Weighted;

use crate::prepr_drbg::PreprCtrDrbg;
use crate::prepr_list::PreprSkipList;
use crate::timing::timed;

/// One measured document size.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Plaintext size in bytes.
    pub size_bytes: usize,
    /// AES backend the fast path ran on (`scalar`/`table`/`aesni`).
    pub aes_backend: &'static str,
    /// Scalar (pre-fast-path) full-document encrypt, seconds.
    pub scalar_encrypt_s: f64,
    /// Scalar full-document decrypt, seconds.
    pub scalar_decrypt_s: f64,
    /// Fast-path (`RecbDocument::create`) encrypt, seconds.
    pub fast_encrypt_s: f64,
    /// Fast-path (`RecbDocument::decrypt`) decrypt, seconds.
    pub fast_decrypt_s: f64,
}

impl ThroughputRow {
    /// Encrypt speedup of the fast path over the scalar baseline.
    pub fn encrypt_speedup(&self) -> f64 {
        self.scalar_encrypt_s / self.fast_encrypt_s
    }

    /// Decrypt speedup of the fast path over the scalar baseline.
    pub fn decrypt_speedup(&self) -> f64 {
        self.scalar_decrypt_s / self.fast_decrypt_s
    }

    /// Combined encrypt+decrypt (roundtrip) speedup.
    pub fn roundtrip_speedup(&self) -> f64 {
        (self.scalar_encrypt_s + self.scalar_decrypt_s)
            / (self.fast_encrypt_s + self.fast_decrypt_s)
    }

    /// Fast-path roundtrip throughput in MiB/s.
    pub fn fast_throughput_mib_s(&self) -> f64 {
        let total = self.fast_encrypt_s + self.fast_decrypt_s;
        (2.0 * self.size_bytes as f64) / (1024.0 * 1024.0) / total
    }
}

/// Raw block-cipher throughput for one backend: `encrypt_blocks` /
/// `decrypt_blocks` over a contiguous 1 MiB buffer, no document
/// machinery. This is the layer the AES-NI acceptance criterion measures
/// — the document rows above it also carry skip-list and packing costs
/// that dilute the cipher win at large sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct CipherRow {
    /// AES backend measured.
    pub aes_backend: &'static str,
    /// Bulk encryption throughput, MiB/s.
    pub encrypt_mib_s: f64,
    /// Bulk decryption throughput, MiB/s.
    pub decrypt_mib_s: f64,
}

/// Measures raw [`BlockCipher::encrypt_blocks`] / `decrypt_blocks`
/// throughput per backend over a 1 MiB buffer (best of `reps`).
pub fn raw_cipher_throughput(backends: &[AesBackend], reps: usize) -> Vec<CipherRow> {
    let reps = reps.max(1);
    let key = [0x42u8; 16];
    let mut blocks = vec![[0u8; 16]; 65536]; // 1 MiB
    for (i, block) in blocks.iter_mut().enumerate() {
        block[0] = i as u8;
        block[1] = (i >> 8) as u8;
    }
    let mib = blocks.len() as f64 * 16.0 / (1024.0 * 1024.0);
    backends
        .iter()
        .map(|&backend| {
            let cipher = pe_crypto::Aes128::with_backend(&key, backend);
            let mut enc_s = f64::INFINITY;
            let mut dec_s = f64::INFINITY;
            for _ in 0..reps {
                let (_, e) = timed(|| cipher.encrypt_blocks(&mut blocks));
                let (_, d) = timed(|| cipher.decrypt_blocks(&mut blocks));
                enc_s = enc_s.min(e.as_secs_f64());
                dec_s = dec_s.min(d.as_secs_f64());
            }
            CipherRow {
                aes_backend: backend.name(),
                encrypt_mib_s: mib / enc_s,
                decrypt_mib_s: mib / dec_s,
            }
        })
        .collect()
}

/// A sealed block of the scalar baseline (tag byte + ciphertext), the
/// same information `RecbDocument` keeps per block.
#[derive(Debug, Clone)]
struct ScalarBlock(u8, [u8; 16]);

impl Weighted for ScalarBlock {
    fn weight(&self) -> usize {
        self.0 as usize
    }
}

/// The pre-fast-path rECB full-document encrypt: owned chunk buffers,
/// one scalar AES call per block, and one position-searched skip-list
/// insert per block (exactly what `create` did before the batch engine).
/// The nonce source is `dyn`-dispatched per block, mirroring the old
/// document structs' `Box<dyn NonceSource>` field.
fn scalar_encrypt(
    cipher: &ScalarAes128,
    r0: &[u8; 8],
    rng: &mut dyn NonceSource,
    text: &[u8],
    b: usize,
) -> PreprSkipList<ScalarBlock> {
    let pieces: Vec<Vec<u8>> = text.chunks(b).map(<[u8]>::to_vec).collect();
    let mut blocks = PreprSkipList::new();
    for (i, piece) in pieces.into_iter().enumerate() {
        let mut ri = [0u8; 8];
        rng.fill_bytes(&mut ri);
        let mut payload = [0u8; 8];
        payload[..piece.len()].copy_from_slice(&piece);
        let mut block = [0u8; 16];
        for k in 0..8 {
            block[k] = r0[k] ^ ri[k];
            block[8 + k] = ri[k] ^ payload[k];
        }
        cipher.encrypt_block(&mut block);
        pe_observe::static_counter!("bench.scalar.blocks_sealed").inc();
        blocks.insert(i, ScalarBlock(piece.len() as u8, block));
    }
    blocks
}

/// The pre-fast-path rECB full-document decrypt: the old `decrypt()`
/// called `open_block(ordinal)` per block, which re-searched the skip
/// list by ordinal (`get` is an `O(log n)` walk) and returned a fresh
/// `Vec` per block.
fn scalar_decrypt(
    cipher: &ScalarAes128,
    r0: &[u8; 8],
    blocks: &PreprSkipList<ScalarBlock>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(blocks.total_weight());
    for ordinal in 0..blocks.len_blocks() {
        let ScalarBlock(len, sealed) = blocks.get(ordinal).expect("ordinal in range");
        let mut block = *sealed;
        cipher.decrypt_block(&mut block);
        let mut data = Vec::with_capacity(*len as usize);
        for k in 0..*len as usize {
            let ri = block[k] ^ r0[k];
            data.push(block[8 + k] ^ ri);
        }
        pe_observe::static_counter!("bench.scalar.blocks_opened").inc();
        out.extend_from_slice(&data);
    }
    out
}

/// Deterministic printable plaintext of `len` bytes.
pub fn sample_text(len: usize) -> Vec<u8> {
    let alphabet = b"abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ,. ";
    (0..len).map(|i| alphabet[(i * 31 + i / 7) % alphabet.len()]).collect()
}

/// Measures full-document encrypt+decrypt at each size, best of `reps`
/// repetitions per side (minimum wall time, which is the least noisy
/// estimator on a shared machine).
pub fn crypto_throughput(sizes: &[usize], reps: usize, seed: u64) -> Vec<ThroughputRow> {
    let reps = reps.max(1);
    let key = DocumentKey::derive("bench-password", &[0x42u8; 16], 100);
    let scalar = ScalarAes128::new(&[0x42u8; 16]);
    let r0 = [0x24u8; 8];
    sizes
        .iter()
        .map(|&size| {
            let text = sample_text(size);
            let mut scalar_encrypt_s = f64::INFINITY;
            let mut scalar_decrypt_s = f64::INFINITY;
            let mut fast_encrypt_s = f64::INFINITY;
            let mut fast_decrypt_s = f64::INFINITY;
            for rep in 0..reps {
                let rep_seed = seed ^ (rep as u64) << 32 ^ size as u64;
                let mut rng: Box<dyn NonceSource + Send> =
                    Box::new(PreprCtrDrbg::from_seed(rep_seed));
                let (blocks, enc) =
                    timed(|| scalar_encrypt(&scalar, &r0, &mut *rng, &text, 8));
                let (plain, dec) = timed(|| scalar_decrypt(&scalar, &r0, &blocks));
                assert_eq!(plain, text, "scalar roundtrip must hold");
                scalar_encrypt_s = scalar_encrypt_s.min(enc.as_secs_f64());
                scalar_decrypt_s = scalar_decrypt_s.min(dec.as_secs_f64());

                let (doc, enc) = timed(|| {
                    RecbDocument::create(
                        &key,
                        SchemeParams::recb(8),
                        &text,
                        CtrDrbg::from_seed(rep_seed),
                    )
                    .expect("create")
                });
                let (plain, dec) = timed(|| doc.decrypt().expect("decrypt"));
                assert_eq!(plain, text, "fast-path roundtrip must hold");
                fast_encrypt_s = fast_encrypt_s.min(enc.as_secs_f64());
                fast_decrypt_s = fast_decrypt_s.min(dec.as_secs_f64());
            }
            ThroughputRow {
                size_bytes: size,
                aes_backend: AesBackend::select().name(),
                scalar_encrypt_s,
                scalar_decrypt_s,
                fast_encrypt_s,
                fast_decrypt_s,
            }
        })
        .collect()
}

/// Runs [`crypto_throughput`] once per forced backend, pooling the
/// scalar-baseline columns across backend runs (the baseline does not
/// depend on the dispatch layer, so every run is another sample of the
/// same quantity and the minimum is kept — old and new rows stay
/// comparable via the `aes_backend` field).
///
/// Forces each backend through [`FORCE_BACKEND_ENV`], which is
/// process-global: callers must be effectively single-threaded (the
/// bench binaries are). The previous value is restored on return.
pub fn crypto_throughput_matrix(
    sizes: &[usize],
    reps: usize,
    seed: u64,
    backends: &[AesBackend],
) -> Vec<ThroughputRow> {
    let saved = std::env::var(FORCE_BACKEND_ENV).ok();
    let mut baseline: Vec<ThroughputRow> = Vec::new();
    let mut rows = Vec::with_capacity(backends.len() * sizes.len());
    for &backend in backends {
        std::env::set_var(FORCE_BACKEND_ENV, backend.name());
        let mut batch = crypto_throughput(sizes, reps, seed);
        if baseline.is_empty() {
            baseline = batch.clone();
        } else {
            // Keep the cheapest scalar-baseline observation per size:
            // the baseline cipher never changes, so re-measurements are
            // just extra samples of the same quantity.
            for (row, base) in batch.iter_mut().zip(&baseline) {
                row.scalar_encrypt_s = row.scalar_encrypt_s.min(base.scalar_encrypt_s);
                row.scalar_decrypt_s = row.scalar_decrypt_s.min(base.scalar_decrypt_s);
            }
        }
        rows.extend(batch);
    }
    match saved {
        Some(value) => std::env::set_var(FORCE_BACKEND_ENV, value),
        None => std::env::remove_var(FORCE_BACKEND_ENV),
    }
    rows
}

/// Renders the rows as the JSON document committed as `BENCH_crypto.json`.
pub fn render_json(rows: &[ThroughputRow], cipher_rows: &[CipherRow], reps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"crypto_throughput\",\n");
    out.push_str("  \"mode\": \"recb\",\n");
    out.push_str("  \"block_size\": 8,\n");
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!("  \"aesni_supported\": {},\n", AesBackend::aesni_supported()));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"size_bytes\": {}, \"aes_backend\": \"{}\", \
             \"scalar_encrypt_s\": {:.6}, \"scalar_decrypt_s\": {:.6}, \
             \"fast_encrypt_s\": {:.6}, \"fast_decrypt_s\": {:.6}, \"encrypt_speedup\": {:.2}, \
             \"decrypt_speedup\": {:.2}, \"roundtrip_speedup\": {:.2}, \
             \"fast_throughput_mib_s\": {:.2}}}{}\n",
            row.size_bytes,
            row.aes_backend,
            row.scalar_encrypt_s,
            row.scalar_decrypt_s,
            row.fast_encrypt_s,
            row.fast_decrypt_s,
            row.encrypt_speedup(),
            row.decrypt_speedup(),
            row.roundtrip_speedup(),
            row.fast_throughput_mib_s(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"cipher_rows\": [\n");
    for (i, row) in cipher_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"aes_backend\": \"{}\", \"encrypt_mib_s\": {:.2}, \
             \"decrypt_mib_s\": {:.2}}}{}\n",
            row.aes_backend,
            row.encrypt_mib_s,
            row.decrypt_mib_s,
            if i + 1 == cipher_rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_path_matches_fast_path_plaintext() {
        // Not ciphertext — the scalar baseline uses its own key/r0 — but
        // both sides must roundtrip the same text.
        let rows = crypto_throughput(&[256, 1024], 1, 7);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.scalar_encrypt_s > 0.0 && row.fast_encrypt_s > 0.0);
        }
    }

    #[test]
    fn json_report_is_well_formed() {
        let rows = crypto_throughput(&[512], 1, 9);
        let cipher_rows = raw_cipher_throughput(&[AesBackend::Table], 1);
        let json = render_json(&rows, &cipher_rows, 1);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"size_bytes\": 512"));
        assert!(json.contains("roundtrip_speedup"));
        assert!(json.contains("\"aes_backend\": \""));
        assert!(json.contains("\"aesni_supported\": "));
        assert!(json.contains("\"cipher_rows\""));
        assert!(json.contains("\"encrypt_mib_s\""));
        // Balanced braces/brackets (a cheap structural check without a
        // JSON parser in the dependency set).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn sample_text_is_deterministic() {
        assert_eq!(sample_text(100), sample_text(100));
        assert_eq!(sample_text(100).len(), 100);
    }

    #[test]
    fn backend_matrix_labels_rows() {
        let backends = [AesBackend::Scalar, AesBackend::Table];
        let rows = crypto_throughput_matrix(&[256], 1, 3, &backends);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].aes_backend, "scalar");
        assert_eq!(rows[1].aes_backend, "table");
        // The pooled baseline columns are identical across backend rows.
        assert!(rows[1].scalar_encrypt_s <= rows[0].scalar_encrypt_s);
    }
}
