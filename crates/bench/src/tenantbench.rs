//! Multi-tenant key-management benchmarks: AES key-wrap latency,
//! grant/revoke cost as a function of document size (the paper's
//! "no re-encryption on membership change" claim), and directory
//! recovery time after a crash at directory scale.
//!
//! The grant/revoke sweep is the headline: each row stores a document
//! body of the given size, then repeatedly grants and revokes access
//! while asserting the stored ciphertext bytes never change. Because a
//! grant is one 40-byte wrapped-key record and a revoke is one record
//! delete, the measured latency must stay flat from 1 KiB to 1 MiB.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pe_cloud::docs::DocsServer;
use pe_crypto::CtrDrbg;
use pe_store::{DocStore, FsyncPolicy, ShardedLogStore, StoreConfig};
use pe_tenant::{DataKey, MasterKey, ServiceRecords, TenantDirectory, WRAPPED_KEY_BYTES};

/// A scratch directory deleted on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "pe-tenantbench-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// PBKDF2 iteration count for bench users: low on purpose, so the
/// sweeps measure wrap/record traffic rather than password stretching
/// (the KDF row reports stretching cost separately, at real settings).
const BENCH_ITERS: u32 = 32;

/// One measured key-hierarchy primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct WrapRow {
    /// Operation label (`kdf@10000`, `wrap`, `unwrap`).
    pub op: String,
    /// Timed repetitions.
    pub reps: u64,
    /// Mean nanoseconds per operation.
    pub mean_ns: f64,
    /// Worst observed single operation, nanoseconds.
    pub max_ns: u64,
}

/// One grant/revoke measurement at a fixed document body size.
#[derive(Debug, Clone, PartialEq)]
pub struct GrantRow {
    /// Stored document body bytes.
    pub body_bytes: usize,
    /// Timed grant→accept→revoke cycles.
    pub reps: u64,
    /// Mean microseconds for `grant` (mint invite, wrap under invite KEK).
    pub grant_us: f64,
    /// Mean microseconds for `accept` (unwrap invite, rewrap under grantee).
    pub accept_us: f64,
    /// Mean microseconds for `revoke` (delete wrapped-key record).
    pub revoke_us: f64,
    /// Whether the stored body bytes were byte-identical after every cycle.
    pub body_unchanged: bool,
}

/// One directory-recovery measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// Registered users.
    pub users: usize,
    /// Registered documents (each with one owner grant).
    pub docs: usize,
    /// Stored wrapped-key records.
    pub grants: usize,
    /// WAL shards backing the directory.
    pub shards: usize,
    /// Wall seconds to populate the directory (register + create).
    pub populate_wall_s: f64,
    /// Wall seconds to reopen the store cold (WAL replay).
    pub reopen_wall_s: f64,
    /// Wall seconds for a full directory scan (`stats`) after reopen.
    pub scan_wall_s: f64,
}

/// Measures the raw key-hierarchy primitives: PBKDF2 master-key
/// derivation at the default production iteration count, and RFC 3394
/// wrap/unwrap of a 32-byte data key (40-byte wrapped record).
pub fn wrap_unwrap_sweep(reps: u64, kdf_iters: u32) -> Vec<WrapRow> {
    let mut rng = CtrDrbg::from_seed(0x7e4a);
    let salt = [7u8; 16];
    let master = MasterKey::derive("bench-passphrase", &salt, kdf_iters);
    let data = DataKey::generate(&mut rng);
    let wrapped = data.wrap(&master);
    assert_eq!(wrapped.len(), WRAPPED_KEY_BYTES);

    let mut rows = Vec::new();
    // KDF reps are scaled down: one derivation is ~iterations PRF calls.
    let kdf_reps = (reps / 50).max(4);
    rows.push(time_op(&format!("kdf@{kdf_iters}"), kdf_reps, || {
        let m = MasterKey::derive("bench-passphrase", &salt, kdf_iters);
        std::hint::black_box(m.verifier()[0])
    }));
    rows.push(time_op("wrap", reps, || {
        std::hint::black_box(data.wrap(&master)[0])
    }));
    rows.push(time_op("unwrap", reps, || {
        let k = DataKey::unwrap(&master, &wrapped).expect("bench unwrap");
        std::hint::black_box(k.bytes()[0])
    }));
    rows
}

fn time_op(op: &str, reps: u64, mut f: impl FnMut() -> u8) -> WrapRow {
    // Warm-up pass so one-time table setup does not pollute the max.
    f();
    let mut total_ns = 0u128;
    let mut max_ns = 0u128;
    for _ in 0..reps {
        let started = Instant::now();
        f();
        let ns = started.elapsed().as_nanos();
        total_ns += ns;
        max_ns = max_ns.max(ns);
    }
    WrapRow {
        op: op.to_string(),
        reps,
        mean_ns: total_ns as f64 / reps as f64,
        max_ns: max_ns as u64,
    }
}

/// Measures grant/accept/revoke latency against stored documents of
/// increasing size, asserting after every cycle that the stored body
/// bytes are byte-identical — membership changes never touch content.
///
/// Bodies are written through [`DocStore::put_full`] directly (the raw
/// storage path), so sizes can exceed the public save endpoint's cap.
pub fn grant_revoke_sweep(sizes: &[usize], reps: u64) -> Vec<GrantRow> {
    let server = DocsServer::new();
    let dir = TenantDirectory::new(ServiceRecords::new(&server));
    let mut rng = CtrDrbg::from_seed(0x9c31);

    let owner = dir
        .register("owner", "owner-pass", BENCH_ITERS, &mut rng)
        .expect("register owner");
    let reader = dir
        .register("reader", "reader-pass", BENCH_ITERS, &mut rng)
        .expect("register reader");

    sizes
        .iter()
        .map(|&body_bytes| {
            let doc_id = format!("bench-doc-{body_bytes}");
            dir.create_document(&owner, &doc_id, &mut rng).expect("create doc");
            // A stand-in ciphertext body: printable so `stored_content`
            // round-trips it exactly like real sealed document text.
            let body: String =
                (0..body_bytes).map(|i| char::from(b'a' + (i % 26) as u8)).collect();
            server.store().put_full(&doc_id, body.as_bytes()).expect("store body");
            let before = server.store().content(&doc_id).expect("body stored");

            let mut grant_ns = 0u128;
            let mut accept_ns = 0u128;
            let mut revoke_ns = 0u128;
            let mut body_unchanged = true;
            for _ in 0..reps {
                let started = Instant::now();
                let code = dir.grant(&owner, &doc_id, "reader", &mut rng).expect("grant");
                grant_ns += started.elapsed().as_nanos();

                let started = Instant::now();
                dir.accept(&reader, &doc_id, &code).expect("accept");
                accept_ns += started.elapsed().as_nanos();

                let started = Instant::now();
                let removed = dir.revoke(&owner, &doc_id, "reader").expect("revoke");
                revoke_ns += started.elapsed().as_nanos();
                assert!(removed, "revoke must remove the grant");

                body_unchanged &=
                    server.store().content(&doc_id).as_deref() == Some(&before[..]);
            }
            let per_us = |ns: u128| ns as f64 / reps as f64 / 1_000.0;
            GrantRow {
                body_bytes,
                reps,
                grant_us: per_us(grant_ns),
                accept_us: per_us(accept_ns),
                revoke_us: per_us(revoke_ns),
                body_unchanged,
            }
        })
        .collect()
}

/// Populates a durable, sharded directory with `users` users and `docs`
/// documents (one owner grant each), then measures a cold reopen (WAL
/// replay) and a full directory scan.
pub fn recovery_bench(users: usize, docs: usize, shards: usize) -> RecoveryRow {
    let tmp = TempDir::new("recovery");
    let config = StoreConfig { fsync: FsyncPolicy::Never, ..Default::default() };
    let mut rng = CtrDrbg::from_seed(0x51ab);

    let populate_started = Instant::now();
    {
        let store = ShardedLogStore::open(&tmp.0, shards, config).expect("open store");
        let server = DocsServer::with_store(Arc::new(store));
        let dir = TenantDirectory::new(ServiceRecords::new(&server));

        // Documents round-robin over a pool of live sessions so the
        // grant records span many distinct user keys.
        let mut sessions = Vec::new();
        for i in 0..users {
            let name = format!("u{i:05}");
            let session = dir
                .register(&name, &format!("pw-{i}"), BENCH_ITERS, &mut rng)
                .expect("register");
            if sessions.len() < 16 {
                sessions.push(session);
            }
        }
        for i in 0..docs {
            let session = &sessions[i % sessions.len()];
            dir.create_document(session, &format!("doc{i:05}"), &mut rng)
                .expect("create doc");
        }
        server.store().flush().expect("flush");
    }
    let populate_wall_s = populate_started.elapsed().as_secs_f64();

    let reopen_started = Instant::now();
    let store = ShardedLogStore::open(&tmp.0, shards, config).expect("reopen store");
    let reopen_wall_s = reopen_started.elapsed().as_secs_f64();

    let server = DocsServer::with_store(Arc::new(store));
    let dir = TenantDirectory::new(ServiceRecords::new(&server));
    let scan_started = Instant::now();
    let stats = dir.stats().expect("stats");
    let scan_wall_s = scan_started.elapsed().as_secs_f64();
    assert_eq!(stats.users, users, "all users must survive the crash");
    assert_eq!(stats.documents, docs, "all documents must survive the crash");

    RecoveryRow {
        users,
        docs,
        grants: stats.grants,
        shards,
        populate_wall_s,
        reopen_wall_s,
        scan_wall_s,
    }
}

/// Renders all three sweeps as the JSON document committed as
/// `BENCH_tenant.json`.
pub fn render_json(
    wraps: &[WrapRow],
    grants: &[GrantRow],
    recoveries: &[RecoveryRow],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"tenant_bench\",\n");
    out.push_str(
        "  \"subsystem\": \"pe-tenant multi-tenant key directory (RFC 3394 AES-KW)\",\n",
    );
    out.push_str(&format!("  \"wrapped_key_bytes\": {WRAPPED_KEY_BYTES},\n"));
    out.push_str(&format!("  \"bench_kdf_iterations\": {BENCH_ITERS},\n"));
    out.push_str("  \"wrap_rows\": [\n");
    for (i, row) in wraps.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"reps\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}}}{}\n",
            row.op,
            row.reps,
            row.mean_ns,
            row.max_ns,
            if i + 1 == wraps.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"grant_rows\": [\n");
    for (i, row) in grants.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"body_bytes\": {}, \"reps\": {}, \"grant_us\": {:.2}, \
             \"accept_us\": {:.2}, \"revoke_us\": {:.2}, \"body_unchanged\": {}}}{}\n",
            row.body_bytes,
            row.reps,
            row.grant_us,
            row.accept_us,
            row.revoke_us,
            row.body_unchanged,
            if i + 1 == grants.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovery_rows\": [\n");
    for (i, row) in recoveries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"users\": {}, \"docs\": {}, \"grants\": {}, \"shards\": {}, \
             \"populate_wall_s\": {:.3}, \"reopen_wall_s\": {:.4}, \
             \"scan_wall_s\": {:.4}}}{}\n",
            row.users,
            row.docs,
            row.grants,
            row.shards,
            row.populate_wall_s,
            row.reopen_wall_s,
            row.scan_wall_s,
            if i + 1 == recoveries.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_rows_cover_all_ops() {
        let rows = wrap_unwrap_sweep(8, 100);
        let ops: Vec<&str> = rows.iter().map(|r| r.op.as_str()).collect();
        assert_eq!(ops, ["kdf@100", "wrap", "unwrap"]);
        assert!(rows.iter().all(|r| r.mean_ns > 0.0));
    }

    #[test]
    fn grant_cost_is_independent_of_body_size() {
        let rows = grant_revoke_sweep(&[1024, 64 * 1024], 8);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.body_unchanged), "bodies must never change");
        assert!(rows.iter().all(|r| r.grant_us > 0.0 && r.revoke_us > 0.0));
    }

    #[test]
    fn recovery_preserves_directory() {
        let row = recovery_bench(12, 20, 2);
        assert_eq!(row.users, 12);
        assert_eq!(row.docs, 20);
        assert_eq!(row.grants, 20);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let wraps = wrap_unwrap_sweep(4, 50);
        let grants = grant_revoke_sweep(&[1024], 2);
        let recs = vec![recovery_bench(4, 4, 2)];
        let json = render_json(&wraps, &grants, &recs);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"grant_rows\""));
        assert!(json.contains("\"body_unchanged\": true"));
    }
}
