//! The §VII-A functionality matrix: which application features survive
//! the privacy extension.
//!
//! Every status is *derived by driving the simulated system*, not
//! hard-coded: a feature is `Works` when its observable behaviour matches
//! the plaintext expectation, `Broken` when the request is forwarded but
//! the result is useless (the server only has ciphertext), `Blocked` when
//! the mediator drops the request, and `Partial` when it works in some
//! scenarios only (collaborative editing).

use std::sync::Arc;

use pe_cloud::docs::DocsServer;
use pe_cloud::{CloudService, Request};
use pe_crypto::{form, CtrDrbg};
use pe_delta::Delta;
use pe_extension::{DocsMediator, MediatorConfig, Outcome};

/// Observed status of one feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Feature behaves as in the plaintext deployment.
    Works,
    /// Request reaches the server but results are useless.
    Broken,
    /// The mediator drops the request.
    Blocked,
    /// Works in some collaboration patterns, conflicts in others.
    Partial,
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Status::Works => f.write_str("works"),
            Status::Broken => f.write_str("broken"),
            Status::Blocked => f.write_str("blocked"),
            Status::Partial => f.write_str("partial"),
        }
    }
}

/// One row of the functionality matrix.
#[derive(Debug, Clone)]
pub struct FeatureRow {
    /// Feature name.
    pub feature: &'static str,
    /// Status without the extension.
    pub without_extension: Status,
    /// Status with the extension.
    pub with_extension: Status,
}

struct Rig {
    server: Arc<DocsServer>,
    mediator: DocsMediator<Arc<DocsServer>>,
    doc_id: String,
}

fn rig(seed: u64, content: &str) -> Rig {
    let server = Arc::new(DocsServer::new());
    let mut mediator = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(seed),
    );
    let doc_id = mediator.create_document("matrix-pw").unwrap();
    mediator.save_full(&doc_id, content).unwrap();
    Rig { server, mediator, doc_id }
}

/// A plaintext document set up without any extension.
fn plain_doc(server: &DocsServer, content: &str) -> String {
    let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
    let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
    let doc_id = form::first_value(&pairs, "docID").unwrap().to_string();
    let body = form::encode_pairs(&[("docContents", content)]);
    server.handle(&Request::post("/Doc", &[("docID", &doc_id)], body));
    doc_id
}

fn spell_status(seed: u64) -> (Status, Status) {
    let content = "the quick brown fox zzqp";
    // Plaintext: exactly the one typo is flagged.
    let server = DocsServer::new();
    let doc = plain_doc(&server, content);
    let resp = server.handle(&Request::post("/spell", &[("docID", &doc)], ""));
    let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
    let without = if form::first_value(&pairs, "misspelled") == Some("zzqp") {
        Status::Works
    } else {
        Status::Broken
    };
    // Private: the same document through the extension.
    let mut rig = rig(seed, content);
    let mediated =
        rig.mediator.intercept(&Request::post("/spell", &[("docID", &rig.doc_id)], "")).unwrap();
    let pairs = form::parse_pairs(mediated.response.body_text().unwrap()).unwrap();
    let flagged = form::first_value(&pairs, "misspelled").unwrap_or("");
    let with = if flagged == "zzqp" { Status::Works } else { Status::Broken };
    (without, with)
}

fn translate_status(seed: u64) -> (Status, Status) {
    let content = "hello world";
    let server = DocsServer::new();
    let doc = plain_doc(&server, content);
    let resp = server.handle(&Request::post("/translate", &[("docID", &doc)], ""));
    let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
    let without = if form::first_value(&pairs, "translated") == Some("ellohay orldway") {
        Status::Works
    } else {
        Status::Broken
    };
    let mut rig = rig(seed, content);
    let mediated = rig
        .mediator
        .intercept(&Request::post("/translate", &[("docID", &rig.doc_id)], ""))
        .unwrap();
    let pairs = form::parse_pairs(mediated.response.body_text().unwrap()).unwrap();
    let with = if form::first_value(&pairs, "translated") == Some("ellohay orldway") {
        Status::Works
    } else {
        Status::Broken
    };
    (without, with)
}

fn export_status(seed: u64) -> (Status, Status) {
    let content = "export me";
    let server = DocsServer::new();
    let doc = plain_doc(&server, content);
    let resp = server.handle(&Request::get("/export", &[("docID", &doc), ("format", "txt")]));
    let without =
        if resp.body_text() == Some(content) { Status::Works } else { Status::Broken };
    let mut rig = rig(seed, content);
    let mediated = rig
        .mediator
        .intercept(&Request::get("/export", &[("docID", &rig.doc_id), ("format", "txt")]))
        .unwrap();
    let with = if mediated.response.body_text() == Some(content) {
        Status::Works
    } else {
        Status::Broken
    };
    (without, with)
}

fn drawing_status(seed: u64) -> (Status, Status) {
    let server = DocsServer::new();
    let resp = server.handle(&Request::post("/drawing", &[], "circle(1,2,3)"));
    let without = if resp.body_text() == Some("rendered:circle(1,2,3)") {
        Status::Works
    } else {
        Status::Broken
    };
    let mut rig = rig(seed, "irrelevant");
    let mediated =
        rig.mediator.intercept(&Request::post("/drawing", &[], "circle(1,2,3)")).unwrap();
    let with = if mediated.outcome == Outcome::Blocked { Status::Blocked } else { Status::Works };
    (without, with)
}

fn save_and_load_status(seed: u64) -> (Status, Status) {
    // Plaintext save/load trivially works; check the private side
    // round-trips through edits.
    let mut rig = rig(seed, "start");
    let mut delta = Delta::builder();
    delta.retain(5).insert(" and continue");
    rig.mediator.save_delta(&rig.doc_id, &delta.build()).unwrap();
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&rig.server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(seed ^ 1),
    );
    reader.register_password(&rig.doc_id, "matrix-pw");
    let with = match reader.open_document(&rig.doc_id) {
        Ok(text) if text == "start and continue" => Status::Works,
        _ => Status::Broken,
    };
    (Status::Works, with)
}

fn word_count_status(seed: u64) -> (Status, Status) {
    // Word counting is client-side: it operates on the editor buffer,
    // which the extension leaves in plaintext.
    let rig = rig(seed, "three little words");
    let seen = rig.mediator.plaintext(&rig.doc_id).unwrap();
    let count = seen.split_whitespace().count();
    let with = if count == 3 { Status::Works } else { Status::Broken };
    (Status::Works, with)
}

fn passive_collaboration_status(seed: u64) -> (Status, Status) {
    let mut rig = rig(seed, "shared draft");
    let mut delta = Delta::builder();
    delta.retain(6).insert(" updated");
    rig.mediator.save_delta(&rig.doc_id, &delta.build()).unwrap();
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&rig.server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(seed ^ 2),
    );
    reader.register_password(&rig.doc_id, "matrix-pw");
    let mediated =
        reader.intercept(&Request::get("/Doc/load", &[("docID", &rig.doc_id)])).unwrap();
    let pairs = form::parse_pairs(mediated.response.body_text().unwrap()).unwrap();
    let with = if form::first_value(&pairs, "content") == Some("shared updated draft") {
        Status::Works
    } else {
        Status::Broken
    };
    (Status::Works, with)
}

fn simultaneous_editing_status(seed: u64) -> (Status, Status) {
    // Two private writers on the same document: the second one's mediator
    // holds a stale ciphertext mirror, so its transformed delta lands on
    // changed ciphertext — the collaboration breaks or corrupts (§VII-A:
    // "leads to client's complaints of multiple people editing").
    let mut rig = rig(seed, "cooperative document body");
    let mut second = DocsMediator::with_rng(
        Arc::clone(&rig.server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(seed ^ 3),
    );
    second.register_password(&rig.doc_id, "matrix-pw");
    second.open_document(&rig.doc_id).unwrap();
    // First writer edits (changing the ciphertext layout)...
    let mut delta = Delta::builder();
    delta.insert("AAAA ");
    rig.mediator.save_delta(&rig.doc_id, &delta.build()).unwrap();
    // ...then the second writer saves an edit transformed against the old
    // ciphertext.
    let mut delta = Delta::builder();
    delta.retain(11).insert(" BBBB");
    let save = second.save_delta(&rig.doc_id, &delta.build());
    let broke = match save {
        Err(_) => true,
        Ok(mediated) if !mediated.response.is_success() => true,
        Ok(_) => {
            // Even if the server accepted it, the second writer's delta
            // was transformed against a stale ciphertext mirror, so a
            // fresh reader sees a document differing from the ideal merge
            // (what a collaboration-aware server would have produced).
            let ideal = "AAAA cooperative d BBBBocument body";
            let mut reader = DocsMediator::with_rng(
                Arc::clone(&rig.server),
                MediatorConfig::recb(8),
                CtrDrbg::from_seed(seed ^ 4),
            );
            reader.register_password(&rig.doc_id, "matrix-pw");
            reader.open_document(&rig.doc_id).map_or(true, |text| text != ideal)
        }
    };
    let with = if broke { Status::Partial } else { Status::Works };
    (Status::Works, with)
}

/// Drives every feature with and without the extension, returning the
/// observed matrix.
pub fn functionality_matrix(seed: u64) -> Vec<FeatureRow> {
    let mut rows = Vec::new();
    let (without, with) = save_and_load_status(seed);
    rows.push(FeatureRow { feature: "save / incremental save / load", without_extension: without, with_extension: with });
    let (without, with) = word_count_status(seed + 1);
    rows.push(FeatureRow { feature: "formatting & word count (client-side)", without_extension: without, with_extension: with });
    let (without, with) = spell_status(seed + 2);
    rows.push(FeatureRow { feature: "spell checking", without_extension: without, with_extension: with });
    let (without, with) = translate_status(seed + 3);
    rows.push(FeatureRow { feature: "translation", without_extension: without, with_extension: with });
    let (without, with) = export_status(seed + 4);
    rows.push(FeatureRow { feature: "export (download as)", without_extension: without, with_extension: with });
    let (without, with) = drawing_status(seed + 5);
    rows.push(FeatureRow { feature: "drawing pictures", without_extension: without, with_extension: with });
    let (without, with) = passive_collaboration_status(seed + 6);
    rows.push(FeatureRow { feature: "collaboration (passive readers)", without_extension: without, with_extension: with });
    let (without, with) = simultaneous_editing_status(seed + 7);
    rows.push(FeatureRow { feature: "collaboration (simultaneous editing)", without_extension: without, with_extension: with });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The derived matrix must reproduce §VII-A's findings.
    #[test]
    fn matrix_matches_paper() {
        let rows = functionality_matrix(100);
        let find = |name: &str| {
            rows.iter().find(|r| r.feature == name).unwrap_or_else(|| panic!("row {name}"))
        };
        let core = find("save / incremental save / load");
        assert_eq!(core.without_extension, Status::Works);
        assert_eq!(core.with_extension, Status::Works);
        assert_eq!(find("formatting & word count (client-side)").with_extension, Status::Works);
        assert_eq!(find("spell checking").without_extension, Status::Works);
        assert_eq!(find("spell checking").with_extension, Status::Broken);
        assert_eq!(find("translation").with_extension, Status::Broken);
        assert_eq!(find("export (download as)").with_extension, Status::Broken);
        assert_eq!(find("drawing pictures").with_extension, Status::Blocked);
        assert_eq!(find("collaboration (passive readers)").with_extension, Status::Works);
        assert_eq!(
            find("collaboration (simultaneous editing)").with_extension,
            Status::Partial
        );
        // Everything works without the extension.
        for row in &rows {
            assert_eq!(row.without_extension, Status::Works, "{}", row.feature);
        }
    }
}
