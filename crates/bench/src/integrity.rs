//! Integrity-mechanism ablation: the §V-A design space, measured.
//!
//! Three ways to get tamperproofing on top of (or instead of) the
//! confidentiality scheme:
//!
//! | mechanism | client state | update cost | where verified |
//! |---|---|---|---|
//! | RPC chaining | none | O(1) extra AES blocks | on every open (O(n)) |
//! | rECB + Merkle root | 32 bytes | O(log n)–O(n) hashes | on open (O(n) hashes) |
//! | rECB + IncMac | Ω(n) tags | O(changed) MACs (O(n) on shifts) | on open (O(n) MACs) |
//!
//! [`integrity_costs`] measures all three on the same edit workload so
//! the trade-offs §V-A describes in prose become numbers.

use pe_core::baseline::IncMac;
use pe_core::guard::MerkleGuard;
use pe_core::{
    DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, RpcDocument, SchemeParams,
};
use pe_crypto::CtrDrbg;

use crate::timing::timed;

/// Measured costs for one integrity mechanism.
#[derive(Debug, Clone)]
pub struct IntegrityRow {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Client-side persistent state in bytes (beyond the password).
    pub client_state_bytes: usize,
    /// Mean seconds per update (apply + authenticator maintenance).
    pub update_secs: f64,
    /// Seconds to verify a full document fetched from the server.
    pub verify_secs: f64,
    /// Ciphertext overhead records versus bare rECB.
    pub extra_records: usize,
}

fn key() -> DocumentKey {
    DocumentKey::derive("integrity", &[0x44; 16], 100)
}

fn edit_script(doc_len: usize, edits: usize) -> Vec<EditOp> {
    let mut state = 0x1357u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    (0..edits)
        .map(|i| {
            if i % 2 == 0 {
                EditOp::insert(next() % doc_len, b"edit text!")
            } else {
                EditOp::delete(next() % (doc_len - 20), 10)
            }
        })
        .collect()
}

/// Runs the same edit workload under all three mechanisms.
pub fn integrity_costs(doc_len: usize, edits: usize, seed: u64) -> Vec<IntegrityRow> {
    let text: Vec<u8> = (0..doc_len).map(|i| 32 + ((i * 13) % 95) as u8).collect();
    let script = edit_script(doc_len, edits);
    let mut rows = Vec::new();

    // Overhead baseline: a bare rECB document at the *same block
    // capacity* as RPC (7 chars) taken through the *same edit script*, so
    // "extra records" isolates integrity overhead from both block-size
    // differences and edit-induced fragmentation.
    let mut bare7 = RecbDocument::create(
        &key(),
        SchemeParams::recb(7),
        &text,
        CtrDrbg::from_seed(seed),
    )
    .unwrap();
    for op in &script {
        bare7.apply(op).unwrap();
    }
    let bare7_records = bare7.record_count();

    // RPC: integrity inside the scheme.
    let mut rpc =
        RpcDocument::create(&key(), SchemeParams::rpc(7), &text, CtrDrbg::from_seed(seed))
            .unwrap();
    let (_, update_time) = timed(|| {
        for op in &script {
            rpc.apply(op).unwrap();
        }
    });
    let (result, verify_time) = timed(|| rpc.decrypt());
    result.unwrap();
    rows.push(IntegrityRow {
        mechanism: "RPC (in-scheme)",
        client_state_bytes: 0,
        update_secs: update_time.as_secs_f64() / script.len() as f64,
        verify_secs: verify_time.as_secs_f64(),
        extra_records: rpc.record_count().saturating_sub(bare7_records),
    });

    // rECB + Merkle guard.
    let inner = RecbDocument::create(
        &key(),
        SchemeParams::recb(8),
        &text,
        CtrDrbg::from_seed(seed ^ 1),
    )
    .unwrap();
    let mut guarded = MerkleGuard::new(inner);
    let (_, update_time) = timed(|| {
        for op in &script {
            guarded.apply(op).unwrap();
        }
    });
    let served = guarded.serialize();
    let (result, verify_time) = timed(|| guarded.verify_served(&served));
    result.unwrap();
    rows.push(IntegrityRow {
        mechanism: "rECB + Merkle root",
        client_state_bytes: 32,
        update_secs: update_time.as_secs_f64() / script.len() as f64,
        verify_secs: verify_time.as_secs_f64(),
        extra_records: 0,
    });

    // rECB + IncMac.
    let mut doc = RecbDocument::create(
        &key(),
        SchemeParams::recb(8),
        &text,
        CtrDrbg::from_seed(seed ^ 2),
    )
    .unwrap();
    let mut mac = IncMac::new(key().mac_key(), &doc.serialize()).unwrap();
    let (_, update_time) = timed(|| {
        for op in &script {
            let patches = doc.apply(op).unwrap();
            mac.update(&patches, &doc.serialize()).unwrap();
        }
    });
    let served = doc.serialize();
    let (result, verify_time) = timed(|| mac.verify(&served));
    result.unwrap();
    rows.push(IntegrityRow {
        mechanism: "rECB + IncMac (Ω(n) tags)",
        client_state_bytes: mac.state_bytes(),
        update_secs: update_time.as_secs_f64() / script.len() as f64,
        verify_secs: verify_time.as_secs_f64(),
        extra_records: 0,
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_mechanisms_run_and_differ_as_documented() {
        let rows = integrity_costs(1_000, 6, 9);
        assert_eq!(rows.len(), 3);
        let rpc = &rows[0];
        let merkle = &rows[1];
        let incmac = &rows[2];
        // State sizes: RPC none, Merkle constant, IncMac linear.
        assert_eq!(rpc.client_state_bytes, 0);
        assert_eq!(merkle.client_state_bytes, 32);
        assert!(incmac.client_state_bytes > 1_000, "{incmac:?}");
        // RPC pays exactly one extra ciphertext record (the checksum
        // block; the header exists in rECB too); the sidecars pay none.
        assert_eq!(rpc.extra_records, 1);
        assert_eq!(merkle.extra_records, 0);
        assert_eq!(incmac.extra_records, 0);
        // All produce positive timings.
        for row in &rows {
            assert!(row.update_secs > 0.0 && row.verify_secs > 0.0, "{row:?}");
        }
    }
}
