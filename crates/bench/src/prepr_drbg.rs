//! The pre-fast-path `CtrDrbg`, vendored for the crypto throughput
//! baseline.
//!
//! The shipping generator in `pe-crypto` now refills through the T-table
//! cipher's batch path, 32 counter blocks at a time. Before this engine
//! existed, every 16 bytes of keystream cost one *byte-oriented scalar*
//! AES call — and the rECB seal loop draws 8 nonce bytes per block, so at
//! 64 KiB the old `create` paid ~4 k scalar AES blocks just for nonces.
//! The baseline must include that cost, so this replica reproduces the
//! original buffered single-block refill verbatim, driven by the
//! preserved [`ScalarAes128`] oracle.
//!
//! Given the same seed it emits byte-for-byte the same keystream as the
//! shipping [`CtrDrbg`](pe_crypto::CtrDrbg) (same key schedule, same
//! counter layout, AES is AES) — only the cost differs, which is exactly
//! the point.

use pe_crypto::aes::reference::ScalarAes128;
use pe_crypto::drbg::NonceSource;
use pe_crypto::BlockCipher;

/// Deterministic AES-128-CTR generator with the pre-PR refill discipline:
/// one scalar block cipher call per 16 bytes, no batching.
pub struct PreprCtrDrbg {
    cipher: ScalarAes128,
    counter: u128,
    /// Unused bytes from the most recent keystream block.
    pending: [u8; 16],
    pending_len: usize,
}

impl PreprCtrDrbg {
    /// Creates a generator from a full 16-byte key.
    pub fn new(key: [u8; 16]) -> PreprCtrDrbg {
        PreprCtrDrbg {
            cipher: ScalarAes128::new(&key),
            counter: 0,
            pending: [0u8; 16],
            pending_len: 0,
        }
    }

    /// Creates a generator from a small integer seed, expanding it exactly
    /// as the shipping `CtrDrbg::from_seed` does so both sides of the
    /// benchmark draw identical nonce values.
    pub fn from_seed(seed: u64) -> PreprCtrDrbg {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
        PreprCtrDrbg::new(key)
    }

    fn refill(&mut self) {
        let mut block = self.counter.to_le_bytes();
        self.counter = self.counter.wrapping_add(1);
        self.cipher.encrypt_block(&mut block);
        self.pending = block;
        self.pending_len = 16;
    }
}

impl NonceSource for PreprCtrDrbg {
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut filled = 0;
        while filled < buf.len() {
            if self.pending_len == 0 {
                self.refill();
            }
            let take = (buf.len() - filled).min(self.pending_len);
            let start = 16 - self.pending_len;
            buf[filled..filled + take].copy_from_slice(&self.pending[start..start + take]);
            self.pending_len -= take;
            filled += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_crypto::CtrDrbg;

    #[test]
    fn keystream_matches_shipping_drbg() {
        let mut old = PreprCtrDrbg::from_seed(0xfeed);
        let mut new = CtrDrbg::from_seed(0xfeed);
        let mut a = vec![0u8; 1000];
        let mut b = vec![0u8; 1000];
        old.fill_bytes(&mut a);
        new.fill_bytes(&mut b);
        assert_eq!(a, b, "replica must emit the shipping keystream");
    }

    #[test]
    fn chunked_reads_match_bulk_read() {
        let mut bulk = PreprCtrDrbg::from_seed(99);
        let mut chunked = PreprCtrDrbg::from_seed(99);
        let mut big = [0u8; 64];
        bulk.fill_bytes(&mut big);
        let mut pieces = Vec::new();
        for size in [1usize, 3, 16, 7, 20, 17] {
            let mut buf = vec![0u8; size];
            chunked.fill_bytes(&mut buf);
            pieces.extend_from_slice(&buf);
        }
        assert_eq!(pieces, big);
    }
}
