//! Figure 7: ciphertext blowup vs block size.
//!
//! The paper measures the ratio `|C| / |D|` after editing activity for
//! block sizes 1..=8 and reports the reduction relative to 1-character
//! blocks (21.00× → 3.75×, an 82 % reduction). Fragmentation from edits
//! keeps the measured blowup above the ideal `record/b` ratio — the same
//! effect our splitting/merging policy produces.

use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, SchemeParams};
use pe_crypto::drbg::NonceSource;
use pe_crypto::CtrDrbg;

/// One row of the Figure 7 table.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Characters per block.
    pub block_size: usize,
    /// Measured `|C| / |D|` after the edit workload.
    pub blowup: f64,
    /// Reduction relative to the 1-character-block blowup.
    pub reduction: f64,
    /// Mean characters stored per block (fill factor × b).
    pub mean_fill: f64,
}

/// Measures ciphertext blowup for every block size after `edits` random
/// edit operations on a document of `doc_len` characters.
pub fn fig7(doc_len: usize, edits: usize, seed: u64) -> Vec<Fig7Row> {
    let key = DocumentKey::derive("blowup", &[0x11; 16], 100);
    let mut rows: Vec<Fig7Row> = Vec::new();
    for b in 1..=8usize {
        let mut rng = CtrDrbg::from_seed(seed ^ (b as u64));
        let text: Vec<u8> =
            (0..doc_len).map(|_| 32 + (rng.next_below(95) as u8)).collect();
        let mut doc = RecbDocument::create(
            &key,
            SchemeParams::recb(b),
            &text,
            CtrDrbg::from_seed(seed.wrapping_add(b as u64)),
        )
        .unwrap();
        // Alternate random inserts and deletes so the length stays near
        // doc_len while splits fragment the blocks.
        for i in 0..edits {
            let len = doc.len();
            if i % 2 == 0 || len < 20 {
                let at = rng.next_below(len as u64 + 1) as usize;
                let ins_len = 1 + rng.next_below(30) as usize;
                let text: Vec<u8> =
                    (0..ins_len).map(|_| 32 + (rng.next_below(95) as u8)).collect();
                doc.apply(&EditOp::insert(at, &text)).unwrap();
            } else {
                let at = rng.next_below(len as u64 - 10) as usize;
                let del = 1 + rng.next_below(30.min(len as u64 - at as u64 - 1)) as usize;
                doc.apply(&EditOp::delete(at, del)).unwrap();
            }
        }
        let plaintext_len = doc.len();
        let ciphertext_len = doc.serialize().len();
        let blowup = ciphertext_len as f64 / plaintext_len as f64;
        let blocks = doc.record_count() - 1; // minus header
        let mean_fill = plaintext_len as f64 / blocks.max(1) as f64;
        let reduction = rows.first().map_or(0.0, |first| 1.0 - blowup / first.blowup);
        rows.push(Fig7Row { block_size: b, blowup, reduction, mean_fill });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blowup_is_monotonically_decreasing() {
        let rows = fig7(2_000, 60, 7);
        assert_eq!(rows.len(), 8);
        for pair in rows.windows(2) {
            assert!(
                pair[1].blowup < pair[0].blowup,
                "blowup must shrink with block size: {pair:?}"
            );
        }
    }

    #[test]
    fn blowup_magnitudes_match_paper_shape() {
        let rows = fig7(2_000, 60, 8);
        // b=1: every char costs one 27-char record (plus preamble/header).
        assert!(rows[0].blowup > 25.0 && rows[0].blowup < 30.0, "{:?}", rows[0]);
        // b=8: paper reports 3.75× with fragmentation; ours must land in
        // the same regime (between the ideal 27/8=3.375 and ~6).
        assert!(rows[7].blowup > 3.3 && rows[7].blowup < 6.5, "{:?}", rows[7]);
        // Total reduction ~80% like the paper's 82%.
        assert!(rows[7].reduction > 0.7, "{:?}", rows[7]);
    }

    #[test]
    fn fragmentation_keeps_fill_below_capacity() {
        let rows = fig7(2_000, 80, 9);
        let b8 = rows[7];
        assert!(b8.mean_fill < 8.0, "edited documents must show fragmentation");
        assert!(b8.mean_fill > 4.0, "merging keeps blocks reasonably full");
    }
}
