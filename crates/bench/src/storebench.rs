//! Durable-store benchmarks: append throughput under each fsync policy,
//! and WAL replay (crash-recovery) time as the log grows.
//!
//! Both sweeps run against a real [`LogStore`] directory on the local
//! filesystem, so the numbers include every fsync the policy demands.
//! Throughput and replay figures are cross-checked against the live
//! `store.*` metrics the engine records, so the bench and production
//! telemetry can never disagree.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pe_store::{DocStore, FsyncPolicy, LogStore, ShardedLogStore, StoreConfig};

/// A scratch directory deleted on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "pe-storebench-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Payload size for every benchmark record: roughly one encrypted
/// paragraph of document ciphertext.
pub const PAYLOAD_BYTES: usize = 256;

/// Documents written round-robin, so the store sees realistic
/// multi-document interleaving rather than one hot key.
const DOCS: usize = 64;

/// One measured fsync policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AppendRow {
    /// Policy label (`always`, `every=64`, `never`).
    pub policy: String,
    /// Records appended.
    pub records: u64,
    /// Wall-clock seconds for the whole append run.
    pub wall_s: f64,
    /// Appends per second.
    pub appends_per_s: f64,
    /// Payload megabytes per second.
    pub mb_per_s: f64,
    /// Actual `fsync` calls issued (`store.fsyncs`).
    pub fsyncs: u64,
}

/// One measured concurrent group-commit configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Policy label (`always`, `every=64`, `never`).
    pub policy: String,
    /// Concurrent appender threads.
    pub writers: usize,
    /// WAL shards the store routes over.
    pub shards: usize,
    /// Records appended across all writers.
    pub records: u64,
    /// Wall-clock seconds from the start barrier to the last join.
    pub wall_s: f64,
    /// Aggregate appends per second.
    pub appends_per_s: f64,
    /// `fsync` calls actually issued (summed over shards).
    pub fsyncs: u64,
    /// Appends whose durability rode another batch's fsync.
    pub fsyncs_saved: u64,
    /// Largest single group-commit batch observed (records).
    pub max_batch: u64,
}

/// One measured sharded-recovery configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReplayRow {
    /// Records (= distinct documents) in the store before reopening.
    pub records: u64,
    /// Shards the log is split over (1 = the legacy layout).
    pub shards: usize,
    /// Total bytes on disk across every shard's segments.
    pub log_bytes: u64,
    /// Wall-clock seconds for `ShardedLogStore::open` (full recovery).
    pub open_wall_s: f64,
    /// Records replayed per second.
    pub replay_per_s: f64,
    /// Documents recovered into the combined index.
    pub docs: u64,
}

/// One measured log size for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRow {
    /// Records in the log before reopening.
    pub records: u64,
    /// Total bytes on disk (segments) replayed at open.
    pub log_bytes: u64,
    /// Wall-clock seconds for `LogStore::open` (the full recovery).
    pub open_wall_s: f64,
    /// Records replayed per second.
    pub replay_per_s: f64,
    /// Documents recovered into the index.
    pub docs: u64,
}

fn payload(i: usize) -> Vec<u8> {
    (0..PAYLOAD_BYTES).map(|j| ((i * 31 + j * 7) % 251) as u8).collect()
}

fn write_records(store: &LogStore, records: u64) {
    for i in 0..records as usize {
        store
            .put_full(&format!("doc{}", i % DOCS), &payload(i))
            .expect("benchmark append failed");
    }
}

/// Measures append throughput for each policy over a fresh store.
pub fn append_sweep(policies: &[FsyncPolicy], records: u64) -> Vec<AppendRow> {
    policies
        .iter()
        .map(|&fsync| {
            pe_observe::global().reset();
            let dir = TempDir::new("append");
            let store = LogStore::open(&dir.0, StoreConfig { fsync, ..StoreConfig::default() })
                .expect("open bench store");
            let started = Instant::now();
            write_records(&store, records);
            store.flush().expect("final flush");
            let wall_s = started.elapsed().as_secs_f64();
            drop(store);
            let fsyncs = pe_observe::global().snapshot().counter("store.fsyncs").unwrap_or(0);
            AppendRow {
                policy: fsync.label(),
                records,
                wall_s,
                appends_per_s: if wall_s > 0.0 { records as f64 / wall_s } else { 0.0 },
                mb_per_s: if wall_s > 0.0 {
                    (records as f64 * PAYLOAD_BYTES as f64) / wall_s / 1e6
                } else {
                    0.0
                },
                fsyncs,
            }
        })
        .collect()
}

/// Measures group-commit append throughput as writer count grows.
///
/// Every row opens a fresh [`ShardedLogStore`] with `shards` shards and
/// fans `per_writer` appends out over `writers` threads (each editing
/// its own document set, so routing spreads the load). The fsync
/// accounting comes from the store's own [`pe_store::GroupStats`]
/// counters, not the global registry, so concurrent registry users
/// cannot skew a row.
pub fn group_commit_sweep(
    writer_counts: &[usize],
    shards: usize,
    per_writer: u64,
    fsync: FsyncPolicy,
) -> Vec<GroupRow> {
    writer_counts
        .iter()
        .map(|&writers| {
            let dir = TempDir::new("group");
            let store = ShardedLogStore::open(
                &dir.0,
                shards,
                StoreConfig { fsync, ..StoreConfig::default() },
            )
            .expect("open sharded bench store");
            let start = std::sync::Barrier::new(writers + 1);
            let wall_s = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..writers)
                    .map(|w| {
                        let (store, start) = (&store, &start);
                        scope.spawn(move || {
                            start.wait();
                            for i in 0..per_writer as usize {
                                store
                                    .put_full(&format!("w{w}-doc{}", i % DOCS), &payload(i))
                                    .expect("benchmark append failed");
                            }
                        })
                    })
                    .collect();
                start.wait();
                let started = Instant::now();
                for handle in handles {
                    handle.join().expect("writer thread panicked");
                }
                started.elapsed().as_secs_f64()
            });
            store.flush().expect("final flush");
            let stats = store.group_stats();
            let records = writers as u64 * per_writer;
            GroupRow {
                policy: fsync.label(),
                writers,
                shards,
                records,
                wall_s,
                appends_per_s: if wall_s > 0.0 { records as f64 / wall_s } else { 0.0 },
                fsyncs: stats.fsyncs,
                fsyncs_saved: stats.fsyncs_saved,
                max_batch: stats.max_batch_records,
            }
        })
        .collect()
}

/// Measures full recovery (`LogStore::open` replay) at each log size.
///
/// The log is written with [`FsyncPolicy::Never`] — write speed is not
/// under test here — then the store is dropped and reopened cold.
pub fn replay_sweep(sizes: &[u64]) -> Vec<ReplayRow> {
    sizes
        .iter()
        .map(|&records| {
            let dir = TempDir::new("replay");
            let store = LogStore::open(
                &dir.0,
                StoreConfig { fsync: FsyncPolicy::Never, ..StoreConfig::default() },
            )
            .expect("open bench store");
            write_records(&store, records);
            store.flush().expect("flush before close");
            drop(store);

            let log_bytes = std::fs::read_dir(&dir.0)
                .expect("read store dir")
                .filter_map(Result::ok)
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum();

            pe_observe::global().reset();
            let started = Instant::now();
            let reopened = LogStore::open(&dir.0, StoreConfig::default()).expect("reopen");
            let open_wall_s = started.elapsed().as_secs_f64();
            let snapshot = pe_observe::global().snapshot();
            let replayed = snapshot.counter("store.replay_records").unwrap_or(0);
            assert_eq!(replayed, records, "replay must visit every record");
            let docs = reopened.list().len() as u64;
            ReplayRow {
                records,
                log_bytes,
                open_wall_s,
                replay_per_s: if open_wall_s > 0.0 {
                    records as f64 / open_wall_s
                } else {
                    0.0
                },
                docs,
            }
        })
        .collect()
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries
        .filter_map(Result::ok)
        .map(|entry| match entry.metadata() {
            Ok(meta) if meta.is_dir() => dir_bytes(&entry.path()),
            Ok(meta) => meta.len(),
            Err(_) => 0,
        })
        .sum()
}

/// Measures full sharded recovery (`ShardedLogStore::open`) for each
/// `(records, shards)` case. Every record creates a distinct document,
/// so a 100 000-record case is a 100 000-document store — the regime
/// ISSUE 8 cares about. Shards replay on parallel threads; on a
/// multi-core runner open time tracks the largest shard rather than the
/// total log (a single-core runner replays the same records either way,
/// so expect parity there, not a win).
pub fn sharded_replay_sweep(cases: &[(u64, usize)]) -> Vec<ShardReplayRow> {
    cases
        .iter()
        .map(|&(records, shards)| {
            let dir = TempDir::new("shard-replay");
            let store = ShardedLogStore::open(
                &dir.0,
                shards,
                StoreConfig { fsync: FsyncPolicy::Never, ..StoreConfig::default() },
            )
            .expect("open bench store");
            for i in 0..records as usize {
                store.put_full(&format!("doc{i}"), &payload(i)).expect("benchmark append failed");
            }
            store.flush().expect("flush before close");
            drop(store);

            let log_bytes = dir_bytes(&dir.0);
            pe_observe::global().reset();
            let started = Instant::now();
            let reopened =
                ShardedLogStore::open(&dir.0, shards, StoreConfig::default()).expect("reopen");
            let open_wall_s = started.elapsed().as_secs_f64();
            let replayed =
                pe_observe::global().snapshot().counter("store.replay_records").unwrap_or(0);
            assert_eq!(replayed, records, "replay must visit every record");
            assert_eq!(reopened.shard_count(), shards, "manifest must pin the shard count");
            let docs = reopened.list().len() as u64;
            ShardReplayRow {
                records,
                shards,
                log_bytes,
                open_wall_s,
                replay_per_s: if open_wall_s > 0.0 {
                    records as f64 / open_wall_s
                } else {
                    0.0
                },
                docs,
            }
        })
        .collect()
}

/// Renders both sweeps as the JSON document committed as
/// `BENCH_store.json`.
pub fn render_json(
    appends: &[AppendRow],
    groups: &[GroupRow],
    replays: &[ReplayRow],
    sharded_replays: &[ShardReplayRow],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"store_recovery\",\n");
    out.push_str(
        "  \"store\": \"pe-store ShardedLogStore (CRC32 WAL + snapshots, group commit)\",\n",
    );
    out.push_str(&format!("  \"payload_bytes\": {PAYLOAD_BYTES},\n"));
    out.push_str(&format!("  \"docs\": {DOCS},\n"));
    out.push_str("  \"append_rows\": [\n");
    for (i, row) in appends.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"records\": {}, \"wall_s\": {:.4}, \
             \"appends_per_s\": {:.1}, \"mb_per_s\": {:.2}, \"fsyncs\": {}}}{}\n",
            row.policy,
            row.records,
            row.wall_s,
            row.appends_per_s,
            row.mb_per_s,
            row.fsyncs,
            if i + 1 == appends.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"group_commit_rows\": [\n");
    for (i, row) in groups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"writers\": {}, \"shards\": {}, \"records\": {}, \
             \"wall_s\": {:.4}, \"appends_per_s\": {:.1}, \"fsyncs\": {}, \
             \"fsyncs_saved\": {}, \"max_batch\": {}}}{}\n",
            row.policy,
            row.writers,
            row.shards,
            row.records,
            row.wall_s,
            row.appends_per_s,
            row.fsyncs,
            row.fsyncs_saved,
            row.max_batch,
            if i + 1 == groups.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"replay_rows\": [\n");
    for (i, row) in replays.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"records\": {}, \"log_bytes\": {}, \"open_wall_s\": {:.4}, \
             \"replay_per_s\": {:.1}, \"docs\": {}}}{}\n",
            row.records,
            row.log_bytes,
            row.open_wall_s,
            row.replay_per_s,
            row.docs,
            if i + 1 == replays.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"sharded_replay_rows\": [\n");
    for (i, row) in sharded_replays.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"records\": {}, \"shards\": {}, \"log_bytes\": {}, \
             \"open_wall_s\": {:.4}, \"replay_per_s\": {:.1}, \"docs\": {}}}{}\n",
            row.records,
            row.shards,
            row.log_bytes,
            row.open_wall_s,
            row.replay_per_s,
            row.docs,
            if i + 1 == sharded_replays.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_sweep_counts_fsyncs_per_policy() {
        let rows = append_sweep(
            &[FsyncPolicy::Always, FsyncPolicy::EveryN(16), FsyncPolicy::Never],
            64,
        );
        assert_eq!(rows.len(), 3);
        // Always fsyncs per append; every=16 fsyncs 64/16 times plus the
        // final flush; never only syncs on the explicit flush.
        assert!(rows[0].fsyncs >= 64, "always: {}", rows[0].fsyncs);
        assert!(
            rows[1].fsyncs >= 4 && rows[1].fsyncs < rows[0].fsyncs,
            "every=16: {}",
            rows[1].fsyncs
        );
        assert!(rows[2].fsyncs <= 2, "never: {}", rows[2].fsyncs);
        for row in &rows {
            assert_eq!(row.records, 64);
            assert!(row.appends_per_s > 0.0);
        }
    }

    #[test]
    fn replay_sweep_recovers_every_record() {
        let rows = replay_sweep(&[100, 300]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.docs, DOCS as u64);
            assert!(row.log_bytes > row.records * PAYLOAD_BYTES as u64);
            assert!(row.replay_per_s > 0.0);
        }
        assert!(rows[1].log_bytes > rows[0].log_bytes);
    }

    #[test]
    fn group_commit_sweep_accounts_every_append() {
        let rows = group_commit_sweep(&[1, 4], 2, 32, FsyncPolicy::Always);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.shards, 2);
            assert_eq!(row.records, 32 * row.writers as u64);
            assert!(row.appends_per_s > 0.0);
            // Under fsync=always every append either issued its own
            // fsync or rode a neighbour's batch — nothing is unaccounted.
            assert_eq!(row.fsyncs + row.fsyncs_saved, row.records, "policy {}", row.policy);
            assert!(row.max_batch >= 1);
        }
        // A single writer can never share a batch.
        assert_eq!(rows[0].fsyncs_saved, 0);
        assert_eq!(rows[0].fsyncs, rows[0].records);
    }

    #[test]
    fn sharded_replay_sweep_recovers_every_document() {
        let rows = sharded_replay_sweep(&[(200, 1), (200, 4)]);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.docs, 200, "one document per record");
            assert!(row.log_bytes > row.records * PAYLOAD_BYTES as u64);
            assert!(row.replay_per_s > 0.0);
        }
        assert_eq!(rows[0].shards, 1);
        assert_eq!(rows[1].shards, 4);
    }

    #[test]
    fn json_report_is_well_formed() {
        let appends = append_sweep(&[FsyncPolicy::Never], 16);
        let groups = group_commit_sweep(&[2], 2, 8, FsyncPolicy::Always);
        let replays = replay_sweep(&[32]);
        let sharded = sharded_replay_sweep(&[(64, 2)]);
        let json = render_json(&appends, &groups, &replays, &sharded);
        assert!(json.contains("\"bench\": \"store_recovery\""));
        assert!(json.contains("\"policy\": \"never\""));
        assert!(json.contains("\"group_commit_rows\""));
        assert!(json.contains("\"sharded_replay_rows\""));
        assert!(json.contains("\"writers\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
