//! Ablation experiments: the design choices DESIGN.md calls out.
//!
//! * [`coclo_crossover`] — incremental encryption vs the CoClo
//!   full-re-encryption baseline, across document sizes: the paper's core
//!   efficiency claim ("we focus on integrating incremental encryption
//!   which is vital for efficiently editing medium to large size
//!   documents").
//! * [`attack_matrix`] — active-attack outcomes per scheme: rECB and the
//!   XOR baseline accept manipulations that RPC (and rECB hardened with a
//!   client-side Merkle tree) detect, mirroring §V-A/§VI.

use pe_core::baseline::{CoCloDocument, MerkleTree, XorDocument};
use pe_core::wire::split_records;
use pe_core::{
    update_wire_len, DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, RpcDocument,
    SchemeParams,
};
use pe_crypto::CtrDrbg;

use crate::timing::timed;

/// One row of the incremental-vs-CoClo comparison.
#[derive(Debug, Clone, Copy)]
pub struct CrossoverRow {
    /// Document size in characters.
    pub doc_size: usize,
    /// Wire bytes for one small edit, incremental scheme.
    pub incremental_bytes: usize,
    /// Wire bytes for one small edit, CoClo.
    pub coclo_bytes: usize,
    /// CPU seconds for the edit, incremental scheme.
    pub incremental_secs: f64,
    /// CPU seconds for the edit, CoClo.
    pub coclo_secs: f64,
}

fn key() -> DocumentKey {
    DocumentKey::derive("ablation", &[0x33; 16], 100)
}

/// Measures the cost of a single 10-character insertion in the middle of
/// documents of the given sizes under both schemes.
pub fn coclo_crossover(sizes: &[usize], seed: u64) -> Vec<CrossoverRow> {
    let mut rows = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let text: Vec<u8> = (0..size).map(|k| 32 + ((k * 37) % 95) as u8).collect();
        let op = EditOp::insert(size / 2, b"ten chars!");

        let mut incremental = RecbDocument::create(
            &key(),
            SchemeParams::recb(8),
            &text,
            CtrDrbg::from_seed(seed ^ i as u64),
        )
        .unwrap();
        let (patches, inc_time) = timed(|| incremental.apply(&op).unwrap());
        let incremental_bytes = update_wire_len(&patches, incremental.layout());

        let mut coclo = CoCloDocument::create(
            &key(),
            SchemeParams::recb(8),
            &text,
            CtrDrbg::from_seed(seed ^ (i as u64) << 8),
        )
        .unwrap();
        let (patches, coclo_time) = timed(|| coclo.apply(&op).unwrap());
        let coclo_bytes = update_wire_len(&patches, coclo.layout());

        rows.push(CrossoverRow {
            doc_size: size,
            incremental_bytes,
            coclo_bytes,
            incremental_secs: inc_time.as_secs_f64(),
            coclo_secs: coclo_time.as_secs_f64(),
        });
    }
    rows
}

/// Whether an active manipulation was accepted (undetected) or detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The manipulated ciphertext decrypted without complaint.
    Accepted,
    /// The scheme rejected the manipulated ciphertext.
    Detected,
}

/// One row of the attack matrix.
#[derive(Debug, Clone)]
pub struct AttackRow {
    /// Scheme under attack.
    pub scheme: &'static str,
    /// Attack name.
    pub attack: &'static str,
    /// Observed outcome.
    pub outcome: AttackOutcome,
}

/// Swaps two data records of a serialized document.
fn swap_data_records(wire: &str, a: usize, b: usize) -> String {
    let preamble = pe_core::wire::PREAMBLE_CHARS;
    let mut records: Vec<String> =
        split_records(wire).unwrap().iter().map(|r| r.to_string()).collect();
    records.swap(a, b);
    format!("{}{}", &wire[..preamble], records.concat())
}

/// Runs every scheme × attack combination, deriving outcomes by actually
/// performing the manipulations.
pub fn attack_matrix(seed: u64) -> Vec<AttackRow> {
    let mut rows = Vec::new();
    let plaintext = b"AAAAAAAABBBBBBBBCCCCCCCC";

    // rECB: block swap goes undetected (decrypts to swapped text).
    let recb = RecbDocument::create(
        &key(),
        SchemeParams::recb(8),
        plaintext,
        CtrDrbg::from_seed(seed),
    )
    .unwrap();
    let swapped = swap_data_records(&recb.serialize(), 1, 2);
    let outcome = match RecbDocument::open(&key(), &swapped, CtrDrbg::from_seed(0)) {
        Ok(doc) if doc.decrypt().is_ok() => AttackOutcome::Accepted,
        _ => AttackOutcome::Detected,
    };
    rows.push(AttackRow { scheme: "rECB", attack: "block substitution", outcome });

    // rECB + Merkle tree kept client-side: the same swap is detected.
    let wire = recb.serialize();
    let records = split_records(&wire).unwrap();
    let tree = MerkleTree::build(records.iter().map(|r| r.as_bytes()));
    let swapped = swap_data_records(&wire, 1, 2);
    let swapped_records = split_records(&swapped).unwrap();
    let tampered_tree = MerkleTree::build(swapped_records.iter().map(|r| r.as_bytes()));
    let outcome = if tampered_tree.root() == tree.root() {
        AttackOutcome::Accepted
    } else {
        AttackOutcome::Detected
    };
    rows.push(AttackRow { scheme: "rECB + Merkle", attack: "block substitution", outcome });

    // XOR baseline: known-plaintext forgery succeeds without the key.
    let xor = XorDocument::create(
        &key(),
        SchemeParams::recb(8),
        b"pay $100",
        CtrDrbg::from_seed(seed ^ 1),
    )
    .unwrap();
    let forged =
        XorDocument::forge_without_key(&xor.serialize(), 0, b"pay $100", b"pay $999").unwrap();
    let outcome = match XorDocument::open(&key(), &forged, CtrDrbg::from_seed(0)) {
        Ok(doc) if doc.decrypt().as_deref() == Ok(b"pay $999") => AttackOutcome::Accepted,
        _ => AttackOutcome::Detected,
    };
    rows.push(AttackRow { scheme: "XOR", attack: "known-plaintext forgery", outcome });

    // RPC: substitution, truncation and bit-flip forgery all detected.
    let rpc = RpcDocument::create(
        &key(),
        SchemeParams::rpc(7),
        plaintext,
        CtrDrbg::from_seed(seed ^ 2),
    )
    .unwrap();
    let wire = rpc.serialize();
    let swapped = swap_data_records(&wire, 1, 2);
    let outcome = match RpcDocument::open(&key(), &swapped, CtrDrbg::from_seed(0)) {
        Ok(_) => AttackOutcome::Accepted,
        Err(_) => AttackOutcome::Detected,
    };
    rows.push(AttackRow { scheme: "RPC", attack: "block substitution", outcome });

    let preamble = pe_core::wire::PREAMBLE_CHARS;
    let records: Vec<String> =
        split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect();
    let mut truncated = records.clone();
    truncated.remove(2);
    let truncated = format!("{}{}", &wire[..preamble], truncated.concat());
    let outcome = match RpcDocument::open(&key(), &truncated, CtrDrbg::from_seed(0)) {
        Ok(_) => AttackOutcome::Accepted,
        Err(_) => AttackOutcome::Detected,
    };
    rows.push(AttackRow { scheme: "RPC", attack: "block deletion (truncation)", outcome });

    let mut flipped: Vec<char> = wire.chars().collect();
    let pos = preamble + 28; // inside the first data record body
    flipped[pos] = if flipped[pos] == 'A' { 'B' } else { 'A' };
    let flipped: String = flipped.into_iter().collect();
    let outcome = match RpcDocument::open(&key(), &flipped, CtrDrbg::from_seed(0)) {
        Ok(_) => AttackOutcome::Accepted,
        Err(_) => AttackOutcome::Detected,
    };
    rows.push(AttackRow { scheme: "RPC", attack: "ciphertext bit flip", outcome });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coclo_bytes_grow_with_document_while_incremental_stays_flat() {
        let rows = coclo_crossover(&[200, 1_000, 5_000], 3);
        assert_eq!(rows.len(), 3);
        // CoClo's update size tracks the document size.
        assert!(rows[2].coclo_bytes > rows[0].coclo_bytes * 10);
        // Incremental updates stay within a small constant band.
        assert!(rows[2].incremental_bytes < rows[0].incremental_bytes * 4);
        // And incremental is strictly cheaper on the wire for large docs.
        assert!(rows[2].incremental_bytes * 10 < rows[2].coclo_bytes);
    }

    #[test]
    fn attack_matrix_matches_security_analysis() {
        let rows = attack_matrix(11);
        let find = |scheme: &str, attack: &str| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.attack == attack)
                .unwrap_or_else(|| panic!("{scheme}/{attack}"))
                .outcome
        };
        assert_eq!(find("rECB", "block substitution"), AttackOutcome::Accepted);
        assert_eq!(find("rECB + Merkle", "block substitution"), AttackOutcome::Detected);
        assert_eq!(find("XOR", "known-plaintext forgery"), AttackOutcome::Accepted);
        assert_eq!(find("RPC", "block substitution"), AttackOutcome::Detected);
        assert_eq!(find("RPC", "block deletion (truncation)"), AttackOutcome::Detected);
        assert_eq!(find("RPC", "ciphertext bit flip"), AttackOutcome::Detected);
    }
}
