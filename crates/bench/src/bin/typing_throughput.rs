//! "Typical use" throughput: keystroke-level editing with periodic
//! autosave, with and without the privacy extension — the abstract's
//! "less than 10% overhead for typical use" claim at interactive
//! granularity.
//!
//! Usage: `cargo run -p pe-bench --release --bin typing_throughput [bursts] [keys_per_burst]`

use std::sync::Arc;
use std::time::Instant;

use pe_bench::report::{markdown_table, percent};
use pe_client::workload::TypingSession;
use pe_client::{Channel, DirectChannel, DocsClient, PrivateChannel};
use pe_cloud::docs::DocsServer;
use pe_cloud::meter::MeteredService;
use pe_cloud::net::NetworkModel;
use pe_cloud::{CloudService, Request};
use pe_crypto::{form, CtrDrbg};
use pe_extension::{DocsMediator, MediatorConfig};

fn create_doc(server: &DocsServer) -> String {
    let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
    let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
    form::first_value(&pairs, "docID").unwrap().to_string()
}

/// Runs a typing session, returning total seconds (CPU + modeled network).
fn run<C: Channel>(
    channel: C,
    doc_id: &str,
    metered: &MeteredService<Arc<DocsServer>>,
    bursts: usize,
    keys: usize,
    net: &NetworkModel,
) -> (f64, usize) {
    let mut client = DocsClient::open(channel, doc_id).expect("open");
    client.save();
    metered.drain();
    let mut session = TypingSession::new(42);
    let mut total = 0.0;
    for _ in 0..bursts {
        session.type_burst(client.editor(), keys);
        let start = Instant::now();
        client.save();
        total += start.elapsed().as_secs_f64();
        total += metered
            .drain()
            .iter()
            .map(|e| net.round_trip_bytes(e.request_bytes, e.response_bytes).as_secs_f64())
            .sum::<f64>();
    }
    (total, client.content().len())
}

fn main() {
    let bursts: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60);
    let keys: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(25);
    let net = NetworkModel::default();
    println!("# Typing throughput — {bursts} autosaves × {keys} keystrokes\n");

    let mut rows = Vec::new();
    let mut plain_time = 0.0;
    for (label, config) in [
        ("plaintext (no extension)", None),
        ("rECB b=8", Some(MediatorConfig::recb(8))),
        ("rECB b=1", Some(MediatorConfig::recb(1))),
        ("RPC b=7", Some(MediatorConfig::rpc(7))),
    ] {
        let server = Arc::new(DocsServer::new());
        let doc_id = create_doc(&server);
        let metered = MeteredService::new(Arc::clone(&server));
        let (time, final_len) = match config {
            None => run(DirectChannel(metered.clone()), &doc_id, &metered, bursts, keys, &net),
            Some(config) => {
                let mut mediator =
                    DocsMediator::with_rng(metered.clone(), config, CtrDrbg::from_seed(9));
                mediator.register_password(&doc_id, "typing");
                run(PrivateChannel(mediator), &doc_id, &metered, bursts, keys, &net)
            }
        };
        if config.is_none() {
            plain_time = time;
        }
        let keystrokes = (bursts * keys) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", keystrokes / time),
            format!("{:.2} ms", time / bursts as f64 * 1e3),
            if config.is_none() {
                "—".to_string()
            } else {
                percent(time / plain_time - 1.0)
            },
            final_len.to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["configuration", "keystrokes/s", "latency per autosave", "overhead", "final chars"],
            &rows
        )
    );
    println!("{}", pe_bench::report::observability_section());
}
