//! Regenerates Figure 6: impact of block size on (a) whole-document
//! encryption and (b) incremental updates (§VII-D, rECB mode, 10000-char
//! documents).
//!
//! Usage: `cargo run -p pe-bench --bin fig6_blocksize --release [tests]`

use pe_bench::micro::fig6;
use pe_bench::report::markdown_table;

fn main() {
    let tests: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    println!("# Figure 6 — impact of block size (rECB, 10000-char documents, {tests} tests per size)\n");
    println!("Paper: cost decreases with block size; 1-char blocks pay SkipIndexList");
    println!("overhead, compensated at block size 7–8.\n");
    let rows = fig6(10_000, tests, 0x0f06);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.block_size.to_string(),
                format!("{:.3}", row.whole_doc_us_per_char),
                format!("{:.3}", row.incremental_us_per_char),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["block size", "(a) whole-doc µs/char", "(b) incremental µs/char"],
            &table
        )
    );
    println!("{}", pe_bench::report::observability_section());
}
