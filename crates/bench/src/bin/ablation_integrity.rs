//! Integrity-mechanism ablation (§V-A design space): RPC chaining vs
//! rECB + Merkle root vs rECB + IncXMACC-style per-block MACs.
//!
//! Usage: `cargo run -p pe-bench --release --bin ablation_integrity [doc_len] [edits]`

use pe_bench::integrity::integrity_costs;
use pe_bench::report::markdown_table;

fn main() {
    let doc_len: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let edits: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(50);
    println!("# §V-A integrity design space — {doc_len}-char documents, {edits} edits\n");
    println!("Paper: \"IncXMACC and the hash tree schemes achieve true tamperproofing");
    println!("but at the cost of O(n) size of signature, and O(log(n)) time\";");
    println!("\"integrity can be obtained at marginal cost if it is added onto a");
    println!("confidentiality-only service\".\n");
    let rows = integrity_costs(doc_len, edits, 0x0f0d);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.mechanism.to_string(),
                format!("{} B", row.client_state_bytes),
                format!("{:.3} ms", row.update_secs * 1e3),
                format!("{:.3} ms", row.verify_secs * 1e3),
                row.extra_records.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["mechanism", "client state", "per-update", "full verify", "extra ciphertext records"],
            &table
        )
    );
    println!("{}", pe_bench::report::observability_section());
}
