//! Runs the complete evaluation in one shot and prints every table —
//! the "regenerate the paper's §VII" button.
//!
//! Usage: `cargo run -p pe-bench --release --bin all_experiments [quick]`
//!
//! `quick` shrinks every workload for a fast smoke pass.

use pe_bench::ablation::{attack_matrix, coclo_crossover, AttackOutcome};
use pe_bench::blowup::fig7;
use pe_bench::integrity::integrity_costs;
use pe_bench::macrobench::{run_macro, MacroSpec};
use pe_bench::matrix::functionality_matrix;
use pe_bench::micro::{fig4, fig6};
use pe_bench::report::{markdown_table, percent};
use pe_cloud::net::NetworkModel;
use pe_core::{Mode, SchemeParams};

fn main() {
    let quick = std::env::args().nth(1).as_deref() == Some("quick");
    let (micro_tests, fig6_tests, trials, ops, blowup_edits, sweep_doc) =
        if quick { (20, 2, 1, 3, 40, 1_000) } else { (500, 20, 3, 8, 200, 10_000) };

    println!("# Complete evaluation run ({})\n", if quick { "quick" } else { "full" });

    // ── Figure 4 ────────────────────────────────────────────────────
    println!("## Figure 4 — micro-benchmark (RPC mode, {micro_tests} tests)\n");
    let result = fig4(Mode::Rpc, 1, micro_tests, 0x0f04);
    println!(
        "{}",
        markdown_table(
            &["operation", "average (per char)"],
            &[
                vec!["encryption (D)".into(), format!("{:.6} ms", result.encrypt_ms_per_char)],
                vec!["decryption (D′)".into(), format!("{:.6} ms", result.decrypt_ms_per_char)],
                vec![
                    "incremental encryption".into(),
                    format!("{:.6} ms", result.incremental_ms_per_char)
                ],
            ]
        )
    );

    // ── Figure 5 ────────────────────────────────────────────────────
    println!("## Figure 5 — macro-benchmark degradation ({trials} trials × {ops} ops)\n");
    for (size_label, file_size) in [("small ≈500", 500usize), ("large ≈10000", 10_000)] {
        for (mode_label, scheme) in
            [("rECB b=1", SchemeParams::recb(1)), ("RPC b=1", SchemeParams::rpc(1))]
        {
            let rows = run_macro(&MacroSpec {
                scheme,
                file_size,
                ops_per_trial: ops,
                trials,
                seed: 0x0f05,
                net: NetworkModel::default(),
            });
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| vec![r.label.clone(), percent(r.degradation.mean)])
                .collect();
            println!("### {size_label} — {mode_label}\n");
            println!("{}", markdown_table(&["operation", "mean degradation"], &table));
        }
    }

    // ── Figure 6 ────────────────────────────────────────────────────
    println!("## Figure 6 — block-size sweep (rECB, {sweep_doc}-char docs)\n");
    let rows = fig6(sweep_doc, fig6_tests, 0x0f06);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.block_size.to_string(),
                format!("{:.3}", r.whole_doc_us_per_char),
                format!("{:.3}", r.incremental_us_per_char),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["b", "(a) whole-doc µs/char", "(b) incremental µs/char"], &table)
    );

    // ── Figure 7 ────────────────────────────────────────────────────
    println!("## Figure 7 — ciphertext blowup ({sweep_doc}-char docs, {blowup_edits} edits)\n");
    let rows = fig7(sweep_doc, blowup_edits, 0x0f07);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![r.block_size.to_string(), format!("{:.2}x", r.blowup), percent(r.reduction)]
        })
        .collect();
    println!("{}", markdown_table(&["b", "blowup", "reduction"], &table));

    // ── Figure 8 ────────────────────────────────────────────────────
    println!("## Figure 8 — macro-benchmark, 8-char rECB, large files\n");
    let rows = run_macro(&MacroSpec {
        scheme: SchemeParams::recb(8),
        file_size: 10_000.min(sweep_doc.max(500)),
        ops_per_trial: ops,
        trials,
        seed: 0x0f08,
        net: NetworkModel::default(),
    });
    let table: Vec<Vec<String>> =
        rows.iter().map(|r| vec![r.label.clone(), percent(r.degradation.mean)]).collect();
    println!("{}", markdown_table(&["operation", "mean degradation"], &table));

    // ── §VII-A functionality matrix ─────────────────────────────────
    println!("## §VII-A — functionality matrix\n");
    let rows = functionality_matrix(0x0f0a);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.feature.to_string(),
                r.without_extension.to_string(),
                r.with_extension.to_string(),
            ]
        })
        .collect();
    println!("{}", markdown_table(&["feature", "without ext", "with ext"], &table));

    // ── Ablations ───────────────────────────────────────────────────
    println!("## Ablation — incremental vs CoClo\n");
    let sizes: &[usize] =
        if quick { &[100, 1_000, 5_000] } else { &[100, 1_000, 10_000, 100_000] };
    let rows = coclo_crossover(sizes, 0x0f0b);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.doc_size.to_string(),
                r.incremental_bytes.to_string(),
                r.coclo_bytes.to_string(),
                format!("{:.1}x", r.coclo_bytes as f64 / r.incremental_bytes.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["doc size", "incremental B", "CoClo B", "advantage"], &table)
    );

    println!("## Ablation — attack matrix\n");
    let rows = attack_matrix(0x0f0c);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                r.attack.to_string(),
                match r.outcome {
                    AttackOutcome::Accepted => "ACCEPTED".into(),
                    AttackOutcome::Detected => "detected".into(),
                },
            ]
        })
        .collect();
    println!("{}", markdown_table(&["scheme", "attack", "outcome"], &table));

    println!("## Ablation — integrity design space\n");
    let rows = integrity_costs(sweep_doc.min(5_000), if quick { 6 } else { 30 }, 0x0f0d);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mechanism.to_string(),
                format!("{} B", r.client_state_bytes),
                format!("{:.3} ms", r.update_secs * 1e3),
                format!("{:.3} ms", r.verify_secs * 1e3),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["mechanism", "client state", "per-update", "full verify"], &table)
    );

    println!("Done. Compare against the paper in EXPERIMENTS.md.");
    println!("{}", pe_bench::report::observability_section());
}
