//! Ablation experiments: incremental encryption vs the CoClo baseline,
//! and the active-attack matrix across schemes (§V-A, §VI).
//!
//! Usage: `cargo run -p pe-bench --bin ablation_baselines --release`

use pe_bench::ablation::{attack_matrix, coclo_crossover, AttackOutcome};
use pe_bench::report::markdown_table;

fn main() {
    println!("# Ablation 1 — incremental (rECB, b=8) vs CoClo full re-encryption\n");
    println!("One 10-character insertion in the middle of the document.\n");
    let sizes = [100usize, 500, 1_000, 5_000, 10_000, 50_000, 100_000];
    let rows = coclo_crossover(&sizes, 0x0f0b);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.doc_size.to_string(),
                row.incremental_bytes.to_string(),
                row.coclo_bytes.to_string(),
                format!("{:.3} ms", row.incremental_secs * 1e3),
                format!("{:.3} ms", row.coclo_secs * 1e3),
                format!("{:.1}x", row.coclo_bytes as f64 / row.incremental_bytes.max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "doc size",
                "incremental bytes",
                "CoClo bytes",
                "incremental time",
                "CoClo time",
                "wire advantage"
            ],
            &table
        )
    );

    println!("\n# Ablation 2 — active attacks per scheme (§V-A / §VI)\n");
    let rows = attack_matrix(0x0f0c);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.scheme.to_string(),
                row.attack.to_string(),
                match row.outcome {
                    AttackOutcome::Accepted => "ACCEPTED (attack succeeds)".to_string(),
                    AttackOutcome::Detected => "detected".to_string(),
                },
            ]
        })
        .collect();
    println!("{}", markdown_table(&["scheme", "attack", "outcome"], &table));
    println!("{}", pe_bench::report::observability_section());
}
