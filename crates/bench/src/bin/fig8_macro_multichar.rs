//! Regenerates Figure 8: macro-benchmark with the 8-character-block rECB
//! incremental scheme on large files (§VII-D).
//!
//! Usage: `cargo run -p pe-bench --bin fig8_macro_multichar --release [trials] [ops]`

use pe_bench::macrobench::{run_macro, MacroSpec};
use pe_bench::report::{markdown_table, percent};
use pe_cloud::net::NetworkModel;
use pe_core::SchemeParams;

fn main() {
    let trials: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let ops: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    println!("# Figure 8 — macro-benchmark, 8-char-block rECB, ≈10000-char files");
    println!("({trials} trials × {ops} ops)\n");
    println!("Paper: initial 18 %, inserts 8.8 %, deletes 7.5 %, mixed 12.6 %");
    println!("(blowup reduced from 23× to <5× versus Figure 5).\n");
    let spec = MacroSpec {
        scheme: SchemeParams::recb(8),
        file_size: 10_000,
        ops_per_trial: ops,
        trials,
        seed: 0x0f08,
        net: NetworkModel::default(),
    };
    let rows = run_macro(&spec);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.label.clone(),
                percent(row.degradation.mean),
                format!("{:.3}", row.degradation.dev),
            ]
        })
        .collect();
    println!("{}", markdown_table(&["operation", "mean degradation", "dev."], &table));
    println!("{}", pe_bench::report::observability_section());
}
