//! Multi-tenant key-management benchmark: key-wrap latency, grant and
//! revoke cost versus document size (must be flat — membership changes
//! never re-encrypt the body), and directory crash-recovery at scale.
//!
//! Usage: `cargo run -p pe-bench --bin tenant_bench --release -- \
//!     [--smoke] [--out FILE]`
//!
//! Writes the JSON report to `BENCH_tenant.json` (or `--out FILE`) and
//! prints Markdown tables. `--smoke` runs tiny sizes for CI.

use pe_bench::report::markdown_table;
use pe_bench::tenantbench::{
    grant_revoke_sweep, recovery_bench, render_json, wrap_unwrap_sweep,
};

const KIB: usize = 1024;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_tenant.json", String::as_str);

    let (wrap_reps, kdf_iters) = if smoke { (200, 1_000) } else { (20_000, 10_000) };
    let body_sizes: &[usize] = if smoke {
        &[KIB, 16 * KIB, 256 * KIB]
    } else {
        &[KIB, 4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB, 1024 * KIB]
    };
    let grant_reps = if smoke { 20 } else { 200 };
    let (rec_users, rec_docs, rec_shards) =
        if smoke { (200, 200, 4) } else { (10_000, 10_000, 8) };

    println!("# Multi-tenant keys — wrap latency, grant/revoke cost, recovery\n");

    let wraps = wrap_unwrap_sweep(wrap_reps, kdf_iters);
    let table: Vec<Vec<String>> = wraps
        .iter()
        .map(|row| {
            vec![
                row.op.clone(),
                format!("{}", row.reps),
                format!("{:.0} ns", row.mean_ns),
                format!("{} ns", row.max_ns),
            ]
        })
        .collect();
    println!("{}", markdown_table(&["op", "reps", "mean", "max"], &table));

    println!(
        "\nGrant/accept/revoke versus stored body size ({grant_reps} cycles \
         per size). A grant writes one 40-byte wrapped-key record; the \
         body column proves the ciphertext never changes.\n"
    );
    let grants = grant_revoke_sweep(body_sizes, grant_reps);
    let table: Vec<Vec<String>> = grants
        .iter()
        .map(|row| {
            vec![
                format!("{} KiB", row.body_bytes / KIB),
                format!("{:.1} us", row.grant_us),
                format!("{:.1} us", row.accept_us),
                format!("{:.1} us", row.revoke_us),
                format!("{}", if row.body_unchanged { "unchanged" } else { "CHANGED!" }),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["body", "grant", "accept", "revoke", "stored bytes"], &table)
    );

    println!(
        "\nDirectory recovery: {rec_users} users x {rec_docs} docs over a \
         {rec_shards}-shard durable store; reopen = cold WAL replay.\n"
    );
    let recoveries = vec![recovery_bench(rec_users, rec_docs, rec_shards)];
    let table: Vec<Vec<String>> = recoveries
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.users),
                format!("{}", row.docs),
                format!("{}", row.grants),
                format!("{:.2} s", row.populate_wall_s),
                format!("{:.3} s", row.reopen_wall_s),
                format!("{:.3} s", row.scan_wall_s),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["users", "docs", "grants", "populate", "reopen", "scan"],
            &table
        )
    );

    let json = render_json(&wraps, &grants, &recoveries);
    std::fs::write(out_path, &json).expect("write report");
    println!("\nwrote {out_path}");
}
