//! Crypto fast-path throughput: scalar baseline vs the T-table batch
//! engine on full-document encrypt+decrypt, same run, same machine.
//!
//! Usage: `cargo run -p pe-bench --bin crypto_throughput --release -- \
//!     [--smoke] [--out FILE]`
//!
//! Writes the JSON report to `BENCH_crypto.json` (or `--out FILE`) and
//! prints a Markdown table. `--smoke` runs tiny sizes with one rep for
//! CI.

use pe_bench::crypto_bench::{crypto_throughput, render_json};
use pe_bench::report::markdown_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_crypto.json", String::as_str);

    let (sizes, reps): (&[usize], usize) = if smoke {
        (&[1024, 4096], 1)
    } else {
        (&[4096, 16 * 1024, 64 * 1024, 256 * 1024], 9)
    };

    println!("# Crypto fast-path throughput — full-document encrypt+decrypt (rECB, b=8)\n");
    println!("Scalar = pre-fast-path byte-oriented AES, per-block loop, per-block allocation.");
    println!("Fast = T-table AES through the batch seal/open engine (best of {reps} reps).\n");

    let rows = crypto_throughput(sizes, reps, 0xc0ffee);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                format!("{} KiB", row.size_bytes / 1024),
                format!("{:.3} ms", (row.scalar_encrypt_s + row.scalar_decrypt_s) * 1e3),
                format!("{:.3} ms", (row.fast_encrypt_s + row.fast_decrypt_s) * 1e3),
                format!("{:.1}x", row.encrypt_speedup()),
                format!("{:.1}x", row.decrypt_speedup()),
                format!("{:.1}x", row.roundtrip_speedup()),
                format!("{:.1}", row.fast_throughput_mib_s()),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "size",
                "scalar enc+dec",
                "fast enc+dec",
                "enc speedup",
                "dec speedup",
                "roundtrip speedup",
                "fast MiB/s"
            ],
            &table
        )
    );

    let json = render_json(&rows, reps);
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", pe_bench::report::observability_section());
}
