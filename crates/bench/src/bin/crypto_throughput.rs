//! Crypto fast-path throughput: scalar baseline vs the batch engine on
//! full-document encrypt+decrypt, once per AES backend, same run, same
//! machine.
//!
//! Usage: `cargo run -p pe-bench --bin crypto_throughput --release -- \
//!     [--smoke] [--out FILE] [--detect]`
//!
//! Writes the JSON report to `BENCH_crypto.json` (or `--out FILE`) and
//! prints a Markdown table. `--smoke` runs tiny sizes with one rep for
//! CI. `--detect` prints whether this CPU supports AES-NI and exits with
//! status 0 (supported) or 1 (not) — used by `scripts/ci.sh` to skip the
//! forced-`aesni` test pass gracefully on hardware without it.

use pe_bench::crypto_bench::{crypto_throughput_matrix, raw_cipher_throughput, render_json};
use pe_bench::report::markdown_table;
use pe_crypto::AesBackend;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--detect") {
        let supported = AesBackend::aesni_supported();
        println!("aesni_supported={supported}");
        std::process::exit(if supported { 0 } else { 1 });
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_crypto.json", String::as_str);

    let (sizes, reps): (&[usize], usize) = if smoke {
        (&[1024, 4096], 1)
    } else {
        (&[4096, 16 * 1024, 64 * 1024, 256 * 1024], 9)
    };

    // Fallback rows (scalar, table) are always reported; the aesni rows
    // appear when the CPU can run them.
    let mut backends = vec![AesBackend::Scalar, AesBackend::Table];
    if AesBackend::aesni_supported() {
        backends.push(AesBackend::AesNi);
    }

    println!("# Crypto fast-path throughput — full-document encrypt+decrypt (rECB, b=8)\n");
    println!("Scalar = pre-fast-path byte-oriented AES, per-block loop, per-block allocation.");
    println!(
        "Fast = batch seal/open engine, one row per AES backend \
         (best of {reps} reps; aesni supported: {}).\n",
        AesBackend::aesni_supported()
    );

    let rows = crypto_throughput_matrix(sizes, reps, 0xc0ffee, &backends);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                format!("{} KiB", row.size_bytes / 1024),
                row.aes_backend.to_string(),
                format!("{:.3} ms", (row.scalar_encrypt_s + row.scalar_decrypt_s) * 1e3),
                format!("{:.3} ms", (row.fast_encrypt_s + row.fast_decrypt_s) * 1e3),
                format!("{:.1}x", row.encrypt_speedup()),
                format!("{:.1}x", row.decrypt_speedup()),
                format!("{:.1}x", row.roundtrip_speedup()),
                format!("{:.1}", row.fast_throughput_mib_s()),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "size",
                "backend",
                "scalar enc+dec",
                "fast enc+dec",
                "enc speedup",
                "dec speedup",
                "roundtrip speedup",
                "fast MiB/s"
            ],
            &table
        )
    );

    println!("## Raw block-cipher throughput (1 MiB bulk, no document machinery)\n");
    let cipher_rows = raw_cipher_throughput(&backends, reps);
    let table_row = cipher_rows.iter().find(|r| r.aes_backend == "table");
    let cipher_table: Vec<Vec<String>> = cipher_rows
        .iter()
        .map(|row| {
            let vs_table = table_row.map_or(f64::NAN, |t| {
                (row.encrypt_mib_s + row.decrypt_mib_s) / (t.encrypt_mib_s + t.decrypt_mib_s)
            });
            vec![
                row.aes_backend.to_string(),
                format!("{:.1}", row.encrypt_mib_s),
                format!("{:.1}", row.decrypt_mib_s),
                format!("{vs_table:.1}x"),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["backend", "enc MiB/s", "dec MiB/s", "vs table"], &cipher_table)
    );

    let json = render_json(&rows, &cipher_rows, reps);
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", pe_bench::report::observability_section());
}
