//! Regenerates Figure 5: macro-benchmark latency degradation for rECB and
//! RPC on small (≈500) and large (≈10000 character) files (§VII-C).
//!
//! Usage: `cargo run -p pe-bench --bin fig5_macro --release [trials] [ops]`

use pe_bench::macrobench::{run_macro, MacroSpec};
use pe_bench::report::{markdown_table, percent};
use pe_cloud::net::NetworkModel;
use pe_core::SchemeParams;

fn main() {
    let trials: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let ops: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(10);
    println!("# Figure 5 — macro-benchmark performance degradation");
    println!("({trials} trials × {ops} ops; network model: 100 ms RTT, 5 MB/s, 20 ms server)\n");
    println!("Paper: initial 24–45 %, inserts 6.2–10 %, deletes 3.1–4.5 %, mixed 7.4–13 %.\n");
    for (size_label, file_size) in [("small (≈500 chars)", 500usize), ("large (≈10000 chars)", 10_000)] {
        for (mode_label, scheme) in
            [("rECB", SchemeParams::recb(1)), ("RPC", SchemeParams::rpc(1))]
        {
            let spec = MacroSpec {
                scheme,
                file_size,
                ops_per_trial: ops,
                trials,
                seed: 0x0f05,
                net: NetworkModel::default(),
            };
            let rows = run_macro(&spec);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|row| {
                    vec![
                        row.label.clone(),
                        percent(row.degradation.mean),
                        format!("{:.3}", row.degradation.dev),
                    ]
                })
                .collect();
            println!("## {size_label} — {mode_label}\n");
            println!("{}", markdown_table(&["operation", "mean degradation", "dev."], &table));
        }
    }
    println!("{}", pe_bench::report::observability_section());
}
