//! Durable-store benchmark: append throughput per fsync policy, and
//! crash-recovery (WAL replay) time versus log size.
//!
//! Usage: `cargo run -p pe-bench --bin store_recovery --release -- \
//!     [--smoke] [--out FILE]`
//!
//! Writes the JSON report to `BENCH_store.json` (or `--out FILE`) and
//! prints Markdown tables. `--smoke` runs tiny sizes for CI.

use pe_bench::report::markdown_table;
use pe_bench::storebench::{append_sweep, render_json, replay_sweep, PAYLOAD_BYTES};
use pe_store::FsyncPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_store.json", String::as_str);

    let policies =
        [FsyncPolicy::Always, FsyncPolicy::EveryN(64), FsyncPolicy::Never];
    let (append_records, replay_sizes): (u64, &[u64]) =
        if smoke { (200, &[200, 1_000]) } else { (5_000, &[1_000, 10_000, 100_000]) };

    println!("# Durable store — append throughput and crash-recovery replay\n");
    println!(
        "{append_records} appends of {PAYLOAD_BYTES}-byte payloads per policy; \
         replay = cold LogStore::open over the whole WAL.\n"
    );

    let appends = append_sweep(&policies, append_records);
    let table: Vec<Vec<String>> = appends
        .iter()
        .map(|row| {
            vec![
                row.policy.clone(),
                format!("{}", row.records),
                format!("{:.3} s", row.wall_s),
                format!("{:.0}", row.appends_per_s),
                format!("{:.2}", row.mb_per_s),
                format!("{}", row.fsyncs),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["fsync", "records", "wall", "appends/s", "MB/s", "fsyncs"],
            &table
        )
    );

    let replays = replay_sweep(replay_sizes);
    let table: Vec<Vec<String>> = replays
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.records),
                format!("{:.1} KiB", row.log_bytes as f64 / 1024.0),
                format!("{:.4} s", row.open_wall_s),
                format!("{:.0}", row.replay_per_s),
                format!("{}", row.docs),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["records", "log size", "open", "replayed/s", "docs"],
            &table
        )
    );

    let json = render_json(&appends, &replays);
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", pe_bench::report::observability_section());
}
