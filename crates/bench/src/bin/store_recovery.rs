//! Durable-store benchmark: append throughput per fsync policy, and
//! crash-recovery (WAL replay) time versus log size.
//!
//! Usage: `cargo run -p pe-bench --bin store_recovery --release -- \
//!     [--smoke] [--out FILE]`
//!
//! Writes the JSON report to `BENCH_store.json` (or `--out FILE`) and
//! prints Markdown tables. `--smoke` runs tiny sizes for CI.

use pe_bench::report::markdown_table;
use pe_bench::storebench::{
    append_sweep, group_commit_sweep, render_json, replay_sweep, sharded_replay_sweep,
    PAYLOAD_BYTES,
};
use pe_store::FsyncPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_store.json", String::as_str);

    let policies =
        [FsyncPolicy::Always, FsyncPolicy::EveryN(64), FsyncPolicy::Never];
    let (append_records, replay_sizes): (u64, &[u64]) =
        if smoke { (200, &[200, 1_000]) } else { (5_000, &[1_000, 10_000, 100_000]) };
    let group_shards = 4;
    let (group_writers, group_per_writer): (&[usize], u64) =
        if smoke { (&[1, 4], 64) } else { (&[1, 2, 4, 8, 16, 32, 64], 1_000) };
    let sharded_cases: &[(u64, usize)] =
        if smoke { &[(500, 1), (500, 4)] } else { &[(100_000, 1), (100_000, 8)] };

    println!("# Durable store — append throughput and crash-recovery replay\n");
    println!(
        "{append_records} appends of {PAYLOAD_BYTES}-byte payloads per policy; \
         replay = cold LogStore::open over the whole WAL.\n"
    );

    let appends = append_sweep(&policies, append_records);
    let table: Vec<Vec<String>> = appends
        .iter()
        .map(|row| {
            vec![
                row.policy.clone(),
                format!("{}", row.records),
                format!("{:.3} s", row.wall_s),
                format!("{:.0}", row.appends_per_s),
                format!("{:.2}", row.mb_per_s),
                format!("{}", row.fsyncs),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["fsync", "records", "wall", "appends/s", "MB/s", "fsyncs"],
            &table
        )
    );

    println!(
        "\nGroup commit: {group_per_writer} appends per writer over a \
         {group_shards}-shard store, fsync=always.\n"
    );
    let groups =
        group_commit_sweep(group_writers, group_shards, group_per_writer, FsyncPolicy::Always);
    let table: Vec<Vec<String>> = groups
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.writers),
                format!("{}", row.records),
                format!("{:.3} s", row.wall_s),
                format!("{:.0}", row.appends_per_s),
                format!("{}", row.fsyncs),
                format!("{}", row.fsyncs_saved),
                format!("{}", row.max_batch),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["writers", "records", "wall", "appends/s", "fsyncs", "saved", "max batch"],
            &table
        )
    );

    let replays = replay_sweep(replay_sizes);
    let table: Vec<Vec<String>> = replays
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.records),
                format!("{:.1} KiB", row.log_bytes as f64 / 1024.0),
                format!("{:.4} s", row.open_wall_s),
                format!("{:.0}", row.replay_per_s),
                format!("{}", row.docs),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["records", "log size", "open", "replayed/s", "docs"],
            &table
        )
    );

    println!("\nSharded recovery: one document per record, cold ShardedLogStore::open.\n");
    let sharded = sharded_replay_sweep(sharded_cases);
    let table: Vec<Vec<String>> = sharded
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.records),
                format!("{}", row.shards),
                format!("{:.1} KiB", row.log_bytes as f64 / 1024.0),
                format!("{:.4} s", row.open_wall_s),
                format!("{:.0}", row.replay_per_s),
                format!("{}", row.docs),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["records", "shards", "log size", "open", "replayed/s", "docs"],
            &table
        )
    );

    let json = render_json(&appends, &groups, &replays, &sharded);
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", pe_bench::report::observability_section());
}
