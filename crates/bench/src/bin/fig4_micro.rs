//! Regenerates Figure 4: micro-benchmark of cryptographic operations in
//! RPC mode (averages over random `(D, D′)` pairs, §VII-B).
//!
//! Usage: `cargo run -p pe-bench --bin fig4_micro --release [tests]`

use pe_bench::micro::fig4;
use pe_bench::report::markdown_table;
use pe_core::Mode;

fn main() {
    let tests: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    println!("# Figure 4 — micro-benchmark, RPC mode ({tests} tests)\n");
    println!("Paper (2009-era JavaScript): encrypt .091 ms/char, decrypt .085 ms/char,");
    println!("incremental .110 ms/char; throughput 9.1–11.8 kB/s.\n");
    let result = fig4(Mode::Rpc, 1, tests, 0x0f04);
    let rows = vec![
        vec!["encryption (D)".to_string(), format!("{:.6} ms", result.encrypt_ms_per_char)],
        vec!["decryption (D′)".to_string(), format!("{:.6} ms", result.decrypt_ms_per_char)],
        vec![
            "incremental encryption".to_string(),
            format!("{:.6} ms", result.incremental_ms_per_char),
        ],
    ];
    println!("{}", markdown_table(&["operation", "average (per char)"], &rows));
    println!("Measured encryption throughput: {:.1} kB of plaintext per second", result.throughput_kb_per_s);
    println!("\nFor comparison, rECB mode (confidentiality only):");
    let recb = fig4(Mode::Recb, 1, tests, 0x0f04);
    let rows = vec![
        vec!["encryption (D)".to_string(), format!("{:.6} ms", recb.encrypt_ms_per_char)],
        vec!["decryption (D′)".to_string(), format!("{:.6} ms", recb.decrypt_ms_per_char)],
        vec![
            "incremental encryption".to_string(),
            format!("{:.6} ms", recb.incremental_ms_per_char),
        ],
    ];
    println!("{}", markdown_table(&["operation", "average (per char)"], &rows));
    println!("{}", pe_bench::report::observability_section());
}
