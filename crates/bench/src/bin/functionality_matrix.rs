//! Regenerates the §VII-A functionality matrix: which features of the
//! cloud editor survive the privacy extension.
//!
//! Usage: `cargo run -p pe-bench --bin functionality_matrix`

use pe_bench::matrix::functionality_matrix;
use pe_bench::report::markdown_table;

fn main() {
    println!("# §VII-A — functionality with and without the privacy extension\n");
    println!("Paper: translation, spell checking, drawing, and export become");
    println!("unavailable; core editing and client-side features keep working;");
    println!("collaborative editing is partially functional.\n");
    let rows = functionality_matrix(0x0f0a);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.feature.to_string(),
                row.without_extension.to_string(),
                row.with_extension.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["feature", "without extension", "with extension"], &table)
    );
    println!("{}", pe_bench::report::observability_section());
}
