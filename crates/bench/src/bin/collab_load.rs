//! Live-collaboration fan-out over real loopback sockets: K concurrent
//! [`LiveSession`](pe_collab::LiveSession) editors on one shared
//! encrypted document, server-pushed change streams against a durable
//! sharded WAL store.
//!
//! Usage: `cargo run -p pe-bench --bin collab_load --release -- \
//!     [--smoke] [--editors K,K,...] [--rounds N] [--store DIR] \
//!     [--fsync POLICY] [--shards N] [--poll-interval-ms MS] [--out FILE]`
//!
//! Defaults: editors 2,8,32 (smoke: 2), 8 rounds each (smoke: 2), a
//! 4-shard always-fsync store under a temp directory, a 250 ms polling
//! baseline, and the JSON report to `BENCH_collab.json`. Exits non-zero
//! on any unrecovered session error or convergence failure.

use pe_bench::collab::{collab_load, render_json};
use pe_bench::report::markdown_table;
use pe_store::FsyncPolicy;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    let default_counts: &[usize] = if smoke { &[2] } else { &[2, 8, 32] };
    let counts: Vec<usize> = match flag_value(&args, "--editors") {
        Some(list) => list
            .split(',')
            .map(|n| n.trim().parse().unwrap_or_else(|_| bad_usage(n)))
            .collect(),
        None => default_counts.to_vec(),
    };
    let rounds: usize = match flag_value(&args, "--rounds") {
        Some(n) => n.parse().unwrap_or_else(|_| bad_usage(n)),
        None if smoke => 2,
        None => 8,
    };
    let poll_interval_ms: u64 = match flag_value(&args, "--poll-interval-ms") {
        Some(n) => n.parse().unwrap_or_else(|_| bad_usage(n)),
        None => 250,
    };
    let fsync = match flag_value(&args, "--fsync") {
        Some(text) => FsyncPolicy::parse(text).unwrap_or_else(|| {
            eprintln!("error: --fsync needs always|never|every=N, got {text:?}");
            std::process::exit(2);
        }),
        None => FsyncPolicy::Always,
    };
    let shards: usize = match flag_value(&args, "--shards") {
        Some(n) => n.parse().unwrap_or_else(|_| bad_usage(n)),
        None => 4,
    };
    let (dir, ephemeral) = match flag_value(&args, "--store") {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("pe-collabload-{}", std::process::id())),
            true,
        ),
    };

    println!("# Live collaboration — K editors, one encrypted document, pushed change streams\n");
    println!(
        "Each editor: SharedChannel mediator (rECB, b=8), pooled requests + dedicated \
         long-poll subscription; {rounds} append+merge rounds."
    );
    println!(
        "Push latency is publisher-ack → subscriber-apply; the poll baseline probes \
         every {poll_interval_ms} ms instead of parking.\n"
    );

    let rows = collab_load(&dir, fsync, shards, &counts, rounds, poll_interval_ms, 0xc0_11ab);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.store.clone(),
                format!("{}", row.editors),
                format!("{}", row.saves),
                format!("{}", row.deliveries),
                format!("{:.2} s", row.wall_s),
                format!("{:.0}/s", row.fanout_per_s),
                format!("{:.2} ms", row.push_p50_ns as f64 / 1e6),
                format!("{:.2} ms", row.push_p99_ns as f64 / 1e6),
                format!("{:.0} ms", row.poll_p50_ns as f64 / 1e6),
                format!("{}", row.resyncs),
                format!("{}", row.converged),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "store", "editors", "saves", "deliveries", "wall", "fan-out", "push p50",
                "push p99", "poll p50", "resyncs", "converged"
            ],
            &table
        )
    );

    if rows.iter().any(|r| r.errors > 0 || !r.converged) {
        eprintln!("error: unrecovered session failures or divergent editors");
        std::process::exit(1);
    }

    let out_path = flag_value(&args, "--out").unwrap_or("BENCH_collab.json");
    let json = render_json(&rows, rounds, poll_interval_ms);
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", pe_bench::report::observability_section());
}

fn bad_usage(got: &str) -> ! {
    eprintln!("error: expected a number, got {got:?}");
    eprintln!(
        "usage: collab_load [--smoke] [--editors K,K,...] [--rounds N] [--store DIR] \
         [--fsync POLICY] [--shards N] [--poll-interval-ms MS] [--out FILE]"
    );
    std::process::exit(2)
}
