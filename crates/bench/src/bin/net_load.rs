//! Multi-client network load over real loopback sockets: N concurrent
//! mediated editors against one `pe-net` HTTP server.
//!
//! Usage: `cargo run -p pe-bench --bin net_load --release -- \
//!     [--smoke] [--clients N,N,...] [--edits N] [--connect ADDR] \
//!     [--store DIR] [--fsync POLICY] [--shards N] [--out FILE]`
//!
//! By default each concurrency row spawns its own in-process event-loop
//! server over an in-memory store and the JSON report goes to
//! `BENCH_net.json` (or `--out FILE`). `--store DIR` adds a second sweep
//! whose servers persist to a durable sharded WAL store under `DIR`
//! (fsync policy `--fsync`, default `always`; `--shards` WAL shards,
//! default 4) — those rows carry the real cost of making every
//! acknowledged save durable. `--connect ADDR` drives an
//! already-running server (e.g. a live `pedit serve`) instead — used by
//! CI's high-concurrency smoke — and then no JSON is written unless
//! `--out` is given explicitly. `--smoke` runs tiny concurrency levels
//! with few edits.

use pe_bench::netload::{net_load, net_load_connect, net_load_with_store, render_json, StoreBacking};
use pe_bench::report::markdown_table;
use pe_store::FsyncPolicy;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    let default_counts: &[usize] =
        if smoke { &[1, 2] } else { &[1, 4, 16, 64, 256, 512, 1024] };
    let counts: Vec<usize> = match flag_value(&args, "--clients") {
        Some(list) => list
            .split(',')
            .map(|n| n.trim().parse().unwrap_or_else(|_| bad_usage(n)))
            .collect(),
        None => default_counts.to_vec(),
    };
    let edits: usize = match flag_value(&args, "--edits") {
        Some(n) => n.parse().unwrap_or_else(|_| bad_usage(n)),
        None if smoke => 2,
        None => 25,
    };
    let connect: Option<std::net::SocketAddr> = flag_value(&args, "--connect").map(|a| {
        a.parse().unwrap_or_else(|_| {
            eprintln!("error: --connect needs HOST:PORT, got {a:?}");
            std::process::exit(2);
        })
    });
    let durable: Option<StoreBacking> = flag_value(&args, "--store").map(|dir| {
        let fsync = match flag_value(&args, "--fsync") {
            Some(text) => FsyncPolicy::parse(text).unwrap_or_else(|| {
                eprintln!("error: --fsync needs always|never|every=N, got {text:?}");
                std::process::exit(2);
            }),
            None => FsyncPolicy::Always,
        };
        let shards: usize = match flag_value(&args, "--shards") {
            Some(n) => n.parse().unwrap_or_else(|_| bad_usage(n)),
            None => 4,
        };
        StoreBacking::Sharded { dir: dir.into(), fsync, shards }
    });
    if durable.is_some() && connect.is_some() {
        eprintln!("error: --store spawns its own servers; it cannot be combined with --connect");
        std::process::exit(2);
    }

    println!("# Network load — concurrent mediated editors over loopback TCP (rECB, b=8)\n");
    println!(
        "Each client: its own pooling HttpClient + DocsMediator + document; \
         {edits} open+save rounds after create."
    );
    println!("Latency quantiles come from the live net.client.request_ns histogram.\n");

    let rows = match connect {
        Some(addr) => {
            println!("Driving external server at {addr}.\n");
            net_load_connect(addr, &counts, edits, 0x10ad)
        }
        None => {
            let mut rows = net_load(&counts, edits, 0x10ad);
            if let Some(backing) = &durable {
                println!("Durable sweep: {}.\n", backing.label());
                rows.extend(net_load_with_store(backing, &counts, edits, 0x10ad));
            }
            rows
        }
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.store.clone(),
                format!("{}", row.clients),
                format!("{}", row.requests),
                format!("{:.2} s", row.wall_s),
                format!("{:.0}", row.rps),
                format!("{:.2} ms", row.p50_ns as f64 / 1e6),
                format!("{:.2} ms", row.p99_ns as f64 / 1e6),
                format!("{}", row.retries),
                format!("{}", row.errors),
                format!("{}", row.peak_conns),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "store", "clients", "requests", "wall", "req/s", "p50", "p99", "retries",
                "errors", "peak conns"
            ],
            &table
        )
    );

    if rows.iter().any(|r| r.errors > 0 || r.failed_sessions > 0) {
        eprintln!("error: unrecovered failures on a fault-free wire");
        std::process::exit(1);
    }

    let out_path = flag_value(&args, "--out");
    let out_path = match (out_path, connect) {
        (Some(path), _) => Some(path),
        (None, None) => Some("BENCH_net.json"),
        // --connect without --out: measurement only, nothing to commit.
        (None, Some(_)) => None,
    };
    if let Some(out_path) = out_path {
        let json = render_json(&rows, edits);
        match std::fs::write(out_path, &json) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("error: could not write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{}", pe_bench::report::observability_section());
}

fn bad_usage(got: &str) -> ! {
    eprintln!("error: expected a number, got {got:?}");
    eprintln!(
        "usage: net_load [--smoke] [--clients N,N,...] [--edits N] [--connect ADDR] \
         [--store DIR] [--fsync POLICY] [--shards N] [--out FILE]"
    );
    std::process::exit(2)
}
