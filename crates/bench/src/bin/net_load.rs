//! Multi-client network load over real loopback sockets: N concurrent
//! mediated editors against one `pe-net` HTTP server.
//!
//! Usage: `cargo run -p pe-bench --bin net_load --release -- \
//!     [--smoke] [--out FILE]`
//!
//! Writes the JSON report to `BENCH_net.json` (or `--out FILE`) and
//! prints a Markdown table. `--smoke` runs tiny concurrency levels with
//! few edits for CI.

use pe_bench::netload::{net_load, render_json};
use pe_bench::report::markdown_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_net.json", String::as_str);

    let (counts, edits): (&[usize], usize) =
        if smoke { (&[1, 2], 2) } else { (&[1, 4, 16, 64], 25) };

    println!("# Network load — concurrent mediated editors over loopback TCP (rECB, b=8)\n");
    println!(
        "Each client: its own pooling HttpClient + DocsMediator + document; \
         {edits} open+save rounds after create."
    );
    println!("Latency quantiles come from the live net.client.request_ns histogram.\n");

    let rows = net_load(counts, edits, 0x10ad);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.clients),
                format!("{}", row.requests),
                format!("{:.2} s", row.wall_s),
                format!("{:.0}", row.rps),
                format!("{:.2} ms", row.p50_ns as f64 / 1e6),
                format!("{:.2} ms", row.p99_ns as f64 / 1e6),
                format!("{}", row.retries),
                format!("{}", row.errors),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["clients", "requests", "wall", "req/s", "p50", "p99", "retries", "errors"],
            &table
        )
    );

    if rows.iter().any(|r| r.errors > 0 || r.failed_sessions > 0) {
        eprintln!("error: unrecovered failures on a fault-free wire");
        std::process::exit(1);
    }

    let json = render_json(&rows, edits);
    match std::fs::write(out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", pe_bench::report::observability_section());
}
