//! Multi-client network load over real loopback sockets: N concurrent
//! mediated editors against one `pe-net` HTTP server.
//!
//! Usage: `cargo run -p pe-bench --bin net_load --release -- \
//!     [--smoke] [--clients N,N,...] [--edits N] [--connect ADDR] [--out FILE]`
//!
//! By default each concurrency row spawns its own in-process event-loop
//! server and the JSON report goes to `BENCH_net.json` (or `--out FILE`).
//! `--connect ADDR` drives an already-running server (e.g. a live
//! `pedit serve`) instead — used by CI's high-concurrency smoke — and
//! then no JSON is written unless `--out` is given explicitly.
//! `--smoke` runs tiny concurrency levels with few edits.

use pe_bench::netload::{net_load, net_load_connect, render_json};
use pe_bench::report::markdown_table;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    let default_counts: &[usize] =
        if smoke { &[1, 2] } else { &[1, 4, 16, 64, 256, 512, 1024] };
    let counts: Vec<usize> = match flag_value(&args, "--clients") {
        Some(list) => list
            .split(',')
            .map(|n| n.trim().parse().unwrap_or_else(|_| bad_usage(n)))
            .collect(),
        None => default_counts.to_vec(),
    };
    let edits: usize = match flag_value(&args, "--edits") {
        Some(n) => n.parse().unwrap_or_else(|_| bad_usage(n)),
        None if smoke => 2,
        None => 25,
    };
    let connect: Option<std::net::SocketAddr> = flag_value(&args, "--connect").map(|a| {
        a.parse().unwrap_or_else(|_| {
            eprintln!("error: --connect needs HOST:PORT, got {a:?}");
            std::process::exit(2);
        })
    });

    println!("# Network load — concurrent mediated editors over loopback TCP (rECB, b=8)\n");
    println!(
        "Each client: its own pooling HttpClient + DocsMediator + document; \
         {edits} open+save rounds after create."
    );
    println!("Latency quantiles come from the live net.client.request_ns histogram.\n");

    let rows = match connect {
        Some(addr) => {
            println!("Driving external server at {addr}.\n");
            net_load_connect(addr, &counts, edits, 0x10ad)
        }
        None => net_load(&counts, edits, 0x10ad),
    };
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.clients),
                format!("{}", row.requests),
                format!("{:.2} s", row.wall_s),
                format!("{:.0}", row.rps),
                format!("{:.2} ms", row.p50_ns as f64 / 1e6),
                format!("{:.2} ms", row.p99_ns as f64 / 1e6),
                format!("{}", row.retries),
                format!("{}", row.errors),
                format!("{}", row.peak_conns),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "clients", "requests", "wall", "req/s", "p50", "p99", "retries", "errors",
                "peak conns"
            ],
            &table
        )
    );

    if rows.iter().any(|r| r.errors > 0 || r.failed_sessions > 0) {
        eprintln!("error: unrecovered failures on a fault-free wire");
        std::process::exit(1);
    }

    let out_path = flag_value(&args, "--out");
    let out_path = match (out_path, connect) {
        (Some(path), _) => Some(path),
        (None, None) => Some("BENCH_net.json"),
        // --connect without --out: measurement only, nothing to commit.
        (None, Some(_)) => None,
    };
    if let Some(out_path) = out_path {
        let json = render_json(&rows, edits);
        match std::fs::write(out_path, &json) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => {
                eprintln!("error: could not write {out_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{}", pe_bench::report::observability_section());
}

fn bad_usage(got: &str) -> ! {
    eprintln!("error: expected a number, got {got:?}");
    eprintln!(
        "usage: net_load [--smoke] [--clients N,N,...] [--edits N] [--connect ADDR] [--out FILE]"
    );
    std::process::exit(2)
}
