//! Regenerates Figure 7: ciphertext blowup vs block size (§VII-D).
//!
//! Usage: `cargo run -p pe-bench --bin fig7_blowup --release [doc_len] [edits]`

use pe_bench::blowup::fig7;
use pe_bench::report::{markdown_table, percent};

fn main() {
    let doc_len: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    let edits: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    println!("# Figure 7 — ciphertext blowup reduction ({doc_len}-char documents, {edits} edits)\n");
    println!("Paper: 21.00×, 10.71×, 7.35×, 6.09×, 4.83×, 4.41×, 3.78×, 3.75×");
    println!("(reduction 0 % → 82 %; actual less than ideal due to fragmentation).\n");
    let rows = fig7(doc_len, edits, 0x0f07);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.block_size.to_string(),
                format!("{:.2}x", row.blowup),
                percent(row.reduction),
                format!("{:.2}", row.mean_fill),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["block size", "blowup", "reduction", "mean chars/block"], &table)
    );
    println!("{}", pe_bench::report::observability_section());
}
