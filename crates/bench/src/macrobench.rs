//! Macro-benchmarks: Figures 5 and 8 (end-to-end latency degradation).
//!
//! §VII-C: "A test case in the macro-benchmark is a whole document save
//! followed by either replacing an existing sentence with a different one
//! or inserting or deleting an arbitrary sentence", on small (≈500) and
//! large (≈10000 character) files, with and without the extension.
//!
//! The reproduction measures the *CPU* part (client + mediator crypto +
//! server processing) with real timers and adds modeled network time from
//! the [`NetworkModel`] using the actual bytes each exchange moved
//! (ciphertext blowup therefore costs transfer time, exactly as it did
//! against the live service). Degradation is the paired relative
//! difference between the private and plain run of the same workload.

use std::sync::Arc;

use pe_client::workload::{MacroOp, WorkloadGen};
use pe_client::{Channel, DirectChannel, DocsClient, PrivateChannel};
use pe_cloud::docs::DocsServer;
use pe_cloud::meter::MeteredService;
use pe_cloud::net::NetworkModel;
use pe_cloud::{CloudService, Request};
use pe_core::SchemeParams;
use pe_crypto::{form, CtrDrbg};
use pe_extension::{DocsMediator, MediatorConfig};

use crate::timing::{timed, Stats};

/// Specification of one macro-benchmark configuration (one sub-table of
/// Figure 5 / Figure 8).
#[derive(Debug, Clone)]
pub struct MacroSpec {
    /// Encryption scheme used by the private runs.
    pub scheme: SchemeParams,
    /// Target document size in characters (≈500 or ≈10000 in the paper).
    pub file_size: usize,
    /// Edit operations timed per trial.
    pub ops_per_trial: usize,
    /// Trials per row (the paper averages repeated Selenium runs).
    pub trials: usize,
    /// Workload seed.
    pub seed: u64,
    /// Network/server latency model.
    pub net: NetworkModel,
}

/// One row of the Figure 5/8 table.
#[derive(Debug, Clone)]
pub struct MacroRow {
    /// Row label (`initial load`, `inserts only`, …).
    pub label: String,
    /// Relative latency degradation (`0.062` = 6.2 %).
    pub degradation: Stats,
}

/// Cost of one session, in seconds.
#[derive(Debug, Clone, Copy)]
struct SessionCost {
    initial: f64,
    ops: f64,
}

/// Creates a document directly on the server, returning its id.
fn create_doc(server: &DocsServer) -> String {
    let resp = server.handle(&Request::post("/Doc", &[("cmd", "create")], ""));
    let pairs = form::parse_pairs(resp.body_text().unwrap()).unwrap();
    form::first_value(&pairs, "docID").unwrap().to_string()
}

/// Preloads `content` into the document, encrypted when `scheme` is set.
fn preload(
    server: &Arc<DocsServer>,
    doc_id: &str,
    content: &str,
    scheme: Option<SchemeParams>,
    seed: u64,
) {
    match scheme {
        Some(params) => {
            let config = MediatorConfig { params, ..MediatorConfig::default() };
            let mut uploader = DocsMediator::with_rng(
                Arc::clone(server),
                config,
                CtrDrbg::from_seed(seed),
            );
            uploader.register_password(doc_id, "bench-password");
            uploader.save_full(doc_id, content).expect("preload");
        }
        None => {
            let body = form::encode_pairs(&[("docContents", content)]);
            server.handle(&Request::post("/Doc", &[("docID", doc_id)], body));
        }
    }
}

/// Runs a timed session over an already-constructed channel.
fn drive<C: Channel>(
    channel: C,
    doc_id: &str,
    metered: &MeteredService<Arc<DocsServer>>,
    mix: &[MacroOp],
    n_ops: usize,
    seed: u64,
    net: &NetworkModel,
) -> SessionCost {
    let mut workload = WorkloadGen::new(seed);
    metered.drain();
    // Initial load: open the document (decryption happens here for the
    // private channel).
    let (client, open_cpu) = timed(|| DocsClient::open(channel, doc_id).expect("open"));
    let mut client = client;
    let initial_net: f64 = metered
        .drain()
        .iter()
        .map(|e| net.round_trip_bytes(e.request_bytes, e.response_bytes).as_secs_f64())
        .sum();
    let initial = open_cpu.as_secs_f64() + initial_net;
    // Establish the session's full save (protocol requirement; untimed in
    // the per-op rows, matching the paper's separation of "initial load").
    client.save();
    metered.drain();
    // Timed edit operations.
    let mut ops_total = 0.0f64;
    for i in 0..n_ops {
        let op = mix[i % mix.len()];
        op.perform(client.editor(), &mut workload);
        let (_, cpu) = timed(|| client.save());
        let op_net: f64 = metered
            .drain()
            .iter()
            .map(|e| net.round_trip_bytes(e.request_bytes, e.response_bytes).as_secs_f64())
            .sum();
        ops_total += cpu.as_secs_f64() + op_net;
    }
    SessionCost { initial, ops: ops_total }
}

/// Runs one session (plain or private) and returns its cost.
fn run_session(
    scheme: Option<SchemeParams>,
    content: &str,
    mix: &[MacroOp],
    n_ops: usize,
    seed: u64,
    net: &NetworkModel,
) -> SessionCost {
    let server = Arc::new(DocsServer::new());
    let doc_id = create_doc(&server);
    preload(&server, &doc_id, content, scheme, seed ^ 0xdead);
    let metered = MeteredService::new(Arc::clone(&server));
    match scheme {
        Some(params) => {
            let config = MediatorConfig { params, ..MediatorConfig::default() };
            let mut mediator =
                DocsMediator::with_rng(metered.clone(), config, CtrDrbg::from_seed(seed));
            mediator.register_password(&doc_id, "bench-password");
            drive(PrivateChannel(mediator), &doc_id, &metered, mix, n_ops, seed, net)
        }
        None => drive(DirectChannel(metered.clone()), &doc_id, &metered, mix, n_ops, seed, net),
    }
}

/// The row labels of Figure 5 / Figure 8, with their operation mixes.
pub const ROW_LABELS: [&str; 4] =
    ["initial load", "inserts only", "deletes only", "inserts & deletes"];

/// Runs the full macro-benchmark for one configuration, producing the
/// four rows of a Figure 5/8 sub-table.
pub fn run_macro(spec: &MacroSpec) -> Vec<MacroRow> {
    let mut initial_degradations = Vec::new();
    let mut op_degradations: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for trial in 0..spec.trials {
        let mut workload = WorkloadGen::new(spec.seed.wrapping_add(trial as u64));
        let content = workload.document(spec.file_size);
        for (row, label) in ROW_LABELS.iter().enumerate().skip(1) {
            let mix = MacroOp::mix(label);
            let seed = spec.seed ^ ((trial as u64) << 8) ^ row as u64;
            let plain =
                run_session(None, &content, &mix, spec.ops_per_trial, seed, &spec.net);
            let private = run_session(
                Some(spec.scheme),
                &content,
                &mix,
                spec.ops_per_trial,
                seed,
                &spec.net,
            );
            if row == 1 {
                // The initial-load measurement comes from any row's open;
                // use the first operation row's sessions.
                initial_degradations.push(private.initial / plain.initial - 1.0);
            }
            op_degradations[row - 1].push(private.ops / plain.ops - 1.0);
        }
    }
    let mut rows =
        vec![MacroRow { label: ROW_LABELS[0].to_string(), degradation: Stats::of(&initial_degradations) }];
    for (i, label) in ROW_LABELS.iter().enumerate().skip(1) {
        rows.push(MacroRow {
            label: (*label).to_string(),
            degradation: Stats::of(&op_degradations[i - 1]),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_smoke_recb() {
        let spec = MacroSpec {
            scheme: SchemeParams::recb(8),
            file_size: 300,
            ops_per_trial: 2,
            trials: 1,
            seed: 5,
            net: NetworkModel::default(),
        };
        let rows = run_macro(&spec);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label, "initial load");
        // With a realistic network model the overhead must be finite and
        // positive-ish; exact values are timing-dependent.
        for row in &rows {
            assert!(row.degradation.mean > -0.9, "{row:?}");
            assert!(row.degradation.mean < 50.0, "{row:?}");
        }
    }

    #[test]
    fn macro_smoke_rpc() {
        let spec = MacroSpec {
            scheme: SchemeParams::rpc(7),
            file_size: 300,
            ops_per_trial: 2,
            trials: 1,
            seed: 6,
            net: NetworkModel::default(),
        };
        let rows = run_macro(&spec);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn private_sessions_produce_correct_documents() {
        // The harness must not corrupt documents while measuring.
        let content = WorkloadGen::new(9).document(400);
        let cost = run_session(
            Some(SchemeParams::recb(8)),
            &content,
            &MacroOp::mix("inserts & deletes"),
            3,
            9,
            &NetworkModel::instant(),
        );
        assert!(cost.initial > 0.0);
        assert!(cost.ops > 0.0);
    }
}
