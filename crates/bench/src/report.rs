//! Markdown table rendering for the benchmark binaries.

/// Renders a Markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for cell in header {
        out.push_str(&format!(" {cell} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with one decimal (`0.084` → `8.4%`).
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a duration-like seconds value as milliseconds.
pub fn millis(seconds: f64) -> String {
    format!("{:.3} ms", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_table() {
        let table = markdown_table(
            &["op", "mean"],
            &[vec!["inserts".into(), "6.2%".into()], vec!["deletes".into(), "3.1%".into()]],
        );
        assert!(table.contains("| op | mean |"));
        assert!(table.contains("|---|---|"));
        assert!(table.contains("| inserts | 6.2% |"));
    }

    #[test]
    fn formats_numbers() {
        assert_eq!(percent(0.0839), "8.4%");
        assert_eq!(millis(0.00191), "1.910 ms");
    }
}
