//! Markdown table rendering for the benchmark binaries.

/// Renders a Markdown table from a header and rows.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for cell in header {
        out.push_str(&format!(" {cell} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with one decimal (`0.084` → `8.4%`).
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a duration-like seconds value as milliseconds.
pub fn millis(seconds: f64) -> String {
    format!("{:.3} ms", seconds * 1e3)
}

/// Renders the global observability snapshot as a Markdown section with a
/// fenced JSON-lines block, for appending to each figure's report. The
/// fenced body parses with [`pe_observe::Snapshot::parse_jsonl`], so the
/// per-layer counters stay machine-readable alongside the figure numbers.
pub fn observability_section() -> String {
    let snapshot = pe_observe::global().snapshot();
    format!("\n## Observability snapshot\n\n```jsonl\n{}```", snapshot.render_jsonl())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_table() {
        let table = markdown_table(
            &["op", "mean"],
            &[vec!["inserts".into(), "6.2%".into()], vec!["deletes".into(), "3.1%".into()]],
        );
        assert!(table.contains("| op | mean |"));
        assert!(table.contains("|---|---|"));
        assert!(table.contains("| inserts | 6.2% |"));
    }

    #[test]
    fn formats_numbers() {
        assert_eq!(percent(0.0839), "8.4%");
        assert_eq!(millis(0.00191), "1.910 ms");
    }

    #[test]
    fn observability_section_parses_back() {
        let section = observability_section();
        let body = section
            .split("```jsonl\n")
            .nth(1)
            .and_then(|rest| rest.split("```").next())
            .expect("fenced block present");
        assert!(pe_observe::Snapshot::parse_jsonl(body).is_ok(), "{body}");
    }
}
