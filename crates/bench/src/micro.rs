//! Micro-benchmarks: Figure 4 (cryptographic operation cost) and
//! Figure 6 (block-size sweep).

use pe_client::workload::WorkloadGen;
use pe_core::{
    DeltaTransformer, DocumentKey, IncrementalCipherDoc, Mode, RecbDocument, RpcDocument,
    SchemeParams,
};
use pe_crypto::CtrDrbg;
use pe_delta::{diff, Delta, DeltaOp};

use crate::timing::timed;

fn bench_key() -> DocumentKey {
    DocumentKey::derive("bench-password", &[0x77; 16], 100)
}

fn make_doc(
    mode: Mode,
    b: usize,
    text: &[u8],
    seed: u64,
) -> Box<dyn IncrementalCipherDoc + Send> {
    let key = bench_key();
    let rng = CtrDrbg::from_seed(seed);
    match mode {
        Mode::Recb => {
            Box::new(RecbDocument::create(&key, SchemeParams::recb(b), text, rng).unwrap())
        }
        Mode::Rpc => Box::new(RpcDocument::create(&key, SchemeParams::rpc(b), text, rng).unwrap()),
    }
}

/// Number of plaintext characters a delta touches (deleted + inserted),
/// used to normalize incremental-update cost.
pub fn changed_chars(delta: &Delta) -> usize {
    delta
        .ops()
        .iter()
        .map(|op| match op {
            DeltaOp::Insert(s) => s.len(),
            DeltaOp::Delete(n) => *n,
            DeltaOp::Retain(_) => 0,
        })
        .sum::<usize>()
        .max(1)
}

/// Figure 4 results: per-character times for the three cryptographic
/// operations, plus whole-document encryption throughput.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Result {
    /// Number of `(D, D′)` test pairs run.
    pub tests: usize,
    /// Whole-document encryption, ms per character of `D`.
    pub encrypt_ms_per_char: f64,
    /// Whole-document decryption, ms per character of `D′`.
    pub decrypt_ms_per_char: f64,
    /// Delta transformation, ms per changed character.
    pub incremental_ms_per_char: f64,
    /// Encryption throughput in kB of plaintext per second.
    pub throughput_kb_per_s: f64,
}

/// Runs the §VII-B micro-benchmark: `tests` random `(D, D′)` pairs with
/// lengths uniform in 100..=10000; for each pair the delta `D → D′` is
/// derived and the three operations are timed. The paper reports RPC
/// mode ([`Mode::Rpc`]); rECB is also supported for comparison.
pub fn fig4(mode: Mode, b: usize, tests: usize, seed: u64) -> Fig4Result {
    let mut workload = WorkloadGen::new(seed);
    let mut encrypt_total = 0.0f64;
    let mut encrypt_chars = 0usize;
    let mut decrypt_total = 0.0f64;
    let mut decrypt_chars = 0usize;
    let mut inc_total = 0.0f64;
    let mut inc_chars = 0usize;
    for test in 0..tests {
        let (d, d2) = workload.micro_pair();
        let delta = diff(&d, &d2);
        let (doc, enc_time) = timed(|| make_doc(mode, b, d.as_bytes(), seed ^ test as u64));
        encrypt_total += enc_time.as_secs_f64();
        encrypt_chars += d.len();
        let mut transformer = DeltaTransformer::new(doc);
        let (result, inc_time) = timed(|| transformer.transform(&delta));
        result.expect("derived delta applies");
        inc_total += inc_time.as_secs_f64();
        inc_chars += changed_chars(&delta);
        let (plaintext, dec_time) = timed(|| transformer.doc().decrypt().expect("decrypts"));
        assert_eq!(plaintext, d2.as_bytes(), "transform must produce D′");
        decrypt_total += dec_time.as_secs_f64();
        decrypt_chars += d2.len();
    }
    Fig4Result {
        tests,
        encrypt_ms_per_char: encrypt_total * 1e3 / encrypt_chars.max(1) as f64,
        decrypt_ms_per_char: decrypt_total * 1e3 / decrypt_chars.max(1) as f64,
        incremental_ms_per_char: inc_total * 1e3 / inc_chars.max(1) as f64,
        throughput_kb_per_s: encrypt_chars as f64 / 1000.0 / encrypt_total.max(1e-12),
    }
}

/// One row of the Figure 6 block-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Characters per block (1..=8).
    pub block_size: usize,
    /// Whole-document encryption, µs per character (Fig. 6a).
    pub whole_doc_us_per_char: f64,
    /// Incremental update, µs per changed character (Fig. 6b).
    pub incremental_us_per_char: f64,
}

/// Runs the §VII-D block-size sweep: rECB mode, original documents fixed
/// at `doc_len` (the paper uses 10000) characters, `tests` random deltas
/// per block size.
pub fn fig6(doc_len: usize, tests: usize, seed: u64) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for b in 1..=8usize {
        let mut workload = WorkloadGen::new(seed ^ (b as u64) << 32);
        let mut enc_total = 0.0f64;
        let mut enc_chars = 0usize;
        let mut inc_total = 0.0f64;
        let mut inc_chars = 0usize;
        for test in 0..tests {
            let d = workload.random_string(doc_len);
            let d2_len = workload.length(100, 10_000);
            let d2 = workload.random_string(d2_len);
            let delta = diff(&d, &d2);
            let (doc, enc_time) =
                timed(|| make_doc(Mode::Recb, b, d.as_bytes(), seed ^ test as u64));
            enc_total += enc_time.as_secs_f64();
            enc_chars += d.len();
            let mut transformer = DeltaTransformer::new(doc);
            let (result, inc_time) = timed(|| transformer.transform(&delta));
            result.expect("derived delta applies");
            inc_total += inc_time.as_secs_f64();
            inc_chars += changed_chars(&delta);
        }
        rows.push(Fig6Row {
            block_size: b,
            whole_doc_us_per_char: enc_total * 1e6 / enc_chars.max(1) as f64,
            incremental_us_per_char: inc_total * 1e6 / inc_chars.max(1) as f64,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_smoke_produces_positive_times() {
        // Tiny run: correctness of plumbing, not timing quality.
        let result = fig4(Mode::Rpc, 1, 2, 42);
        assert_eq!(result.tests, 2);
        assert!(result.encrypt_ms_per_char > 0.0);
        assert!(result.decrypt_ms_per_char > 0.0);
        assert!(result.incremental_ms_per_char > 0.0);
        assert!(result.throughput_kb_per_s > 0.0);
    }

    #[test]
    fn fig4_recb_mode_also_runs() {
        let result = fig4(Mode::Recb, 8, 2, 43);
        assert!(result.encrypt_ms_per_char > 0.0);
    }

    #[test]
    fn fig6_covers_all_block_sizes() {
        let rows = fig6(600, 1, 44);
        assert_eq!(rows.len(), 8);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.block_size, i + 1);
            assert!(row.whole_doc_us_per_char > 0.0);
            assert!(row.incremental_us_per_char > 0.0);
        }
    }

    #[test]
    fn changed_chars_counts_edits() {
        let delta = Delta::parse("=5\t-3\t+ab").unwrap();
        assert_eq!(changed_chars(&delta), 5);
        assert_eq!(changed_chars(&Delta::new()), 1, "floor of 1 avoids division by zero");
    }
}
