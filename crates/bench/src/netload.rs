//! Multi-client network load: N concurrent mediated editors hammering
//! one [`HttpServer`](pe_net::HttpServer) over real loopback sockets.
//!
//! Each client is a full [`DocsMediator`] stack — password-derived key,
//! rECB encryption, delta protocol — over its own pooling
//! [`HttpClient`](pe_net::HttpClient), editing its own document. The
//! harness measures aggregate request throughput and per-request latency
//! quantiles straight from the `net.client.*` metrics the transport
//! already records, so the bench numbers and production telemetry can
//! never disagree.
//!
//! Every client is seeded, so a run is reproducible edit-for-edit; only
//! the timing is machine-dependent.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use pe_cloud::docs::DocsServer;
use pe_crypto::CtrDrbg;
use pe_extension::{DocsMediator, MediatorConfig};
use pe_net::{HttpClient, HttpServer, ServerConfig, Service};
use pe_store::{DocStore, FsyncPolicy, ShardedLogStore, StoreConfig};

/// What the per-row `DocsServer` persists documents in.
#[derive(Debug, Clone)]
pub enum StoreBacking {
    /// In-memory store: measures the pipeline with storage free.
    Mem,
    /// Durable sharded WAL store rooted at `dir` — every acknowledged
    /// save pays real WAL + fsync cost. Each concurrency row opens a
    /// fresh store in its own subdirectory, so rows stay independent.
    Sharded {
        /// Root directory; each row uses a `cNNNN` subdirectory.
        dir: PathBuf,
        /// Fsync policy for every shard.
        fsync: FsyncPolicy,
        /// WAL shards per row store.
        shards: usize,
    },
}

impl StoreBacking {
    /// Stable per-row label for reports.
    pub fn label(&self) -> String {
        match self {
            StoreBacking::Mem => "mem".into(),
            StoreBacking::Sharded { fsync, shards, .. } => {
                format!("sharded-log shards={shards} fsync={}", fsync.label())
            }
        }
    }

    /// A fresh backend server for one concurrency row.
    fn make_server(&self, clients: usize) -> DocsServer {
        match self {
            StoreBacking::Mem => DocsServer::new(),
            StoreBacking::Sharded { dir, fsync, shards } => {
                let row_dir = dir.join(format!("c{clients:04}"));
                let _ = std::fs::remove_dir_all(&row_dir);
                std::fs::create_dir_all(&row_dir).expect("create row store dir");
                let store = ShardedLogStore::open(
                    &row_dir,
                    *shards,
                    StoreConfig { fsync: *fsync, ..StoreConfig::default() },
                )
                .expect("open durable bench store");
                DocsServer::with_store(Arc::new(store) as Arc<dyn DocStore>)
            }
        }
    }
}

/// One measured concurrency level.
#[derive(Debug, Clone, PartialEq)]
pub struct NetLoadRow {
    /// Store backing the server for this row (`mem`, `sharded-log …`,
    /// or `external` when driving a foreign server).
    pub store: String,
    /// Number of concurrent mediated editors.
    pub clients: usize,
    /// Successful HTTP requests completed across all clients.
    pub requests: u64,
    /// Wall-clock seconds for the whole fan-out (spawn to last join).
    pub wall_s: f64,
    /// Aggregate requests per second.
    pub rps: f64,
    /// Median request latency, nanoseconds (`net.client.request_ns` p50).
    pub p50_ns: u64,
    /// Tail request latency, nanoseconds (`net.client.request_ns` p99).
    pub p99_ns: u64,
    /// Transient failures that were retried (`net.client.retries`).
    pub retries: u64,
    /// Requests that exhausted retries or hit a fatal error
    /// (`net.client.errors`) — must be zero on a fault-free wire.
    pub errors: u64,
    /// Editing sessions that failed outright — must always be zero.
    pub failed_sessions: u64,
    /// Server-side peak of concurrently open connections
    /// (`net.server.conns_open` gauge peak). Zero in `--connect` mode,
    /// where the server runs in another process.
    pub peak_conns: u64,
    /// Event-loop wakeups the server needed for the whole row
    /// (`net.server.epoll_wakeups`). Zero in `--connect` mode.
    pub loop_wakeups: u64,
}

/// One client's scripted session: create a document, then
/// `edits` rounds of open → append → save.
fn editor_session(
    addr: std::net::SocketAddr,
    client_index: usize,
    edits: usize,
    seed: u64,
) -> Result<(), String> {
    let client = HttpClient::new(addr);
    let mut mediator = DocsMediator::with_rng(
        client,
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(seed ^ (client_index as u64) << 8),
    );
    let doc_id = mediator
        .create_document(&format!("load-pw-{client_index}"))
        .map_err(|e| format!("client {client_index} create: {e}"))?;
    mediator
        .save_full(&doc_id, &format!("client {client_index} baseline"))
        .map_err(|e| format!("client {client_index} seed save: {e}"))?;
    for edit in 0..edits {
        let current = mediator
            .open_document(&doc_id)
            .map_err(|e| format!("client {client_index} open #{edit}: {e}"))?;
        mediator
            .save_full(&doc_id, &format!("{current} +{edit}"))
            .map_err(|e| format!("client {client_index} save #{edit}: {e}"))?;
    }
    Ok(())
}

/// Runs the load at each concurrency level in `client_counts`.
///
/// Each level gets a fresh [`DocsServer`], a fresh [`HttpServer`], and a
/// reset metrics registry, so rows are independent measurements. The
/// worker pool is sized to the machine (not to N) — scaling beyond the
/// worker count measures queueing, which is the interesting regime.
pub fn net_load(client_counts: &[usize], edits: usize, seed: u64) -> Vec<NetLoadRow> {
    net_load_with_store(&StoreBacking::Mem, client_counts, edits, seed)
}

/// Like [`net_load`] but with a chosen [`StoreBacking`] — the durable
/// variant is the row set that shows what acknowledged saves cost when
/// every one of them must reach a sharded WAL before the HTTP response.
pub fn net_load_with_store(
    backing: &StoreBacking,
    client_counts: &[usize],
    edits: usize,
    seed: u64,
) -> Vec<NetLoadRow> {
    client_counts
        .iter()
        .map(|&clients| {
            let backend = Arc::new(backing.make_server(clients));
            let server = HttpServer::bind(
                "127.0.0.1:0",
                Arc::clone(&backend) as Arc<dyn Service>,
                ServerConfig { workers: 8, ..ServerConfig::default() },
            )
            .expect("bind loopback ephemeral port");
            let row = run_row(server.local_addr(), &backing.label(), clients, edits, seed);
            server.shutdown();
            row
        })
        .collect()
}

/// Like [`net_load`] but driving an already-running server at `addr`
/// (e.g. a live `pedit serve`) instead of spawning one per row. The
/// server-side columns (`peak_conns`, `loop_wakeups`) read zero because
/// the server's registry lives in the other process.
pub fn net_load_connect(
    addr: std::net::SocketAddr,
    client_counts: &[usize],
    edits: usize,
    seed: u64,
) -> Vec<NetLoadRow> {
    client_counts.iter().map(|&clients| run_row(addr, "external", clients, edits, seed)).collect()
}

/// One concurrency level against `addr`, measured from a fresh metrics
/// registry.
fn run_row(
    addr: std::net::SocketAddr,
    store: &str,
    clients: usize,
    edits: usize,
    seed: u64,
) -> NetLoadRow {
    pe_observe::global().reset();
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| std::thread::spawn(move || editor_session(addr, i, edits, seed)))
        .collect();
    let failed_sessions = handles
        .into_iter()
        .map(std::thread::JoinHandle::join)
        .filter(|outcome| !matches!(outcome, Ok(Ok(()))))
        .count() as u64;
    let wall_s = started.elapsed().as_secs_f64();

    let snapshot = pe_observe::global().snapshot();
    let requests = snapshot.counter("net.client.requests").unwrap_or(0);
    let (p50_ns, p99_ns) = snapshot
        .histogram("net.client.request_ns")
        .map_or((0, 0), |h| (h.quantile(0.50), h.quantile(0.99)));
    NetLoadRow {
        store: store.to_string(),
        clients,
        requests,
        wall_s,
        rps: if wall_s > 0.0 { requests as f64 / wall_s } else { 0.0 },
        p50_ns,
        p99_ns,
        retries: snapshot.counter("net.client.retries").unwrap_or(0),
        errors: snapshot.counter("net.client.errors").unwrap_or(0),
        failed_sessions,
        peak_conns: snapshot.gauge("net.server.conns_open").map_or(0, |g| g.peak),
        loop_wakeups: snapshot.counter("net.server.epoll_wakeups").unwrap_or(0),
    }
}

/// Renders the rows as the JSON document committed as `BENCH_net.json`.
pub fn render_json(rows: &[NetLoadRow], edits: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"net_load\",\n");
    out.push_str("  \"transport\": \"pe-net loopback TCP\",\n");
    out.push_str("  \"server\": \"event-loop (epoll)\",\n");
    out.push_str("  \"mode\": \"recb\",\n");
    out.push_str("  \"block_size\": 8,\n");
    out.push_str(&format!("  \"edits_per_client\": {edits},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"store\": \"{}\", \"clients\": {}, \"requests\": {}, \"wall_s\": {:.4}, \
             \"rps\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"retries\": {}, \"errors\": {}, \
             \"failed_sessions\": {}, \"peak_conns\": {}, \"loop_wakeups\": {}}}{}\n",
            row.store,
            row.clients,
            row.requests,
            row.wall_s,
            row.rps,
            row.p50_ns,
            row.p99_ns,
            row.retries,
            row.errors,
            row.failed_sessions,
            row.peak_conns,
            row.loop_wakeups,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_load_completes_with_zero_unrecovered_errors() {
        let rows = net_load(&[1, 2], 2, 0xbead);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.errors, 0, "unrecovered errors on a fault-free wire");
            assert_eq!(row.failed_sessions, 0);
            // create + seed save + 2×(open + save) = 6 requests per client.
            assert_eq!(row.requests, 6 * row.clients as u64);
            assert!(row.rps > 0.0);
            assert!(row.p50_ns > 0 && row.p99_ns >= row.p50_ns);
            assert!(row.peak_conns >= 1, "server-side connection peak not observed");
            assert!(row.loop_wakeups > 0, "event loop never woke?");
        }
    }

    #[test]
    fn durable_backing_persists_every_acknowledged_save() {
        let dir = std::env::temp_dir()
            .join(format!("pe-netload-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backing = StoreBacking::Sharded {
            dir: dir.clone(),
            fsync: FsyncPolicy::Always,
            shards: 2,
        };
        let rows = net_load_with_store(&backing, &[2], 1, 0xd0);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].errors, 0);
        assert_eq!(rows[0].failed_sessions, 0);
        assert!(rows[0].store.starts_with("sharded-log"), "store: {}", rows[0].store);
        // The row's store is a real sharded layout that reopens with
        // every client's document intact.
        let row_dir = dir.join("c0002");
        assert!(row_dir.join(pe_store::MANIFEST_NAME).is_file());
        let reopened = ShardedLogStore::open(&row_dir, 2, StoreConfig::default()).unwrap();
        assert_eq!(reopened.shard_count(), 2);
        assert_eq!(reopened.list().len(), 2, "one document per client");
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn connect_mode_drives_an_external_server() {
        let backend = Arc::new(DocsServer::new());
        let server = HttpServer::bind(
            "127.0.0.1:0",
            backend as Arc<dyn Service>,
            ServerConfig::default(),
        )
        .unwrap();
        let rows = net_load_connect(server.local_addr(), &[2], 1, 0xc0);
        server.shutdown();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].errors, 0);
        assert_eq!(rows[0].failed_sessions, 0);
        assert_eq!(rows[0].requests, 4 * 2);
    }

    #[test]
    fn json_report_is_well_formed() {
        let rows = net_load(&[1], 1, 0xfeed);
        let json = render_json(&rows, 1);
        assert!(json.contains("\"bench\": \"net_load\""));
        assert!(json.contains("\"clients\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
