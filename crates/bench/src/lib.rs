//! Benchmark harness regenerating every table and figure of §VII.
//!
//! Each experiment has (a) a harness function here returning structured
//! results so integration tests can assert the paper's *shape* claims,
//! and (b) a binary under `src/bin/` printing the same rows the paper
//! reports. DESIGN.md maps every paper table/figure to its regenerator;
//! EXPERIMENTS.md records paper-vs-measured values.
//!
//! | Paper artifact | Harness | Binary |
//! |---|---|---|
//! | Fig. 4 (micro, RPC) | [`micro::fig4`] | `fig4_micro` |
//! | Fig. 5 (macro table) | [`macrobench::run_macro`] | `fig5_macro` |
//! | Fig. 6 (block-size sweep) | [`micro::fig6`] | `fig6_blocksize` |
//! | Fig. 7 (blowup table) | [`blowup::fig7`] | `fig7_blowup` |
//! | Fig. 8 (macro, 8-char rECB) | [`macrobench::run_macro`] | `fig8_macro_multichar` |
//! | §VII-A functionality matrix | [`matrix::functionality_matrix`] | `functionality_matrix` |
//! | §V-A/VI ablations | [`ablation`] | `ablation_baselines` |
//! | §V-A integrity design space | [`integrity`] | `ablation_integrity` |
//! | "typical use" keystroke throughput | — | `typing_throughput` |
//! | Crypto fast-path throughput | [`crypto_bench::crypto_throughput`] | `crypto_throughput` |
//! | Network load scaling | [`netload::net_load`] | `net_load` |
//! | Live collaboration fan-out | [`collab::collab_load`] | `collab_load` |
//! | Durable store append + replay | [`storebench`] | `store_recovery` |
//! | Tenant key wrap / grant / recovery | [`tenantbench`] | `tenant_bench` |
//!
//! Timing note: run the binaries with `--release`; the from-scratch AES
//! is 30–50× slower unoptimized.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod blowup;
pub mod collab;
pub mod crypto_bench;
pub mod prepr_drbg;
pub mod prepr_list;
pub mod integrity;
pub mod macrobench;
pub mod matrix;
pub mod micro;
pub mod netload;
pub mod report;
pub mod storebench;
pub mod tenantbench;
pub mod timing;
