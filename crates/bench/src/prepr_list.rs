//! The pre-fast-path `IndexedSkipList`, vendored for the crypto
//! throughput baseline.
//!
//! The shipping list in `pe-indexlist` has since grown an inline tower
//! representation and a bulk `extend_back` append, both of which make
//! full-document builds cheaper. The `crypto_throughput` baseline must
//! replay the *pre-PR* cost, so this module keeps the original layout
//! exactly: every node owns a heap-allocated `Vec<Link>` tower, and every
//! insert re-walks from the head, allocating fresh `update`/`ranks`
//! vectors. Only the operations the baseline exercises (`insert` at the
//! tail, `get` by ordinal, the counters) are retained.
//!
//! Nothing outside the benchmark may use this; it exists so the committed
//! `BENCH_crypto.json` compares against the genuine old data structure
//! rather than a retroactively improved one.

use pe_indexlist::Weighted;

/// Maximum tower height; 2^32 blocks is far beyond any document size.
const MAX_LEVEL: usize = 32;

/// Sentinel index representing the NIL pointer at the end of every level.
const NIL: usize = usize::MAX;

/// A forward pointer: target plus the skip counts in blocks and
/// characters.
#[derive(Debug, Clone, Copy)]
struct Link {
    target: usize,
    span_blocks: usize,
    span_weight: usize,
}

/// The original node layout: a heap-allocated `Vec<Link>` tower per node.
#[derive(Debug)]
struct Node<T> {
    value: Option<T>,
    forward: Vec<Link>,
}

/// SplitMix64, identical to the list's embedded PRNG.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The pre-PR order-statistic skip list, trimmed to the baseline's
/// operation set.
#[derive(Debug)]
pub struct PreprSkipList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<usize>,
    len_blocks: usize,
    total_weight: usize,
    level: usize,
    rng: SplitMix64,
}

impl<T: Weighted> PreprSkipList<T> {
    /// Creates an empty list with the list's historical default seed.
    pub fn new() -> PreprSkipList<T> {
        let head = Node {
            value: None,
            forward: vec![Link { target: NIL, span_blocks: 0, span_weight: 0 }],
        };
        PreprSkipList {
            nodes: vec![head],
            free: Vec::new(),
            len_blocks: 0,
            total_weight: 0,
            level: 1,
            rng: SplitMix64(0x5eed_feed_cafe_f00d),
        }
    }

    /// Number of blocks stored.
    pub fn len_blocks(&self) -> usize {
        self.len_blocks
    }

    /// Total characters across all blocks.
    pub fn total_weight(&self) -> usize {
        self.total_weight
    }

    /// Draws a tower height with geometric distribution (p = 1/2).
    fn random_level(&mut self) -> usize {
        let bits = self.rng.next();
        ((bits.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    /// Walks to block-rank `rank`, allocating the `update`/`ranks` vectors
    /// on every call — exactly as the pre-PR list did.
    fn walk_to_rank(&self, rank: usize) -> (Vec<usize>, Vec<(usize, usize)>) {
        let mut update = vec![0usize; self.level];
        let mut ranks = vec![(0usize, 0usize); self.level];
        let mut x = 0usize;
        let mut remaining = rank;
        let mut acc_blocks = 0usize;
        let mut acc_weight = 0usize;
        for i in (0..self.level).rev() {
            loop {
                let link = self.nodes[x].forward[i];
                if link.target == NIL || link.span_blocks > remaining {
                    break;
                }
                remaining -= link.span_blocks;
                acc_blocks += link.span_blocks;
                acc_weight += link.span_weight;
                x = link.target;
            }
            update[i] = x;
            ranks[i] = (acc_blocks, acc_weight);
        }
        debug_assert_eq!(remaining, 0, "rank walk must land exactly");
        (update, ranks)
    }

    /// Allocates a node in the arena with a fresh `Vec` tower.
    fn alloc(&mut self, value: T, levels: usize) -> usize {
        let node = Node { value: Some(value), forward: Vec::with_capacity(levels) };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Returns the block at `ordinal` via the pre-PR per-call rank walk.
    pub fn get(&self, ordinal: usize) -> Option<&T> {
        if ordinal >= self.len_blocks {
            return None;
        }
        let (update, _) = self.walk_to_rank(ordinal);
        let target = self.nodes[update[0]].forward[0].target;
        self.nodes[target].value.as_ref()
    }

    /// Inserts `value` before `ordinal`, re-walking from the head exactly
    /// as the pre-PR list did on every call.
    pub fn insert(&mut self, ordinal: usize, value: T) {
        assert!(ordinal <= self.len_blocks, "insert ordinal {ordinal} out of range");
        let w = value.weight();
        assert!(w > 0, "blocks must have positive weight");
        let lvl = self.random_level();
        if lvl > self.level {
            // Grow the head tower; new levels span the whole list.
            for _ in self.level..lvl {
                self.nodes[0].forward.push(Link {
                    target: NIL,
                    span_blocks: self.len_blocks,
                    span_weight: self.total_weight,
                });
            }
            self.level = lvl;
        }
        let (update, ranks) = self.walk_to_rank(ordinal);
        let wk = ranks[0].1;
        let new_idx = self.alloc(value, lvl);
        for i in 0..lvl {
            let u = update[i];
            let old = self.nodes[u].forward[i];
            let nb = ordinal + 1 - ranks[i].0;
            let nw = wk + w - ranks[i].1;
            let out_link = Link {
                target: old.target,
                span_blocks: old.span_blocks - (nb - 1),
                span_weight: old.span_weight - (nw - w),
            };
            self.nodes[new_idx].forward.push(out_link);
            self.nodes[u].forward[i] =
                Link { target: new_idx, span_blocks: nb, span_weight: nw };
        }
        for (i, &u) in update.iter().enumerate().skip(lvl) {
            self.nodes[u].forward[i].span_blocks += 1;
            self.nodes[u].forward[i].span_weight += w;
        }
        self.len_blocks += 1;
        self.total_weight += w;
    }
}

impl<T: Weighted> Default for PreprSkipList<T> {
    fn default() -> Self {
        PreprSkipList::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_indexlist::{BlockSeq, IndexedSkipList};

    struct W(usize);

    impl Weighted for W {
        fn weight(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn matches_shipping_list_on_sequential_appends() {
        let mut old = PreprSkipList::new();
        let mut new = IndexedSkipList::new();
        for i in 0..200 {
            let w = 1 + (i * 7) % 8;
            old.insert(i, W(w));
            new.insert(i, W(w));
        }
        assert_eq!(old.len_blocks(), new.len_blocks());
        assert_eq!(old.total_weight(), new.total_weight());
        for i in 0..200 {
            assert_eq!(old.get(i).unwrap().0, new.get(i).unwrap().0);
        }
        assert!(old.get(200).is_none());
    }
}
