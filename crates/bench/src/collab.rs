//! Live-collaboration load: K concurrent [`LiveSession`] editors on ONE
//! shared encrypted document over real loopback sockets.
//!
//! Every editor is the full client stack — password-derived key, rECB
//! encryption, a pooling `HttpClient` for requests plus a dedicated
//! subscription connection for the long-poll — all sharing a single
//! mediator per editor (the [`SharedChannel`] topology), against a
//! server whose every accepted save lands in a durable sharded WAL
//! before the ack and then fans out to parked `/Doc/changes`
//! subscribers.
//!
//! Two delivery paths are measured against each other, each on a
//! dedicated pure listener so the comparison is symmetric:
//!
//! * **push** — a watcher that stays parked in long-polls; a save
//!   wakes its connection, so delivery latency is wake + decrypt time
//!   (`collab.push_delivery_ns`);
//! * **poll** — a subscriber that never parks (`waitMs=0`) and
//!   instead sleeps a fixed interval between probes, the pre-change-
//!   stream strategy; its latency is dominated by the interval
//!   (`collab.poll_delivery_ns`).
//!
//! Latency is stamped from the *publisher's* save ack to the
//! *subscriber's* application of that sequence — cross-thread, via a
//! shared seq → `Instant` map — so it includes the whole fan-out path.
//! At the end of a row every editor must hold byte-for-byte identical
//! plaintext, equal to a fresh reader's decryption of the server copy.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use pe_client::{DocsClient, PrivateChannel, SaveOutcome};
use pe_cloud::docs::DocsServer;
use pe_collab::{LiveDocs, LiveService, LiveSession, LiveTransport, SharedChannel};
use pe_crypto::CtrDrbg;
use pe_extension::{DocsMediator, MediatorConfig};
use pe_net::{HttpClient, HttpServer, ServerConfig};
use pe_store::{DocStore, FsyncPolicy, ShardedLogStore, StoreConfig};

/// Password every bench editor shares (one document, one key).
const PASSWORD: &str = "collab-load-pw";

/// One measured fan-out level.
#[derive(Debug, Clone, PartialEq)]
pub struct CollabLoadRow {
    /// Store backing the server for this row.
    pub store: String,
    /// Concurrent live editors (each also a push subscriber).
    pub editors: usize,
    /// Edit rounds each editor performed.
    pub rounds: usize,
    /// Accepted saves across all editors.
    pub saves: u64,
    /// Foreign changes applied across all push subscribers.
    pub deliveries: u64,
    /// Wall-clock seconds, join to last converged drain.
    pub wall_s: f64,
    /// Deliveries per second across the whole fan-out.
    pub fanout_per_s: f64,
    /// Push-path delivery latency, publisher ack → subscriber apply.
    pub push_p50_ns: u64,
    /// Push-path tail latency.
    pub push_p99_ns: u64,
    /// The polling subscriber's probe interval.
    pub poll_interval_ms: u64,
    /// Poll-path delivery latency (dominated by the interval).
    pub poll_p50_ns: u64,
    /// Poll-path tail latency.
    pub poll_p99_ns: u64,
    /// Sessions that fell back to a full-content resync.
    pub resyncs: u64,
    /// Editor sessions that failed outright — must be zero.
    pub errors: u64,
    /// Every editor ended byte-for-byte equal to the server copy.
    pub converged: bool,
    /// Final plaintext length in bytes.
    pub doc_bytes: usize,
}

/// What one editor thread brings home.
struct EditorOutcome {
    content: String,
    deliveries: u64,
    resyncs: u64,
}

type LiveChannel = SharedChannel<PrivateChannel<LiveTransport>>;

fn join_session(
    addr: std::net::SocketAddr,
    doc: &str,
    name: &str,
    seed: u64,
    wait: Duration,
) -> Result<LiveSession<LiveChannel, LiveChannel>, String> {
    // The subscription read timeout must outlast the longest park.
    let transport =
        LiveTransport::new(HttpClient::new(addr), wait + Duration::from_secs(30));
    let mut mediator =
        DocsMediator::with_rng(transport, MediatorConfig::recb(8), CtrDrbg::from_seed(seed));
    mediator.register_password(doc, PASSWORD);
    let channel = SharedChannel::new(PrivateChannel(mediator));
    let client = DocsClient::open(channel.clone(), doc)
        .map_err(|e| format!("{name}: open failed: {e:?}"))?;
    LiveSession::start(client, channel, name, None).map_err(|e| format!("{name}: {e}"))
}

/// Records delivery latency for every newly-covered foreign sequence.
///
/// Delivery can outrun the bookkeeping: the server fans out *before* the
/// ack travels back to the publisher, so a fast subscriber may apply a
/// sequence before its `Instant` stamp lands in `publishes`. Unmatched
/// sequences are parked in `pending` with their apply time and resolved
/// on a later call once the stamp shows up (clamping at zero if the
/// stamp post-dates the apply).
fn record_deliveries(
    histogram: &'static pe_observe::Histogram,
    publishes: &Mutex<HashMap<u64, Instant>>,
    pending: &mut Vec<(u64, Instant)>,
    prev_since: u64,
    new_since: u64,
) {
    let applied_at = Instant::now();
    for seq in prev_since.saturating_add(1)..=new_since {
        pending.push((seq, applied_at));
    }
    let map = publishes.lock().unwrap_or_else(|e| e.into_inner());
    pending.retain(|(seq, at)| match map.get(seq) {
        Some(stamp) => {
            let latency =
                at.checked_duration_since(*stamp).unwrap_or(Duration::ZERO).as_nanos() as u64;
            histogram.record(latency.max(1));
            false
        }
        None => true,
    });
}

#[allow(clippy::too_many_arguments)]
fn editor_session(
    addr: std::net::SocketAddr,
    doc: &str,
    index: usize,
    rounds: usize,
    seed: u64,
    publishes: &Mutex<HashMap<u64, Instant>>,
    start: &Barrier,
    edits_done: &Barrier,
) -> Result<EditorOutcome, String> {
    let wait = Duration::from_millis(800);
    let name = format!("editor-{index}");
    let mut session = join_session(addr, doc, &name, seed ^ ((index as u64) << 8), wait)?;
    let mut deliveries = 0u64;

    start.wait();
    for round in 0..rounds {
        {
            let editor = session.client().editor();
            let len = editor.len();
            editor.insert(len, &format!(" e{index}r{round}"));
        }
        // Under a K-writer storm the client's internal retries can run
        // out; pull the stream (rebasing our pending intent via OT) and
        // try again — the local edit survives every failed attempt.
        let mut saved = false;
        for _attempt in 0..25 {
            if session.save() != SaveOutcome::Conflict {
                saved = true;
                break;
            }
            let outcome = session
                .step(Duration::from_millis(20 + (index as u64 % 7) * 10))
                .map_err(|e| format!("{name}: {e}"))?;
            deliveries += outcome.applied as u64;
        }
        if !saved {
            return Err(format!("{name}: save conflicted out in round {round}"));
        }
        if let Some(version) = session.client().last_ack_version() {
            publishes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(version, Instant::now());
        }
        let outcome = session.step(wait).map_err(|e| format!("{name}: {e}"))?;
        deliveries += outcome.applied as u64;
    }

    // Everyone stops typing, then drains until globally quiet: no new
    // sequences can appear, so two consecutive empty polls mean done.
    edits_done.wait();
    let mut quiet = 0;
    for _ in 0..40 {
        let outcome =
            session.step(Duration::from_millis(300)).map_err(|e| format!("{name}: {e}"))?;
        deliveries += outcome.applied as u64;
        if outcome.applied == 0 && !outcome.resynced {
            quiet += 1;
            if quiet >= 2 {
                break;
            }
        } else {
            quiet = 0;
        }
    }
    Ok(EditorOutcome {
        content: session.content().to_string(),
        deliveries,
        resyncs: session.resyncs() as u64,
    })
}

/// The push listener: stays parked in long-polls, woken by every
/// accepted save. Runs until `stop` flips.
fn watcher_session(
    addr: std::net::SocketAddr,
    doc: &str,
    seed: u64,
    publishes: &Mutex<HashMap<u64, Instant>>,
    stop: &AtomicBool,
) -> Result<u64, String> {
    let wait = Duration::from_millis(1500);
    let mut session = join_session(addr, doc, "watcher", seed, wait)?;
    let mut pending = Vec::new();
    let push_latency = pe_observe::static_histogram!("collab.push_delivery_ns");
    let mut deliveries = 0u64;
    while !stop.load(Ordering::SeqCst) {
        let before = session.since();
        let outcome = session.step(wait).map_err(|e| format!("watcher: {e}"))?;
        deliveries += outcome.applied as u64;
        record_deliveries(push_latency, publishes, &mut pending, before, session.since());
    }
    Ok(deliveries)
}

/// The pre-change-stream baseline: probe with `waitMs=0` every
/// `interval`, never parking. Runs until `stop` flips.
fn poller_session(
    addr: std::net::SocketAddr,
    doc: &str,
    seed: u64,
    interval: Duration,
    publishes: &Mutex<HashMap<u64, Instant>>,
    stop: &AtomicBool,
) -> Result<u64, String> {
    let mut session = join_session(addr, doc, "poller", seed, interval)?;
    let mut pending = Vec::new();
    let poll_latency = pe_observe::static_histogram!("collab.poll_delivery_ns");
    let mut deliveries = 0u64;
    while !stop.load(Ordering::SeqCst) {
        let before = session.since();
        let outcome = session.step(Duration::ZERO).map_err(|e| format!("poller: {e}"))?;
        deliveries += outcome.applied as u64;
        record_deliveries(poll_latency, publishes, &mut pending, before, session.since());
        std::thread::sleep(interval);
    }
    Ok(deliveries)
}

/// Runs the fan-out at each level in `editor_counts`, each row on a
/// fresh durable sharded store under `dir` and a fresh metrics registry.
pub fn collab_load(
    dir: &Path,
    fsync: FsyncPolicy,
    shards: usize,
    editor_counts: &[usize],
    rounds: usize,
    poll_interval_ms: u64,
    seed: u64,
) -> Vec<CollabLoadRow> {
    editor_counts
        .iter()
        .map(|&editors| {
            run_row(dir, fsync, shards, editors, rounds, poll_interval_ms, seed)
        })
        .collect()
}

fn run_row(
    dir: &Path,
    fsync: FsyncPolicy,
    shards: usize,
    editors: usize,
    rounds: usize,
    poll_interval_ms: u64,
    seed: u64,
) -> CollabLoadRow {
    pe_observe::global().reset();
    let row_dir = dir.join(format!("k{editors:04}"));
    let _ = std::fs::remove_dir_all(&row_dir);
    std::fs::create_dir_all(&row_dir).expect("create row store dir");
    let store = ShardedLogStore::open(
        &row_dir,
        shards,
        StoreConfig { fsync, ..StoreConfig::default() },
    )
    .expect("open durable bench store");
    let backend =
        Arc::new(DocsServer::with_store(Arc::new(store) as Arc<dyn DocStore>));
    let live = LiveDocs::new(Arc::clone(&backend));
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(LiveService(Arc::clone(&live))),
        ServerConfig { workers: 8, ..ServerConfig::default() },
    )
    .expect("bind loopback ephemeral port");
    let addr = server.local_addr();

    // One shared private document, created over the wire.
    let mut creator = DocsMediator::with_rng(
        HttpClient::new(addr),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(seed),
    );
    let doc = creator.create_document(PASSWORD).expect("create shared document");
    creator.save_full(&doc, "collab baseline").expect("seed the shared document");

    let publishes = Arc::new(Mutex::new(HashMap::new()));
    let start = Arc::new(Barrier::new(editors));
    let edits_done = Arc::new(Barrier::new(editors));
    let stop_listeners = Arc::new(AtomicBool::new(false));

    let watcher = {
        let doc = doc.clone();
        let publishes = Arc::clone(&publishes);
        let stop = Arc::clone(&stop_listeners);
        std::thread::spawn(move || {
            watcher_session(addr, &doc, seed ^ 0x5afe, &publishes, &stop)
        })
    };
    let poller = {
        let doc = doc.clone();
        let publishes = Arc::clone(&publishes);
        let stop = Arc::clone(&stop_listeners);
        let interval = Duration::from_millis(poll_interval_ms);
        std::thread::spawn(move || {
            poller_session(addr, &doc, seed ^ 0x9011, interval, &publishes, &stop)
        })
    };

    let started = Instant::now();
    let handles: Vec<_> = (0..editors)
        .map(|index| {
            let doc = doc.clone();
            let publishes = Arc::clone(&publishes);
            let start = Arc::clone(&start);
            let edits_done = Arc::clone(&edits_done);
            std::thread::spawn(move || {
                editor_session(
                    addr, &doc, index, rounds, seed, &publishes, &start, &edits_done,
                )
            })
        })
        .collect();
    let outcomes: Vec<Result<EditorOutcome, String>> = handles
        .into_iter()
        .map(|h| h.join().unwrap_or_else(|_| Err("editor thread panicked".into())))
        .collect();
    let wall_s = started.elapsed().as_secs_f64();
    stop_listeners.store(true, Ordering::SeqCst);
    let listener_deliveries: u64 = [watcher.join(), poller.join()]
        .into_iter()
        .map(|joined| match joined {
            Ok(Ok(n)) => n,
            _ => 0,
        })
        .sum();

    let mut errors = 0u64;
    let mut deliveries = listener_deliveries;
    let mut resyncs = 0u64;
    let mut contents: Vec<String> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(o) => {
                deliveries += o.deliveries;
                resyncs += o.resyncs;
                contents.push(o.content);
            }
            Err(message) => {
                eprintln!("editor failed: {message}");
                errors += 1;
            }
        }
    }

    // Byte-for-byte convergence: every editor equal, and equal to what a
    // fresh key holder decrypts from the durable server copy.
    let mut reader = DocsMediator::with_rng(
        HttpClient::new(addr),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(seed ^ 0xFEED),
    );
    reader.register_password(&doc, PASSWORD);
    let server_copy = reader.open_document(&doc).unwrap_or_default();
    let converged =
        errors == 0 && !contents.is_empty() && contents.iter().all(|c| *c == server_copy);
    if !converged && errors == 0 {
        // Name the culprits: which editors drifted, and by how much.
        eprintln!("server copy: {} bytes", server_copy.len());
        for (i, content) in contents.iter().enumerate() {
            if *content != server_copy {
                eprintln!("editor {i} diverged: {} bytes", content.len());
            }
        }
    }
    server.shutdown();

    let snapshot = pe_observe::global().snapshot();
    let (push_p50_ns, push_p99_ns) = snapshot
        .histogram("collab.push_delivery_ns")
        .map_or((0, 0), |h| (h.quantile(0.50), h.quantile(0.99)));
    let (poll_p50_ns, poll_p99_ns) = snapshot
        .histogram("collab.poll_delivery_ns")
        .map_or((0, 0), |h| (h.quantile(0.50), h.quantile(0.99)));
    CollabLoadRow {
        store: format!("sharded-log shards={shards} fsync={}", fsync.label()),
        editors,
        rounds,
        saves: snapshot.counter("collab.published").unwrap_or(0),
        deliveries,
        wall_s,
        fanout_per_s: if wall_s > 0.0 { deliveries as f64 / wall_s } else { 0.0 },
        push_p50_ns,
        push_p99_ns,
        poll_interval_ms,
        poll_p50_ns,
        poll_p99_ns,
        resyncs,
        errors,
        converged,
        doc_bytes: server_copy.len(),
    }
}

/// Renders the rows as the JSON document committed as `BENCH_collab.json`.
pub fn render_json(rows: &[CollabLoadRow], rounds: usize, poll_interval_ms: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"collab_load\",\n");
    out.push_str("  \"transport\": \"pe-net loopback TCP, parked long-poll push\",\n");
    out.push_str("  \"mode\": \"recb\",\n");
    out.push_str("  \"block_size\": 8,\n");
    out.push_str(&format!("  \"rounds_per_editor\": {rounds},\n"));
    out.push_str(&format!("  \"poll_interval_ms\": {poll_interval_ms},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"store\": \"{}\", \"editors\": {}, \"saves\": {}, \"deliveries\": {}, \
             \"wall_s\": {:.4}, \"fanout_per_s\": {:.1}, \"push_p50_ns\": {}, \
             \"push_p99_ns\": {}, \"poll_interval_ms\": {}, \"poll_p50_ns\": {}, \
             \"poll_p99_ns\": {}, \"resyncs\": {}, \"errors\": {}, \"converged\": {}, \
             \"doc_bytes\": {}}}{}\n",
            row.store,
            row.editors,
            row.saves,
            row.deliveries,
            row.wall_s,
            row.fanout_per_s,
            row.push_p50_ns,
            row.push_p99_ns,
            row.poll_interval_ms,
            row.poll_p50_ns,
            row.poll_p99_ns,
            row.resyncs,
            row.errors,
            row.converged,
            row.doc_bytes,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fanout_converges_with_zero_errors() {
        let dir = std::env::temp_dir()
            .join(format!("pe-collabload-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rows = collab_load(&dir, FsyncPolicy::Never, 2, &[2], 2, 50, 0xc011);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.errors, 0, "editor sessions failed");
        assert!(row.converged, "editors diverged");
        assert_eq!(row.saves, 2 * 2 + 1, "seed save + K*rounds accepted saves");
        assert!(row.deliveries > 0, "no fan-out deliveries observed");
        assert!(row.push_p99_ns > 0, "push latency histogram is empty");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_report_is_well_formed() {
        let row = CollabLoadRow {
            store: "sharded-log shards=4 fsync=always".into(),
            editors: 2,
            rounds: 3,
            saves: 7,
            deliveries: 6,
            wall_s: 0.5,
            fanout_per_s: 12.0,
            push_p50_ns: 1_000_000,
            push_p99_ns: 5_000_000,
            poll_interval_ms: 250,
            poll_p50_ns: 120_000_000,
            poll_p99_ns: 260_000_000,
            resyncs: 0,
            errors: 0,
            converged: true,
            doc_bytes: 64,
        };
        let json = render_json(&[row], 3, 250);
        assert!(json.contains("\"bench\": \"collab_load\""));
        assert!(json.contains("\"converged\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
