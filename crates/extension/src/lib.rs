//! The private-editing mediator ("browser extension").
//!
//! Figure 1 of the paper: "The server maintains the ciphertext document,
//! C. The browser extension intercepts all client-server traffic,
//! encrypting as necessary." This crate is that extension, reimplemented
//! as a transport interposer:
//!
//! * [`DocsMediator`] — wraps the Google-Documents-style service. Full
//!   saves (`docContents`) are encrypted wholesale; incremental saves
//!   (`delta`) are transformed into ciphertext deltas (Figure 2's
//!   `transform_delta`); *all unrecognized requests are dropped*; Ack
//!   responses are rewritten with an empty `contentFromServer` and a zero
//!   hash, exactly as §IV-A describes (and with the same §VII-A
//!   collaborative-editing consequences).
//! * [`BespinMediator`] / [`BuzzwordMediator`] — the whole-file wrappers
//!   for the other two services (§III).
//! * [`Keyring`] — per-document passwords and key derivation (§IV-C).
//! * [`countermeasures`] — the §VI-B covert-channel defences: delta
//!   canonicalization, random request delays, and random body padding.
//!
//! # Example
//!
//! ```
//! use pe_cloud::docs::DocsServer;
//! use pe_extension::{DocsMediator, MediatorConfig};
//! use std::sync::Arc;
//!
//! let server = Arc::new(DocsServer::new());
//! let mut mediator = DocsMediator::new(Arc::clone(&server), MediatorConfig::default());
//! let doc_id = mediator.create_document("hunter2").unwrap();
//! mediator.save_full(&doc_id, "my secret notes").unwrap();
//! // The provider stores only ciphertext:
//! let stored = server.stored_content(&doc_id).unwrap();
//! assert!(!stored.contains("secret"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod countermeasures;
mod docs_mediator;
mod error;
mod keyring;
mod simple;
pub mod stego;

pub use docs_mediator::{DocsMediator, Mediated, Outcome};
pub use error::ExtensionError;
pub use keyring::Keyring;
pub use simple::{BespinMediator, BuzzwordMediator};

use pe_core::SchemeParams;

/// Configuration of the mediator: the encryption scheme and which §VI-B
/// covert-channel countermeasures are active.
#[derive(Debug, Clone, Copy)]
pub struct MediatorConfig {
    /// Encryption scheme parameters for newly created documents.
    pub params: SchemeParams,
    /// Rewrite outgoing deltas into canonical form (defeats edit-sequence
    /// covert channels such as the `Ord(q)` encoding).
    pub canonicalize_deltas: bool,
    /// Append a random-length ignored field to update bodies (blunts
    /// request-length covert channels).
    pub pad_updates: bool,
    /// Suggest a random delay before each outgoing update (blunts timing
    /// covert channels). The delay is *returned*, not slept, so harnesses
    /// stay deterministic.
    pub random_delay: bool,
    /// PBKDF2 iterations for password-derived keys.
    pub kdf_iterations: u32,
}

impl Default for MediatorConfig {
    fn default() -> MediatorConfig {
        MediatorConfig {
            params: SchemeParams::recb(8),
            canonicalize_deltas: true,
            pad_updates: false,
            random_delay: false,
            kdf_iterations: 1_000,
        }
    }
}

impl MediatorConfig {
    /// Confidentiality-only configuration with the given block size.
    pub fn recb(max_block: usize) -> MediatorConfig {
        MediatorConfig { params: SchemeParams::recb(max_block), ..MediatorConfig::default() }
    }

    /// Confidentiality-and-integrity configuration with the given block
    /// size (`1..=7`).
    pub fn rpc(max_block: usize) -> MediatorConfig {
        MediatorConfig { params: SchemeParams::rpc(max_block), ..MediatorConfig::default() }
    }

    /// Enables every covert-channel countermeasure.
    pub fn hardened(self) -> MediatorConfig {
        MediatorConfig {
            canonicalize_deltas: true,
            pad_updates: true,
            random_delay: true,
            ..self
        }
    }
}
