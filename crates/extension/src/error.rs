//! Error type for the mediator layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the mediator.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExtensionError {
    /// No password registered for the document.
    NoPassword {
        /// The document id the operation referred to.
        doc_id: String,
    },
    /// The server answered with a non-success status.
    ServerError {
        /// HTTP-style status code.
        status: u16,
        /// Server-provided message.
        message: String,
    },
    /// A server response could not be parsed.
    BadResponse {
        /// Human-readable description.
        detail: String,
    },
    /// The cryptographic layer failed (wrong password, tampered
    /// ciphertext, out-of-bounds edit …).
    Crypto(pe_core::CoreError),
    /// The delta protocol layer failed.
    Delta(pe_delta::DeltaError),
    /// The multi-tenant key directory refused the operation.
    Tenant(pe_tenant::TenantError),
    /// A tenant operation was attempted with no logged-in user.
    NoSession,
}

impl fmt::Display for ExtensionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtensionError::NoPassword { doc_id } => {
                write!(f, "no password registered for document {doc_id}")
            }
            ExtensionError::ServerError { status, message } => {
                write!(f, "server error {status}: {message}")
            }
            ExtensionError::BadResponse { detail } => {
                write!(f, "unparseable server response: {detail}")
            }
            ExtensionError::Crypto(e) => write!(f, "crypto layer: {e}"),
            ExtensionError::Delta(e) => write!(f, "delta layer: {e}"),
            ExtensionError::Tenant(e) => write!(f, "tenant directory: {e}"),
            ExtensionError::NoSession => write!(f, "no tenant user is logged in"),
        }
    }
}

impl Error for ExtensionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExtensionError::Crypto(e) => Some(e),
            ExtensionError::Delta(e) => Some(e),
            ExtensionError::Tenant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pe_core::CoreError> for ExtensionError {
    fn from(e: pe_core::CoreError) -> ExtensionError {
        ExtensionError::Crypto(e)
    }
}

impl From<pe_delta::DeltaError> for ExtensionError {
    fn from(e: pe_delta::DeltaError) -> ExtensionError {
        ExtensionError::Delta(e)
    }
}

impl From<pe_tenant::TenantError> for ExtensionError {
    fn from(e: pe_tenant::TenantError) -> ExtensionError {
        ExtensionError::Tenant(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExtensionError::NoPassword { doc_id: "doc1".into() };
        assert!(e.to_string().contains("doc1"));
        let e: ExtensionError = pe_delta::DeltaError::EmptyToken.into();
        assert!(e.source().is_some());
        let e: ExtensionError =
            pe_core::CoreError::BadParams { detail: "b".into() }.into();
        assert!(e.source().is_some());
        let e = ExtensionError::ServerError { status: 413, message: "too big".into() };
        assert!(e.to_string().contains("413"));
    }
}
