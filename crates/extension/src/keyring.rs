//! Per-document credentials and key derivation (§IV-C).
//!
//! "Users control the security of their data using per-document
//! passwords." The keyring holds two kinds of credential:
//!
//! * **Passwords** — kept as [`SecretString`]s (wiped on forget/drop, never
//!   printed). A password must be retained in memory because revision
//!   history can carry preambles with *older* salts (from before a
//!   password rotation), and each salt needs a fresh derivation.
//! * **Derived [`DocumentKey`]s** — registered directly by the tenant path
//!   ([`DocsMediator::tenant_login`](crate::DocsMediator)), where no
//!   per-document password exists at all: the key comes from unwrapping
//!   the document's data key. `DocumentKey` wipes its own material on
//!   drop, so forgetting an entry (or dropping the keyring) erases it.
//!
//! Either credential satisfies [`Keyring::has`]; key lookups prefer a
//! registered key whose salt matches, then fall back to deriving from the
//! password.

use std::collections::HashMap;

use pe_core::DocumentKey;
use pe_crypto::drbg::NonceSource;
use pe_crypto::zeroize::SecretString;

/// Registered per-document credentials (passwords and derived keys).
#[derive(Default)]
pub struct Keyring {
    passwords: HashMap<String, SecretString>,
    keys: HashMap<String, Vec<DocumentKey>>,
    /// Memoized password-derived keys by (document, salt). The PBKDF2
    /// stretch is deliberately slow; paying it once per salt instead of
    /// once per decrypt is what keeps change-stream fan-out (one decrypt
    /// per pushed change) interactive. Holding the derived key is no new
    /// exposure — the password it derives from sits in the same struct —
    /// and entries are dropped (wiping their material) on
    /// [`Keyring::forget`] and on password rotation. Interior mutability
    /// so shared readers ([`&Keyring`]) can still fill the cache.
    derived: std::sync::Mutex<HashMap<(String, [u8; 16]), DocumentKey>>,
    kdf_iterations: u32,
}

impl std::fmt::Debug for Keyring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print passwords or keys.
        f.debug_struct("Keyring")
            .field("passwords", &self.passwords.len())
            .field("keys", &self.keys.len())
            .finish_non_exhaustive()
    }
}

impl Keyring {
    /// Creates an empty keyring using the given PBKDF2 iteration count.
    pub fn new(kdf_iterations: u32) -> Keyring {
        Keyring {
            passwords: HashMap::new(),
            keys: HashMap::new(),
            derived: std::sync::Mutex::new(HashMap::new()),
            kdf_iterations,
        }
    }

    fn derived_cache(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<(String, [u8; 16]), DocumentKey>> {
        self.derived.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Registers (or replaces) the password for a document. Any directly
    /// registered keys for the document are dropped (and thereby wiped):
    /// after a rotation the old key must not shadow the new password.
    pub fn register(&mut self, doc_id: &str, password: &str) {
        self.keys.remove(doc_id);
        self.derived_cache().retain(|(cached_doc, _), _| cached_doc != doc_id);
        self.passwords.insert(doc_id.to_string(), SecretString::from(password));
    }

    /// Registers a derived key directly (the tenant path, where document
    /// keys are unwrapped rather than password-derived). A key with the
    /// same salt is replaced; keys with other salts are kept so older
    /// revisions stay readable.
    pub fn register_key(&mut self, doc_id: &str, key: DocumentKey) {
        let keys = self.keys.entry(doc_id.to_string()).or_default();
        keys.retain(|k| k.salt() != key.salt());
        keys.push(key);
    }

    /// Removes every credential for a document (e.g. when the user closes
    /// it). Dropped passwords and keys wipe their own material.
    pub fn forget(&mut self, doc_id: &str) {
        self.passwords.remove(doc_id);
        self.keys.remove(doc_id);
        self.derived_cache().retain(|(cached_doc, _), _| cached_doc != doc_id);
    }

    /// Whether any credential is registered for the document.
    pub fn has(&self, doc_id: &str) -> bool {
        self.passwords.contains_key(doc_id) || self.keys.contains_key(doc_id)
    }

    /// Derives a fresh key (new random salt) for a newly created document,
    /// or returns the registered key when the tenant path installed one.
    pub fn derive_new<R: NonceSource>(&self, doc_id: &str, rng: &mut R) -> Option<DocumentKey> {
        if let Some(key) = self.keys.get(doc_id).and_then(|keys| keys.last()) {
            return Some(key.clone());
        }
        let password = self.passwords.get(doc_id)?;
        Some(DocumentKey::generate(password.expose(), self.kdf_iterations, rng))
    }

    /// Derives the key for an existing document given the salt from its
    /// preamble: a registered key with that salt wins, else the password
    /// is stretched over the salt.
    pub fn derive_existing(&self, doc_id: &str, salt: &[u8; 16]) -> Option<DocumentKey> {
        if let Some(key) =
            self.keys.get(doc_id).and_then(|keys| keys.iter().find(|k| k.salt() == salt))
        {
            return Some(key.clone());
        }
        let cache_key = (doc_id.to_string(), *salt);
        if let Some(key) = self.derived_cache().get(&cache_key) {
            return Some(key.clone());
        }
        let password = self.passwords.get(doc_id)?;
        let key = DocumentKey::derive(password.expose(), salt, self.kdf_iterations);
        self.derived_cache().insert(cache_key, key.clone());
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_crypto::CtrDrbg;

    #[test]
    fn register_and_derive() {
        let mut keyring = Keyring::new(100);
        keyring.register("doc1", "pw");
        assert!(keyring.has("doc1"));
        let mut rng = CtrDrbg::from_seed(1);
        let key = keyring.derive_new("doc1", &mut rng).unwrap();
        let again = keyring.derive_existing("doc1", key.salt()).unwrap();
        assert_eq!(key.salt(), again.salt());
        assert!(keyring.derive_new("doc2", &mut rng).is_none());
    }

    #[test]
    fn forget_removes() {
        let mut keyring = Keyring::new(100);
        keyring.register("doc1", "pw");
        keyring.forget("doc1");
        assert!(!keyring.has("doc1"));
    }

    #[test]
    fn registered_key_wins_and_survives_by_salt() {
        let mut keyring = Keyring::new(100);
        let mut rng = CtrDrbg::from_seed(2);
        let key = DocumentKey::generate("source", 100, &mut rng);
        keyring.register_key("doc1", key.clone());
        assert!(keyring.has("doc1"));
        // derive_new returns the registered key, no password needed.
        let got = keyring.derive_new("doc1", &mut rng).unwrap();
        assert_eq!(got.salt(), key.salt());
        assert_eq!(got.mac_key(), key.mac_key());
        // Exact-salt lookup works; unknown salts find nothing.
        assert!(keyring.derive_existing("doc1", key.salt()).is_some());
        assert!(keyring.derive_existing("doc1", &[0xEE; 16]).is_none());
        // Registering a password clears the key (rotation semantics).
        keyring.register("doc1", "new-pw");
        let derived = keyring.derive_existing("doc1", key.salt()).unwrap();
        assert_ne!(derived.mac_key(), key.mac_key());
    }

    #[test]
    fn multiple_salts_coexist() {
        let mut keyring = Keyring::new(100);
        let mut rng = CtrDrbg::from_seed(3);
        let old = DocumentKey::generate("a", 100, &mut rng);
        let new = DocumentKey::generate("b", 100, &mut rng);
        keyring.register_key("doc1", old.clone());
        keyring.register_key("doc1", new.clone());
        assert_eq!(keyring.derive_existing("doc1", old.salt()).unwrap().mac_key(), old.mac_key());
        assert_eq!(keyring.derive_existing("doc1", new.salt()).unwrap().mac_key(), new.mac_key());
        // Latest registration is what new documents use.
        assert_eq!(keyring.derive_new("doc1", &mut rng).unwrap().salt(), new.salt());
    }

    #[test]
    fn rotation_invalidates_the_derived_key_cache() {
        let mut keyring = Keyring::new(100);
        keyring.register("doc1", "old-pw");
        let salt = [7u8; 16];
        let old = keyring.derive_existing("doc1", &salt).unwrap();
        // Warm cache returns the same material.
        assert_eq!(keyring.derive_existing("doc1", &salt).unwrap().mac_key(), old.mac_key());
        // Rotating the password must not serve the stale cached key.
        keyring.register("doc1", "new-pw");
        assert_ne!(keyring.derive_existing("doc1", &salt).unwrap().mac_key(), old.mac_key());
        // Forget drops the cache too: no credential, no key.
        keyring.forget("doc1");
        assert!(keyring.derive_existing("doc1", &salt).is_none());
    }

    #[test]
    fn debug_hides_passwords() {
        let mut keyring = Keyring::new(100);
        keyring.register("doc1", "super-secret-password");
        let debug = format!("{keyring:?}");
        assert!(!debug.contains("super-secret-password"));
    }
}
