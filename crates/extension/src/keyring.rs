//! Per-document passwords and key derivation (§IV-C).
//!
//! "Users control the security of their data using per-document
//! passwords." The keyring stores passwords registered by the user and
//! derives [`DocumentKey`]s: with a fresh random salt when creating a
//! document, or with the salt found in an existing document's preamble
//! when opening one.

use std::collections::HashMap;

use pe_core::DocumentKey;
use pe_crypto::drbg::NonceSource;

/// Registered per-document passwords.
#[derive(Default)]
pub struct Keyring {
    passwords: HashMap<String, String>,
    kdf_iterations: u32,
}

impl std::fmt::Debug for Keyring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print passwords.
        f.debug_struct("Keyring").field("documents", &self.passwords.len()).finish_non_exhaustive()
    }
}

impl Keyring {
    /// Creates an empty keyring using the given PBKDF2 iteration count.
    pub fn new(kdf_iterations: u32) -> Keyring {
        Keyring { passwords: HashMap::new(), kdf_iterations }
    }

    /// Registers (or replaces) the password for a document.
    pub fn register(&mut self, doc_id: &str, password: &str) {
        self.passwords.insert(doc_id.to_string(), password.to_string());
    }

    /// Removes a password (e.g. when the user closes the document).
    pub fn forget(&mut self, doc_id: &str) {
        self.passwords.remove(doc_id);
    }

    /// Whether a password is registered for the document.
    pub fn has(&self, doc_id: &str) -> bool {
        self.passwords.contains_key(doc_id)
    }

    /// Derives a fresh key (new random salt) for a newly created document.
    pub fn derive_new<R: NonceSource>(&self, doc_id: &str, rng: &mut R) -> Option<DocumentKey> {
        let password = self.passwords.get(doc_id)?;
        Some(DocumentKey::generate(password, self.kdf_iterations, rng))
    }

    /// Derives the key for an existing document given the salt from its
    /// preamble.
    pub fn derive_existing(&self, doc_id: &str, salt: &[u8; 16]) -> Option<DocumentKey> {
        let password = self.passwords.get(doc_id)?;
        Some(DocumentKey::derive(password, salt, self.kdf_iterations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_crypto::CtrDrbg;

    #[test]
    fn register_and_derive() {
        let mut keyring = Keyring::new(100);
        keyring.register("doc1", "pw");
        assert!(keyring.has("doc1"));
        let mut rng = CtrDrbg::from_seed(1);
        let key = keyring.derive_new("doc1", &mut rng).unwrap();
        let again = keyring.derive_existing("doc1", key.salt()).unwrap();
        assert_eq!(key.salt(), again.salt());
        assert!(keyring.derive_new("doc2", &mut rng).is_none());
    }

    #[test]
    fn forget_removes() {
        let mut keyring = Keyring::new(100);
        keyring.register("doc1", "pw");
        keyring.forget("doc1");
        assert!(!keyring.has("doc1"));
    }

    #[test]
    fn debug_hides_passwords() {
        let mut keyring = Keyring::new(100);
        keyring.register("doc1", "super-secret-password");
        let debug = format!("{keyring:?}");
        assert!(!debug.contains("super-secret-password"));
    }
}
