//! Steganographic cloaking of ciphertext documents.
//!
//! §VI of the paper: "The server could recognize the use of encryption
//! and refuse to store any content that appears to be encrypted. To cope
//! with this situation, our tool could be extended using existing results
//! in stenography to make it difficult for the server (to) identify
//! encrypted documents." The paper left this as future work; this module
//! implements the simplest such extension: a **word-substitution code**
//! that turns a serialized ciphertext document into innocuous-looking
//! English prose and back.
//!
//! # How it works
//!
//! The serialized ciphertext (ASCII) is re-encoded in Base32 and every
//! Base32 symbol maps to one word from a fixed 32-word vocabulary chosen
//! from the cloud editor's own spell-check dictionary, so the cloaked
//! document *passes spell checking*. Light sentence dressing
//! (capitalization and periods at deterministic intervals) makes the
//! result look like prose rather than a word soup. Decoding strips the
//! dressing and inverts the map; the round-trip is exact.
//!
//! # Cost
//!
//! One ciphertext character becomes ~1.6 Base32 symbols becomes ~1.6
//! words of ~5.4 characters plus separators — roughly **10×** expansion
//! over the (already expanded) ciphertext. Cloaking is therefore a
//! whole-document trade: with it, incremental updates are no longer
//! practical (word positions shift freely), so a cloaking deployment
//! falls back to CoClo-style full saves. This is exactly the trade-off
//! the paper anticipated ("it may be impractical for realistic
//! applications") — implemented here so it can be measured rather than
//! speculated about.
//!
//! # Example
//!
//! ```
//! use pe_extension::stego;
//!
//! let ciphertext = "PE1;R;b8;SALTSALTSALTSALTSALTSALTSA;1ABCD";
//! let prose = stego::cloak(ciphertext);
//! assert!(!prose.contains("PE1"), "no ciphertext markers survive");
//! assert_eq!(stego::uncloak(&prose)?, ciphertext);
//! # Ok::<(), pe_extension::stego::StegoError>(())
//! ```

use std::collections::HashMap;
use std::sync::OnceLock;

use pe_crypto::base32;

/// The 32-word vocabulary, one word per Base32 symbol. Every word is in
/// the simulated server's spell-check dictionary and none is a prefix of
/// another, so decoding is unambiguous.
const VOCABULARY: [&str; 32] = [
    "the", "and", "for", "are", "but", "not", "you", "all", "can", "her", "was", "one", "our",
    "out", "day", "get", "has", "him", "how", "man", "new", "now", "old", "see", "two", "way",
    "who", "its", "did", "yes", "they", "with",
];

/// Words per sentence before a period is inserted (deterministic
/// dressing).
const SENTENCE_WORDS: usize = 9;

/// Errors from uncloaking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StegoError {
    /// A token was not in the vocabulary.
    UnknownWord {
        /// The offending token.
        word: String,
    },
    /// The recovered symbol stream was not a valid encoding.
    CorruptEncoding,
}

impl std::fmt::Display for StegoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StegoError::UnknownWord { word } => write!(f, "unknown cloak word {word:?}"),
            StegoError::CorruptEncoding => write!(f, "corrupt cloaked encoding"),
        }
    }
}

impl std::error::Error for StegoError {}

/// Base32 symbol → word index lookup, built once.
fn reverse_map() -> &'static HashMap<&'static str, u8> {
    static MAP: OnceLock<HashMap<&'static str, u8>> = OnceLock::new();
    MAP.get_or_init(|| {
        VOCABULARY.iter().enumerate().map(|(i, &w)| (w, i as u8)).collect()
    })
}

const BASE32_ALPHABET: &[u8; 32] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";

/// Cloaks a serialized ciphertext document as innocuous prose.
pub fn cloak(serialized: &str) -> String {
    let symbols = base32::encode_unpadded(serialized.as_bytes());
    let mut out = String::with_capacity(symbols.len() * 5);
    for (i, symbol) in symbols.bytes().enumerate() {
        let index = BASE32_ALPHABET.iter().position(|&c| c == symbol).expect("valid base32");
        let word = VOCABULARY[index];
        if i % SENTENCE_WORDS == 0 {
            if i > 0 {
                out.push_str(". ");
            }
            // Capitalize the sentence head.
            let mut chars = word.chars();
            if let Some(first) = chars.next() {
                out.push(first.to_ascii_uppercase());
                out.push_str(chars.as_str());
            }
        } else {
            out.push(' ');
            out.push_str(word);
        }
    }
    if !out.is_empty() {
        out.push('.');
    }
    out
}

/// Recovers the serialized ciphertext from cloaked prose.
///
/// # Errors
///
/// Returns [`StegoError::UnknownWord`] for tokens outside the vocabulary
/// and [`StegoError::CorruptEncoding`] if the symbol stream does not
/// decode to valid text.
pub fn uncloak(prose: &str) -> Result<String, StegoError> {
    let map = reverse_map();
    let mut symbols = String::new();
    for token in prose.split(|c: char| c.is_whitespace() || c == '.') {
        if token.is_empty() {
            continue;
        }
        let normalized = token.to_ascii_lowercase();
        let index = map
            .get(normalized.as_str())
            .ok_or_else(|| StegoError::UnknownWord { word: token.to_string() })?;
        symbols.push(BASE32_ALPHABET[*index as usize] as char);
    }
    let bytes = base32::decode_unpadded(&symbols).map_err(|_| StegoError::CorruptEncoding)?;
    String::from_utf8(bytes).map_err(|_| StegoError::CorruptEncoding)
}

/// A crude detector a suspicious server might run: fraction of
/// alphanumeric content that looks like high-entropy Base32 runs.
/// Used in tests to show cloaked documents evade what raw ciphertext
/// trips.
pub fn looks_encrypted(content: &str) -> bool {
    // Raw ciphertext documents are one giant unbroken run of Base32
    // alphabet characters; prose has short words.
    let longest_run = content
        .split(|c: char| !(c.is_ascii_uppercase() || ('2'..='7').contains(&c)))
        .map(str::len)
        .max()
        .unwrap_or(0);
    longest_run >= 20
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let original = "PE1;R;b8;AAAA;1SOMERECORDDATA";
        assert_eq!(uncloak(&cloak(original)).unwrap(), original);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(cloak(""), "");
        assert_eq!(uncloak("").unwrap(), "");
    }

    #[test]
    fn roundtrip_real_ciphertext() {
        use pe_core::{DocumentKey, IncrementalCipherDoc, RecbDocument, SchemeParams};
        use pe_crypto::CtrDrbg;
        let key = DocumentKey::derive("pw", &[1; 16], 100);
        let doc = RecbDocument::create(
            &key,
            SchemeParams::recb(8),
            b"a genuinely secret document body",
            CtrDrbg::from_seed(1),
        )
        .unwrap();
        let wire = doc.serialize();
        let prose = cloak(&wire);
        assert_eq!(uncloak(&prose).unwrap(), wire);
    }

    #[test]
    fn cloaked_text_is_prose_like() {
        let prose = cloak("PE1;R;b8;SOMESALTVALUE;RECORDS");
        // Sentences with capitalization and periods.
        assert!(prose.contains(". "));
        assert!(prose.chars().next().unwrap().is_ascii_uppercase());
        // Every token is a dictionary word.
        for token in prose.split(|c: char| c.is_whitespace() || c == '.') {
            if !token.is_empty() {
                assert!(
                    VOCABULARY.contains(&token.to_ascii_lowercase().as_str()),
                    "non-dictionary token {token:?}"
                );
            }
        }
    }

    #[test]
    fn detector_flags_ciphertext_but_not_cloaked_prose() {
        let ciphertext = format!("PE1;R;b8;{};1{}", "A".repeat(26), "B".repeat(26));
        assert!(looks_encrypted(&ciphertext));
        assert!(!looks_encrypted(&cloak(&ciphertext)));
        assert!(!looks_encrypted("ordinary human sentences look like this one."));
    }

    #[test]
    fn unknown_word_rejected() {
        assert!(matches!(
            uncloak("The zebra and the but"),
            Err(StegoError::UnknownWord { .. })
        ));
    }

    #[test]
    fn vocabulary_is_unambiguous() {
        let unique: std::collections::HashSet<&&str> = VOCABULARY.iter().collect();
        assert_eq!(unique.len(), 32);
    }

    #[test]
    fn expansion_factor_is_as_documented() {
        let original = "X".repeat(1000);
        let prose = cloak(&original);
        let factor = prose.len() as f64 / original.len() as f64;
        assert!(factor > 5.0 && factor < 12.0, "expansion {factor}");
    }
}
