//! Whole-file mediators for the Bespin- and Buzzword-style services.
//!
//! Neither service has an incremental update protocol (§III): Bespin PUTs
//! the whole file, Buzzword POSTs the whole document as XML. "By wrapping
//! the PUT request with code that encrypts all user data, the server only
//! sees encrypted contents" — these mediators are exactly that wrapper.

use pe_cloud::buzzword::map_text_runs;
use pe_cloud::{CloudService, Request};
use pe_core::wire::Preamble;
use pe_core::{IncrementalCipherDoc, RecbDocument};
use pe_crypto::drbg::NonceSource;
use pe_crypto::{CtrDrbg, SystemRandom};

use crate::error::ExtensionError;
use crate::keyring::Keyring;
use crate::MediatorConfig;

/// Shared helper: encrypt a whole text as one rECB document string.
fn encrypt_whole(
    keyring: &Keyring,
    id: &str,
    text: &str,
    config: &MediatorConfig,
    rng: &mut Box<dyn NonceSource + Send>,
) -> Result<String, ExtensionError> {
    let mut key_rng = fork(rng);
    let key = keyring
        .derive_new(id, &mut key_rng)
        .ok_or_else(|| ExtensionError::NoPassword { doc_id: id.to_string() })?;
    let doc = RecbDocument::create(&key, config.params, text.as_bytes(), fork(rng))?;
    Ok(doc.serialize())
}

/// Decrypt a whole rECB document string.
fn decrypt_whole(
    keyring: &Keyring,
    id: &str,
    ciphertext: &str,
    rng: &mut Box<dyn NonceSource + Send>,
) -> Result<String, ExtensionError> {
    let preamble = Preamble::parse(ciphertext)?;
    let key = keyring
        .derive_existing(id, &preamble.salt)
        .ok_or_else(|| ExtensionError::NoPassword { doc_id: id.to_string() })?;
    let doc = RecbDocument::open(&key, ciphertext, fork(rng))?;
    let plaintext = doc.decrypt()?;
    String::from_utf8(plaintext)
        .map_err(|_| ExtensionError::BadResponse { detail: "file is not text".into() })
}

fn fork(rng: &mut Box<dyn NonceSource + Send>) -> CtrDrbg {
    let mut seed = [0u8; 16];
    rng.fill_bytes(&mut seed);
    CtrDrbg::new(seed)
}

/// Privacy wrapper for the Bespin-style file store.
///
/// # Example
///
/// ```
/// use pe_cloud::bespin::BespinServer;
/// use pe_extension::{BespinMediator, MediatorConfig};
/// use std::sync::Arc;
///
/// let server = Arc::new(BespinServer::new());
/// let mut mediator = BespinMediator::new(Arc::clone(&server), MediatorConfig::default());
/// mediator.register_password("src/main.rs", "pw");
/// mediator.put_file("src/main.rs", "fn main() {}").unwrap();
/// assert!(!String::from_utf8_lossy(&server.stored("src/main.rs").unwrap()).contains("main"));
/// assert_eq!(mediator.get_file("src/main.rs").unwrap(), "fn main() {}");
/// ```
pub struct BespinMediator<S> {
    server: S,
    config: MediatorConfig,
    keyring: Keyring,
    rng: Box<dyn NonceSource + Send>,
}

impl<S: CloudService> BespinMediator<S> {
    /// Creates a mediator in front of `server`.
    pub fn new(server: S, config: MediatorConfig) -> BespinMediator<S> {
        BespinMediator::with_rng(server, config, SystemRandom::new())
    }

    /// Deterministic construction for tests/benchmarks.
    pub fn with_rng<R>(server: S, config: MediatorConfig, rng: R) -> BespinMediator<S>
    where
        R: NonceSource + Send + 'static,
    {
        BespinMediator {
            server,
            config,
            keyring: Keyring::new(config.kdf_iterations),
            rng: Box::new(rng),
        }
    }

    /// Registers the password protecting a file path.
    pub fn register_password(&mut self, path: &str, password: &str) {
        self.keyring.register(path, password);
    }

    /// Saves a file: encrypts the content and PUTs the ciphertext.
    ///
    /// # Errors
    ///
    /// Fails without a registered password or on server error.
    pub fn put_file(&mut self, path: &str, content: &str) -> Result<(), ExtensionError> {
        let ciphertext =
            encrypt_whole(&self.keyring, path, content, &self.config, &mut self.rng)?;
        let request = Request::put(&format!("/file/at/{path}"), &[], ciphertext);
        let response = self.server.handle(&request);
        if response.is_success() {
            Ok(())
        } else {
            Err(ExtensionError::ServerError {
                status: response.status,
                message: response.body_text().unwrap_or("").to_string(),
            })
        }
    }

    /// Loads a file: GETs the ciphertext and decrypts it.
    ///
    /// # Errors
    ///
    /// Fails without a password, on server error, or wrong password.
    pub fn get_file(&mut self, path: &str) -> Result<String, ExtensionError> {
        let response = self.server.handle(&Request::get(&format!("/file/at/{path}"), &[]));
        if !response.is_success() {
            return Err(ExtensionError::ServerError {
                status: response.status,
                message: response.body_text().unwrap_or("").to_string(),
            });
        }
        let body = response.body_text().ok_or_else(|| ExtensionError::BadResponse {
            detail: "file body is not text".into(),
        })?;
        decrypt_whole(&self.keyring, path, body, &mut self.rng)
    }
}

/// Privacy wrapper for the Buzzword-style XML service: encrypts only the
/// text inside `<textRun>` tags (§III "Buzzword").
///
/// # Example
///
/// ```
/// use pe_cloud::buzzword::BuzzwordServer;
/// use pe_extension::{BuzzwordMediator, MediatorConfig};
/// use std::sync::Arc;
///
/// let server = Arc::new(BuzzwordServer::new());
/// let mut mediator = BuzzwordMediator::new(Arc::clone(&server), MediatorConfig::default());
/// mediator.register_password("d1", "pw");
/// mediator.post_document("d1", "<doc><textRun>secret</textRun></doc>").unwrap();
/// assert!(!server.stored("d1").unwrap().contains("secret"));
/// ```
pub struct BuzzwordMediator<S> {
    server: S,
    config: MediatorConfig,
    keyring: Keyring,
    rng: Box<dyn NonceSource + Send>,
}

impl<S: CloudService> BuzzwordMediator<S> {
    /// Creates a mediator in front of `server`.
    pub fn new(server: S, config: MediatorConfig) -> BuzzwordMediator<S> {
        BuzzwordMediator::with_rng(server, config, SystemRandom::new())
    }

    /// Deterministic construction for tests/benchmarks.
    pub fn with_rng<R>(server: S, config: MediatorConfig, rng: R) -> BuzzwordMediator<S>
    where
        R: NonceSource + Send + 'static,
    {
        BuzzwordMediator {
            server,
            config,
            keyring: Keyring::new(config.kdf_iterations),
            rng: Box::new(rng),
        }
    }

    /// Registers the password protecting a document.
    pub fn register_password(&mut self, doc_id: &str, password: &str) {
        self.keyring.register(doc_id, password);
    }

    /// Saves a document: every `<textRun>` body is encrypted; markup is
    /// left intact.
    ///
    /// # Errors
    ///
    /// Fails without a password or on server error.
    pub fn post_document(&mut self, doc_id: &str, xml: &str) -> Result<(), ExtensionError> {
        let mut failure = None;
        let rewritten = map_text_runs(xml, |run| {
            match encrypt_whole(&self.keyring, doc_id, run, &self.config, &mut self.rng)
            {
                Ok(ciphertext) => ciphertext,
                Err(e) => {
                    failure.get_or_insert(e);
                    String::new()
                }
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        let request = Request::post(&format!("/buzzword/doc/{doc_id}"), &[], rewritten);
        let response = self.server.handle(&request);
        if response.is_success() {
            Ok(())
        } else {
            Err(ExtensionError::ServerError {
                status: response.status,
                message: response.body_text().unwrap_or("").to_string(),
            })
        }
    }

    /// Loads a document, decrypting every `<textRun>` body.
    ///
    /// # Errors
    ///
    /// Fails without a password, on server error, or wrong password.
    pub fn get_document(&mut self, doc_id: &str) -> Result<String, ExtensionError> {
        let response = self.server.handle(&Request::get(&format!("/buzzword/doc/{doc_id}"), &[]));
        if !response.is_success() {
            return Err(ExtensionError::ServerError {
                status: response.status,
                message: response.body_text().unwrap_or("").to_string(),
            });
        }
        let body = response
            .body_text()
            .ok_or_else(|| ExtensionError::BadResponse { detail: "body is not text".into() })?
            .to_string();
        let mut failure = None;
        let rewritten = map_text_runs(&body, |run| {
            match decrypt_whole(&self.keyring, doc_id, run, &mut self.rng) {
                Ok(plaintext) => plaintext,
                Err(e) => {
                    failure.get_or_insert(e);
                    String::new()
                }
            }
        });
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(rewritten)
    }
}
