//! Covert-channel countermeasures (§VI-B).
//!
//! Against a *malicious client* the mediator cannot prevent all leakage,
//! but it can limit covert-channel bandwidth:
//!
//! * **Delta canonicalization** — "many different sequences of delta
//!   commands could produce the same editing outcome, so the malicious
//!   client could select different sequences to encode additional
//!   information". Rewriting every outgoing delta into the canonical
//!   minimal form (the diff of the two document versions) destroys such
//!   encodings; see [`pe_delta::Delta::canonicalize`].
//! * **Random delays** — "we could add random delays … to every outgoing
//!   update request" to blunt timing channels. [`suggested_delay`]
//!   produces the delay; callers decide whether to sleep (benchmarks
//!   account for it without sleeping).
//! * **Random padding** — "could randomly pad the content … before
//!   encryption" to blunt length channels. [`padding_field`] produces an
//!   ignored form field of random length appended to update bodies.

use std::time::Duration;

use pe_crypto::base32;
use pe_crypto::drbg::NonceSource;

/// Maximum random delay added to an outgoing update.
pub const MAX_DELAY: Duration = Duration::from_millis(300);

/// Maximum padding bytes appended to an update body.
pub const MAX_PADDING: usize = 64;

/// Draws a random delay in `0..=MAX_DELAY` for an outgoing update.
pub fn suggested_delay<R: NonceSource>(rng: &mut R) -> Duration {
    Duration::from_millis(rng.next_below(MAX_DELAY.as_millis() as u64 + 1))
}

/// Draws a random ignored form field (`("pad", <base32 junk>)`) whose
/// encoded length varies, so request sizes stop being a precise function
/// of the plaintext edit.
pub fn padding_field<R: NonceSource>(rng: &mut R) -> (String, String) {
    let len = rng.next_below(MAX_PADDING as u64 + 1) as usize;
    let mut junk = vec![0u8; len];
    rng.fill_bytes(&mut junk);
    ("pad".to_string(), base32::encode_unpadded(&junk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_crypto::CtrDrbg;

    #[test]
    fn delays_are_bounded() {
        let mut rng = CtrDrbg::from_seed(1);
        for _ in 0..200 {
            assert!(suggested_delay(&mut rng) <= MAX_DELAY);
        }
    }

    #[test]
    fn delays_vary() {
        let mut rng = CtrDrbg::from_seed(2);
        let delays: Vec<Duration> = (0..20).map(|_| suggested_delay(&mut rng)).collect();
        assert!(delays.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn padding_lengths_vary_and_are_bounded() {
        let mut rng = CtrDrbg::from_seed(3);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..100 {
            let (key, value) = padding_field(&mut rng);
            assert_eq!(key, "pad");
            assert!(value.len() <= base32::encoded_len(MAX_PADDING));
            lens.insert(value.len());
        }
        assert!(lens.len() > 5, "padding lengths should vary: {lens:?}");
    }
}
