//! The Google-Documents mediator: Figure 2's `onModifyRequest`, in Rust.

use std::collections::HashMap;
use std::time::Duration;

use pe_cloud::{CloudService, Method, Request, Response};
use pe_core::wire::Preamble;
use pe_core::{
    DeltaTransformer, DocumentKey, IncrementalCipherDoc, Mode, RecbDocument, RpcDocument,
};
use pe_crypto::drbg::NonceSource;
use pe_crypto::form;
use pe_crypto::sha256::Sha256;
use pe_crypto::{hex, CtrDrbg, SystemRandom};
use pe_delta::{diff, Delta};
use pe_tenant::{ServiceRecords, Session, TenantDirectory};

use crate::countermeasures;
use crate::error::ExtensionError;
use crate::keyring::Keyring;
use crate::MediatorConfig;

/// What the mediator did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Forwarded unchanged (no document content involved).
    PassedThrough,
    /// Document content was encrypted before forwarding.
    Encrypted,
    /// Server content was decrypted in the response.
    Decrypted,
    /// The request was dropped; it never reached the server.
    Blocked,
}

/// The mediator's result for one request.
#[derive(Debug, Clone)]
pub struct Mediated {
    /// The (possibly rewritten) response the client sees.
    pub response: Response,
    /// What happened to the request.
    pub outcome: Outcome,
    /// Delay the random-delay countermeasure asks the caller to add
    /// before the request is considered sent (zero when disabled).
    pub suggested_delay: Duration,
}

/// Per-document cryptographic state held by the extension (the paper: the
/// `enc_scheme` object "maintains a copy of the state of the ciphertext
/// document which is needed to transform the delta").
struct DocState {
    transformer: DeltaTransformer<Box<dyn IncrementalCipherDoc + Send>>,
    /// Plaintext mirror; used for delta canonicalization and response
    /// rewriting.
    plaintext: String,
    /// Whether the server currently holds our ciphertext (the first save
    /// of a session must be a full `docContents` save).
    synced: bool,
    /// Server version the mirror corresponds to, when known. Attached to
    /// delta saves as the `baseVersion` precondition: the ciphertext
    /// delta was computed against exactly this version of the server
    /// copy, so the server must reject it (409) if a collaborator's save
    /// landed in between — a stale ciphertext delta that still happens to
    /// *apply* would silently destroy the concurrent change.
    version: Option<u64>,
}

/// The privacy mediator for the Google-Documents-style service.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct DocsMediator<S> {
    server: S,
    config: MediatorConfig,
    keyring: Keyring,
    docs: HashMap<String, DocState>,
    /// Logged-in tenant user, when the multi-tenant key path is in use.
    tenant: Option<Session>,
    rng: Box<dyn NonceSource + Send>,
}

impl<S> std::fmt::Debug for DocsMediator<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocsMediator")
            .field("documents", &self.docs.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<S: CloudService> DocsMediator<S> {
    /// Creates a mediator in front of `server` using system randomness.
    pub fn new(server: S, config: MediatorConfig) -> DocsMediator<S> {
        DocsMediator::with_rng(server, config, SystemRandom::new())
    }

    /// Creates a mediator with an explicit nonce source (deterministic
    /// tests and benchmarks).
    pub fn with_rng<R>(server: S, config: MediatorConfig, rng: R) -> DocsMediator<S>
    where
        R: NonceSource + Send + 'static,
    {
        DocsMediator {
            server,
            config,
            keyring: Keyring::new(config.kdf_iterations),
            docs: HashMap::new(),
            tenant: None,
            rng: Box::new(rng),
        }
    }

    /// Registers the user's password for a document (the paper's password
    /// dialog).
    pub fn register_password(&mut self, doc_id: &str, password: &str) {
        self.keyring.register(doc_id, password);
    }

    /// The plaintext the extension currently believes the document holds.
    pub fn plaintext(&self, doc_id: &str) -> Option<&str> {
        self.docs.get(doc_id).map(|d| d.plaintext.as_str())
    }

    /// Access to the wrapped server (tests, benchmarks).
    pub fn server(&self) -> &S {
        &self.server
    }

    fn fork_rng(&mut self) -> CtrDrbg {
        let mut seed = [0u8; 16];
        self.rng.fill_bytes(&mut seed);
        CtrDrbg::new(seed)
    }

    fn make_doc(
        &mut self,
        key: &DocumentKey,
        plaintext: &[u8],
    ) -> Result<Box<dyn IncrementalCipherDoc + Send>, ExtensionError> {
        let rng = self.fork_rng();
        let params = self.config.params;
        Ok(match params.mode {
            Mode::Recb => Box::new(RecbDocument::create(key, params, plaintext, rng)?),
            Mode::Rpc => Box::new(RpcDocument::create(key, params, plaintext, rng)?),
        })
    }

    fn open_doc(
        &mut self,
        key: &DocumentKey,
        serialized: &str,
        mode: Mode,
    ) -> Result<Box<dyn IncrementalCipherDoc + Send>, ExtensionError> {
        let rng = self.fork_rng();
        Ok(match mode {
            Mode::Recb => Box::new(RecbDocument::open(key, serialized, rng)?),
            Mode::Rpc => Box::new(RpcDocument::open(key, serialized, rng)?),
        })
    }

    /// Fetches the document's data key from the tenant directory (the
    /// logged-in user must hold a grant), derives the [`DocumentKey`] for
    /// `salt`, and caches it in the keyring. Fails closed when the user
    /// holds no grant — a revoked editor cannot rebuild the key.
    fn tenant_key(&mut self, doc_id: &str, salt: [u8; 16]) -> Result<DocumentKey, ExtensionError> {
        let Some(session) = self.tenant.as_ref() else {
            return Err(ExtensionError::NoPassword { doc_id: doc_id.to_string() });
        };
        let data_key = TenantDirectory::new(ServiceRecords::new(&self.server))
            .data_key(session, doc_id)?;
        let key = data_key.document_key(salt);
        self.keyring.register_key(doc_id, key.clone());
        Ok(key)
    }

    /// Ensures crypto state exists for a registered document, building it
    /// from `server_content` when that holds our ciphertext.
    fn ensure_state(
        &mut self,
        doc_id: &str,
        server_content: Option<&str>,
    ) -> Result<(), ExtensionError> {
        if self.docs.contains_key(doc_id) {
            return Ok(());
        }
        if !self.keyring.has(doc_id) && self.tenant.is_none() {
            return Err(ExtensionError::NoPassword { doc_id: doc_id.to_string() });
        }
        let state = match server_content {
            Some(content) if !content.is_empty() => {
                let preamble = Preamble::parse(content)?;
                let key = match self.keyring.derive_existing(doc_id, &preamble.salt) {
                    Some(key) => key,
                    None => self.tenant_key(doc_id, preamble.salt)?,
                };
                let doc = self.open_doc(&key, content, preamble.mode)?;
                let plaintext = String::from_utf8(doc.decrypt()?).map_err(|_| {
                    ExtensionError::BadResponse { detail: "document is not text".into() }
                })?;
                DocState {
                    transformer: DeltaTransformer::new(doc),
                    plaintext,
                    synced: true,
                    version: None,
                }
            }
            _ => {
                let mut rng = self.fork_rng();
                let key = match self.keyring.derive_new(doc_id, &mut rng) {
                    Some(key) => key,
                    None => {
                        let mut salt = [0u8; 16];
                        rng.fill_bytes(&mut salt);
                        self.tenant_key(doc_id, salt)?
                    }
                };
                let doc = self.make_doc(&key, b"")?;
                DocState {
                    transformer: DeltaTransformer::new(doc),
                    plaintext: String::new(),
                    synced: false,
                    version: None,
                }
            }
        };
        self.docs.insert(doc_id.to_string(), state);
        Ok(())
    }

    /// The Figure-2 interception entry point: every client request goes
    /// through here; the result tells the caller what the client sees.
    ///
    /// # Errors
    ///
    /// Returns an error when cryptographic state is missing or fails
    /// (no password, wrong password, tampered ciphertext). Unknown
    /// requests are not errors — they come back [`Outcome::Blocked`].
    pub fn intercept(&mut self, request: &Request) -> Result<Mediated, ExtensionError> {
        pe_observe::static_counter!("mediator.requests").inc();
        let result = self.intercept_inner(request);
        match &result {
            Ok(mediated) => pe_observe::counter(match mediated.outcome {
                Outcome::PassedThrough => "mediator.outcome.passed_through",
                Outcome::Encrypted => "mediator.outcome.encrypted",
                Outcome::Decrypted => "mediator.outcome.decrypted",
                Outcome::Blocked => "mediator.outcome.blocked",
            })
            .inc(),
            Err(_) => pe_observe::static_counter!("mediator.errors").inc(),
        }
        result
    }

    fn intercept_inner(&mut self, request: &Request) -> Result<Mediated, ExtensionError> {
        match (request.method, request.path.as_str()) {
            (Method::Post, "/Doc") => match request.query_param("cmd") {
                Some("create") => Ok(self.passthrough(request)),
                Some("open") => self.handle_open(request),
                None => self.handle_save(request),
                Some(_) => Ok(self.blocked()),
            },
            (Method::Get, "/Doc/load") => self.handle_load(request),
            (Method::Get, "/Doc/changes") => self.handle_changes(request),
            // Presence is sealed client-side (the live session encrypts
            // editor name and cursor before it ever reaches this layer),
            // so the mediator forwards the opaque blobs unchanged.
            (Method::Post, "/Doc/presence") | (Method::Get, "/Doc/presence") => {
                Ok(self.passthrough(request))
            }
            (Method::Get, "/Doc/revisions") => self.handle_revisions(request),
            // Content-oblivious feature requests: forwarding reveals
            // nothing beyond the stored ciphertext. The features simply
            // stop working (§VII-A).
            (Method::Post, "/spell") | (Method::Post, "/translate") | (Method::Get, "/export") => {
                Ok(self.passthrough(request))
            }
            // Everything else — including /drawing, whose request body
            // carries plaintext primitives — is dropped.
            _ => Ok(self.blocked()),
        }
    }

    fn passthrough(&mut self, request: &Request) -> Mediated {
        Mediated {
            response: self.server.handle(request),
            outcome: Outcome::PassedThrough,
            suggested_delay: Duration::ZERO,
        }
    }

    fn blocked(&self) -> Mediated {
        Mediated {
            response: Response::error(403, "blocked by privacy extension"),
            outcome: Outcome::Blocked,
            suggested_delay: Duration::ZERO,
        }
    }

    fn delay(&mut self) -> Duration {
        if self.config.random_delay {
            countermeasures::suggested_delay(&mut self.rng)
        } else {
            Duration::ZERO
        }
    }

    /// Rewrites an open/load response so the client sees plaintext.
    fn decrypt_content_response(
        &mut self,
        doc_id: &str,
        response: Response,
    ) -> Result<Mediated, ExtensionError> {
        if !response.is_success() {
            return Ok(Mediated {
                response,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            });
        }
        let body = response.body_text().ok_or_else(|| ExtensionError::BadResponse {
            detail: "response body is not text".into(),
        })?;
        let pairs = form::parse_pairs(body).map_err(|e| ExtensionError::BadResponse {
            detail: format!("unparseable response form: {e}"),
        })?;
        let content = form::first_value(&pairs, "content").unwrap_or("");
        if !self.keyring.has(doc_id) && self.tenant.is_none() {
            // No password: the user sees raw ciphertext, as the paper
            // describes for parties without the password.
            return Ok(Mediated {
                response,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            });
        }
        // Rebuild state from the authoritative server copy (it may have
        // been changed by a collaborator).
        self.docs.remove(doc_id);
        {
            let _timed = pe_observe::static_histogram!("mediator.decrypt_ns").span();
            self.ensure_state(doc_id, Some(content))?;
        }
        let version = form::first_value(&pairs, "version").and_then(|v| v.parse().ok());
        if let Some(state) = self.docs.get_mut(doc_id) {
            state.version = version;
        }
        let plaintext = self.docs[doc_id].plaintext.clone();
        let hash = hex::encode(&Sha256::digest(plaintext.as_bytes())[..8]);
        let mut rewritten: Vec<(String, String)> = Vec::new();
        for (k, v) in pairs {
            match k.as_str() {
                "content" => rewritten.push((k, plaintext.clone())),
                "contentHash" => rewritten.push((k, hash.clone())),
                _ => rewritten.push((k, v)),
            }
        }
        Ok(Mediated {
            response: Response::ok(form::encode_pairs(&rewritten)),
            outcome: Outcome::Decrypted,
            suggested_delay: Duration::ZERO,
        })
    }

    fn handle_open(&mut self, request: &Request) -> Result<Mediated, ExtensionError> {
        let doc_id = request.query_param("docID").unwrap_or("").to_string();
        let response = self.server.handle(request);
        self.decrypt_content_response(&doc_id, response)
    }

    fn handle_load(&mut self, request: &Request) -> Result<Mediated, ExtensionError> {
        let doc_id = request.query_param("docID").unwrap_or("").to_string();
        let response = self.server.handle(request);
        self.decrypt_content_response(&doc_id, response)
    }

    /// Revision history: the request is content-oblivious, so it is
    /// forwarded; when the response carries a revision body the mediator
    /// decrypts it (each revision's preamble carries its own salt, so
    /// revisions from before a password rotation decrypt only if the user
    /// still knows that password — see [`Self::change_password`]).
    fn handle_revisions(&mut self, request: &Request) -> Result<Mediated, ExtensionError> {
        let doc_id = request.query_param("docID").unwrap_or("").to_string();
        let response = self.server.handle(request);
        if !response.is_success() {
            return Ok(Mediated {
                response,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            });
        }
        let Some(body) = response.body_text() else {
            return Ok(Mediated {
                response,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            });
        };
        let pairs = form::parse_pairs(body).map_err(|e| ExtensionError::BadResponse {
            detail: format!("revisions response: {e}"),
        })?;
        let Some(content) = form::first_value(&pairs, "content") else {
            // Count-only responses pass through untouched.
            return Ok(Mediated {
                response,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            });
        };
        // Attempt decryption; revisions that predate the current password
        // (or are empty) pass through as stored.
        let decrypted = {
            let _timed = pe_observe::static_histogram!("mediator.decrypt_ns").span();
            Preamble::parse(content).ok().and_then(|preamble| {
                let key = self.keyring.derive_existing(&doc_id, &preamble.salt)?;
                let doc = self.open_doc(&key, content, preamble.mode).ok()?;
                String::from_utf8(doc.decrypt().ok()?).ok()
            })
        };
        match decrypted {
            Some(plaintext) => Ok(Mediated {
                response: Response::ok(form::encode_pairs(&[("content", plaintext.as_str())])),
                outcome: Outcome::Decrypted,
                suggested_delay: Duration::ZERO,
            }),
            None => Ok(Mediated {
                response,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            }),
        }
    }

    /// Translates a `/Doc/changes` answer from the ciphertext stream the
    /// server fans out to the plaintext stream the live session expects.
    ///
    /// The mediator mirrors the server's ciphertext: each foreign
    /// ciphertext delta is applied to the cached ciphertext, the result
    /// is decrypted (MAC-checked), and the *plaintext* delta emitted to
    /// the client is the diff of the two decryptions — so the client's
    /// OT rebase works on exactly the change a plaintext server would
    /// have pushed. Anything that does not line up (no cached state, a
    /// delta that does not apply, a failed integrity check) degrades to
    /// a full-content resync rather than guessing.
    fn handle_changes(&mut self, request: &Request) -> Result<Mediated, ExtensionError> {
        let doc_id = request.query_param("docID").unwrap_or("").to_string();
        let response = self.server.handle(request);
        if !response.is_success() {
            return Ok(Mediated {
                response,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            });
        }
        if !self.keyring.has(&doc_id) && self.tenant.is_none() {
            // Without the password the stream is raw ciphertext, exactly
            // like an unkeyed open/load.
            return Ok(Mediated {
                response,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            });
        }
        let body = response.body_text().ok_or_else(|| ExtensionError::BadResponse {
            detail: "changes response is not text".into(),
        })?;
        let pairs = form::parse_pairs(body).map_err(|e| ExtensionError::BadResponse {
            detail: format!("unparseable changes form: {e}"),
        })?;
        let _timed = pe_observe::static_histogram!("mediator.decrypt_ns").span();
        if form::first_value(&pairs, "resync") == Some("1") {
            let content = form::first_value(&pairs, "content").unwrap_or("").to_string();
            self.docs.remove(&doc_id);
            self.ensure_state(&doc_id, Some(&content))?;
            let seq = form::first_value(&pairs, "seq").and_then(|v| v.parse().ok());
            if let Some(state) = self.docs.get_mut(&doc_id) {
                state.version = seq;
            }
            let plaintext = self.docs[&doc_id].plaintext.clone();
            let hash = hex::encode(&Sha256::digest(plaintext.as_bytes())[..8]);
            let rewritten: Vec<(String, String)> = pairs
                .into_iter()
                .map(|(k, v)| match k.as_str() {
                    "content" => (k, plaintext.clone()),
                    "contentHash" => (k, hash.clone()),
                    _ => (k, v),
                })
                .collect();
            pe_observe::static_counter!("mediator.changes_resyncs").inc();
            return Ok(Mediated {
                response: Response::ok(form::encode_pairs(&rewritten)),
                outcome: Outcome::Decrypted,
                suggested_delay: Duration::ZERO,
            });
        }
        let mut rewritten: Vec<(String, String)> = Vec::with_capacity(pairs.len());
        for (k, v) in &pairs {
            if k != "change" {
                rewritten.push((k.clone(), v.clone()));
                continue;
            }
            match self.translate_change(&doc_id, v) {
                Ok(entry) => rewritten.push((k.clone(), entry)),
                Err(_) => {
                    // Could not track the stream incrementally: degrade
                    // to an authoritative full-content resync.
                    pe_observe::static_counter!("mediator.changes_fallbacks").inc();
                    return self.changes_resync_fallback(&doc_id, &pairs);
                }
            }
        }
        pe_observe::static_counter!("mediator.changes_translated").inc();
        Ok(Mediated {
            response: Response::ok(form::encode_pairs(&rewritten)),
            outcome: Outcome::Decrypted,
            suggested_delay: Duration::ZERO,
        })
    }

    /// Translates one `"{seq}:{kind}:{payload}"` ciphertext stream entry
    /// into its plaintext counterpart, advancing the cached mirror.
    fn translate_change(&mut self, doc_id: &str, entry: &str) -> Result<String, ExtensionError> {
        let mut parts = entry.splitn(3, ':');
        let (seq, kind, payload) = match (parts.next(), parts.next(), parts.next()) {
            (Some(seq), Some(kind), Some(payload)) => (seq, kind, payload),
            _ => {
                return Err(ExtensionError::BadResponse {
                    detail: format!("malformed change entry: {entry}"),
                })
            }
        };
        match kind {
            "full" => {
                // A collaborator's full save: rebuild the mirror from it
                // and hand the client the decrypted content.
                let payload = payload.to_string();
                self.docs.remove(doc_id);
                self.ensure_state(doc_id, Some(&payload))?;
                if let Some(state) = self.docs.get_mut(doc_id) {
                    state.version = seq.parse().ok();
                }
                let plaintext = self.docs[doc_id].plaintext.clone();
                Ok(format!("{seq}:full:{plaintext}"))
            }
            "delta" => {
                let cdelta = Delta::parse(payload)?;
                let (old_plain, new_cipher) = {
                    let state = self.docs.get(doc_id).ok_or_else(|| {
                        ExtensionError::BadResponse {
                            detail: "ciphertext delta without cached state".into(),
                        }
                    })?;
                    let updated =
                        cdelta.apply_bytes(state.transformer.ciphertext().as_bytes())?;
                    let new_cipher = String::from_utf8(updated).map_err(|_| {
                        ExtensionError::BadResponse {
                            detail: "foreign delta produced invalid ciphertext".into(),
                        }
                    })?;
                    (state.plaintext.clone(), new_cipher)
                };
                let preamble = Preamble::parse(&new_cipher)?;
                let key = match self.keyring.derive_existing(doc_id, &preamble.salt) {
                    Some(key) => key,
                    None => self.tenant_key(doc_id, preamble.salt)?,
                };
                let doc = self.open_doc(&key, &new_cipher, preamble.mode)?;
                let new_plain = String::from_utf8(doc.decrypt()?).map_err(|_| {
                    ExtensionError::BadResponse { detail: "document is not text".into() }
                })?;
                let pdelta = diff(&old_plain, &new_plain);
                let state = self.docs.get_mut(doc_id).expect("state checked above");
                state.transformer = DeltaTransformer::new(doc);
                state.plaintext = new_plain;
                state.synced = true;
                state.version = seq.parse().ok();
                Ok(format!("{seq}:delta:{}", pdelta.serialize()))
            }
            other => Err(ExtensionError::BadResponse {
                detail: format!("unknown change kind: {other}"),
            }),
        }
    }

    /// Fallback when the ciphertext stream cannot be tracked: fetch the
    /// authoritative content, decrypt it, and answer the poll as a
    /// resync at the stream's head.
    fn changes_resync_fallback(
        &mut self,
        doc_id: &str,
        pairs: &[(String, String)],
    ) -> Result<Mediated, ExtensionError> {
        let load =
            self.server.handle(&Request::get("/Doc/load", &[("docID", doc_id)]));
        if !load.is_success() {
            return Ok(Mediated {
                response: load,
                outcome: Outcome::PassedThrough,
                suggested_delay: Duration::ZERO,
            });
        }
        let body = load.body_text().ok_or_else(|| ExtensionError::BadResponse {
            detail: "load response is not text".into(),
        })?;
        let load_pairs = form::parse_pairs(body).map_err(|e| ExtensionError::BadResponse {
            detail: format!("unparseable load form: {e}"),
        })?;
        let content = form::first_value(&load_pairs, "content").unwrap_or("").to_string();
        self.docs.remove(doc_id);
        self.ensure_state(doc_id, Some(&content))?;
        // Resume from the *loaded* version when the server reports one —
        // the load may already include changes past the stream's head.
        let seq = form::first_value(&load_pairs, "version")
            .or_else(|| form::first_value(pairs, "seq"))
            .unwrap_or("0");
        if let Some(state) = self.docs.get_mut(doc_id) {
            state.version = seq.parse().ok();
        }
        let plaintext = self.docs[doc_id].plaintext.clone();
        let hash = hex::encode(&Sha256::digest(plaintext.as_bytes())[..8]);
        let mut rewritten: Vec<(&str, &str)> = vec![
            ("resync", "1"),
            ("seq", seq),
            ("contentHash", &hash),
            ("content", &plaintext),
        ];
        for (k, v) in pairs {
            if k == "presence" {
                rewritten.push(("presence", v));
            }
        }
        Ok(Mediated {
            response: Response::ok(form::encode_pairs(&rewritten)),
            outcome: Outcome::Decrypted,
            suggested_delay: Duration::ZERO,
        })
    }

    fn handle_save(&mut self, request: &Request) -> Result<Mediated, ExtensionError> {
        let doc_id = request.query_param("docID").unwrap_or("").to_string();
        let Some(body) = request.body_text() else {
            return Ok(self.blocked());
        };
        let Ok(pairs) = form::parse_pairs(body) else {
            return Ok(self.blocked());
        };
        if let Some(contents) = form::first_value(&pairs, "docContents") {
            let contents = contents.to_string();
            self.full_save(&doc_id, request, &contents)
        } else if let Some(delta_text) = form::first_value(&pairs, "delta") {
            let delta = Delta::parse(delta_text)?;
            self.delta_save(&doc_id, request, &delta)
        } else {
            // Unknown save shape: drop it (Fig. 2's `dropRequest`).
            Ok(self.blocked())
        }
    }

    fn full_save(
        &mut self,
        doc_id: &str,
        request: &Request,
        contents: &str,
    ) -> Result<Mediated, ExtensionError> {
        self.ensure_state(doc_id, None)?;
        let state = self.docs.get_mut(doc_id).expect("ensured above");
        {
            let _timed = pe_observe::static_histogram!("mediator.encrypt_ns").span();
            state.transformer.replace_all(contents.as_bytes())?;
        }
        state.plaintext = contents.to_string();
        state.synced = true;
        let ciphertext = state.transformer.ciphertext().to_string();
        if !contents.is_empty() {
            pe_observe::static_histogram!("mediator.blowup_pct")
                .record((ciphertext.len() * 100 / contents.len()) as u64);
        }
        let mut fields: Vec<(String, String)> =
            vec![("docContents".into(), ciphertext)];
        if self.config.pad_updates {
            fields.push(countermeasures::padding_field(&mut self.rng));
        }
        let rewritten = Request::new(
            Method::Post,
            &request.path,
            &request
                .query
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect::<Vec<_>>(),
            form::encode_pairs(&fields),
        );
        let response = self.server.handle(&rewritten);
        if response.is_success() {
            let version = Self::response_version(&response);
            if let Some(state) = self.docs.get_mut(doc_id) {
                state.version = version;
            }
        } else {
            // The mirror already absorbed content the server never
            // stored: drop it so the next load rebuilds from the
            // authoritative copy instead of diverging.
            self.docs.remove(doc_id);
        }
        Ok(self.rewrite_ack(response))
    }

    fn delta_save(
        &mut self,
        doc_id: &str,
        request: &Request,
        delta: &Delta,
    ) -> Result<Mediated, ExtensionError> {
        if !self.docs.get(doc_id).map(|s| s.synced).unwrap_or(false) {
            // No synced ciphertext mirror. Ask the server what it holds:
            // with a collaborator's content already stored, the old
            // behaviour — a blind full save of the delta result — would
            // overwrite their changes wholesale (put_full is
            // last-writer-wins). Resync the mirror and continue on the
            // incremental path instead; only a genuinely empty document
            // takes the full-save route (protocol: the first save of a
            // fresh document is always a full save).
            match self.load_server_state(doc_id)? {
                Some((content, version)) if !content.is_empty() => {
                    self.docs.remove(doc_id);
                    self.ensure_state(doc_id, Some(&content))?;
                    if let Some(state) = self.docs.get_mut(doc_id) {
                        state.version = version;
                    }
                }
                _ => {
                    let base = self
                        .docs
                        .get(doc_id)
                        .map(|s| s.plaintext.clone())
                        .unwrap_or_default();
                    let updated = delta.apply_bytes(base.as_bytes())?;
                    let updated = String::from_utf8(updated).map_err(|_| {
                        ExtensionError::BadResponse {
                            detail: "delta produced invalid text".into(),
                        }
                    })?;
                    return self.full_save(doc_id, request, &updated);
                }
            }
        }
        let state = self.docs.get_mut(doc_id).expect("synced implies state");
        let base_version = state.version;
        let effective = if self.config.canonicalize_deltas {
            delta.canonicalize(&state.plaintext)?
        } else {
            delta.clone()
        };
        let cdelta = {
            let _timed = pe_observe::static_histogram!("mediator.encrypt_ns").span();
            state.transformer.transform(&effective)?
        };
        let updated = effective.apply_bytes(state.plaintext.as_bytes())?;
        state.plaintext = String::from_utf8(updated).map_err(|_| {
            ExtensionError::BadResponse { detail: "delta produced invalid text".into() }
        })?;
        if !state.plaintext.is_empty() {
            pe_observe::static_histogram!("mediator.blowup_pct").record(
                (state.transformer.ciphertext().len() * 100 / state.plaintext.len()) as u64,
            );
        }
        let mut fields: Vec<(String, String)> =
            vec![("delta".into(), cdelta.serialize())];
        if let Some(base) = base_version {
            // Precondition: this ciphertext delta is only valid against
            // the mirror's version; a concurrent save must 409 it.
            fields.push(("baseVersion".into(), base.to_string()));
        }
        if self.config.pad_updates {
            fields.push(countermeasures::padding_field(&mut self.rng));
        }
        let rewritten = Request::new(
            Method::Post,
            &request.path,
            &request
                .query
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect::<Vec<_>>(),
            form::encode_pairs(&fields),
        );
        let response = self.server.handle(&rewritten);
        if response.is_success() {
            let version = Self::response_version(&response);
            if let Some(state) = self.docs.get_mut(doc_id) {
                state.version = version;
            }
        } else {
            // The mirror was mutated above but the server rejected the
            // save (stale base, conflict, …): the mirror now holds
            // content the server never accepted. Drop it so the next
            // load resyncs from the authoritative copy.
            self.docs.remove(doc_id);
        }
        Ok(self.rewrite_ack(response))
    }

    /// Fetches the authoritative server copy: `Some((content, version))`
    /// on success, `None` when the load failed (the caller falls back to
    /// its legacy behaviour).
    fn load_server_state(
        &mut self,
        doc_id: &str,
    ) -> Result<Option<(String, Option<u64>)>, ExtensionError> {
        let response =
            self.server.handle(&Request::get("/Doc/load", &[("docID", doc_id)]));
        if !response.is_success() {
            return Ok(None);
        }
        let Some(body) = response.body_text() else {
            return Ok(None);
        };
        let Ok(pairs) = form::parse_pairs(body) else {
            return Ok(None);
        };
        Ok(Some((
            form::first_value(&pairs, "content").unwrap_or("").to_string(),
            form::first_value(&pairs, "version").and_then(|v| v.parse().ok()),
        )))
    }

    /// Parses the `version` field from a save ack / load response.
    fn response_version(response: &Response) -> Option<u64> {
        response
            .body_text()
            .and_then(|body| form::parse_pairs(body).ok())
            .and_then(|pairs| {
                form::first_value(&pairs, "version").and_then(|v| v.parse().ok())
            })
    }

    /// §IV-A: "the client works flawlessly when the values are replaced
    /// with an empty string for contentFromServer, and 0 for
    /// contentFromServerHash". The server's `version` (the change-stream
    /// sequence of this save) is content-free and carries through so live
    /// sessions can skip their own echo.
    fn rewrite_ack(&mut self, response: Response) -> Mediated {
        let delay = self.delay();
        if !response.is_success() {
            return Mediated { response, outcome: Outcome::Encrypted, suggested_delay: delay };
        }
        let version = response
            .body_text()
            .and_then(|body| form::parse_pairs(body).ok())
            .and_then(|pairs| form::first_value(&pairs, "version").map(str::to_string));
        let mut fields: Vec<(&str, &str)> =
            vec![("contentFromServer", ""), ("contentFromServerHash", "0")];
        if let Some(version) = version.as_deref() {
            fields.push(("version", version));
        }
        let ack = form::encode_pairs(&fields);
        Mediated { response: Response::ok(ack), outcome: Outcome::Encrypted, suggested_delay: delay }
    }

    // Convenience wrappers used by clients, examples and benchmarks. They
    // drive exactly the same interception path a raw client would.

    /// Creates a new encrypted document: forwards the create command,
    /// registers the password, and initializes crypto state.
    ///
    /// # Errors
    ///
    /// Fails when the server rejects the create or responds unparseably.
    pub fn create_document(&mut self, password: &str) -> Result<String, ExtensionError> {
        let doc_id = self.create_on_server()?;
        self.register_password(&doc_id, password);
        Ok(doc_id)
    }

    /// Forwards the create command and parses the allocated document id.
    fn create_on_server(&mut self) -> Result<String, ExtensionError> {
        let mediated = self.intercept(&Request::post("/Doc", &[("cmd", "create")], ""))?;
        let body = mediated.response.body_text().unwrap_or("");
        if !mediated.response.is_success() {
            return Err(ExtensionError::ServerError {
                status: mediated.response.status,
                message: body.to_string(),
            });
        }
        let pairs = form::parse_pairs(body).map_err(|e| ExtensionError::BadResponse {
            detail: format!("create response: {e}"),
        })?;
        Ok(form::first_value(&pairs, "docID")
            .ok_or_else(|| ExtensionError::BadResponse { detail: "missing docID".into() })?
            .to_string())
    }

    /// Opens a document, returning its decrypted plaintext.
    ///
    /// # Errors
    ///
    /// Fails for missing passwords, server errors, or integrity failures.
    pub fn open_document(&mut self, doc_id: &str) -> Result<String, ExtensionError> {
        let mediated =
            self.intercept(&Request::post("/Doc", &[("docID", doc_id), ("cmd", "open")], ""))?;
        if !mediated.response.is_success() {
            return Err(ExtensionError::ServerError {
                status: mediated.response.status,
                message: mediated.response.body_text().unwrap_or("").to_string(),
            });
        }
        let body = mediated.response.body_text().unwrap_or("");
        let pairs = form::parse_pairs(body).map_err(|e| ExtensionError::BadResponse {
            detail: format!("open response: {e}"),
        })?;
        Ok(form::first_value(&pairs, "content").unwrap_or("").to_string())
    }

    /// Performs a full (docContents) save.
    ///
    /// # Errors
    ///
    /// Fails when crypto state cannot be established or the server errors.
    pub fn save_full(&mut self, doc_id: &str, contents: &str) -> Result<Mediated, ExtensionError> {
        let body = form::encode_pairs(&[("docContents", contents)]);
        self.intercept(&Request::post("/Doc", &[("docID", doc_id)], body))
    }

    /// Performs an incremental (delta) save.
    ///
    /// # Errors
    ///
    /// Fails when the delta does not apply or the server errors.
    pub fn save_delta(&mut self, doc_id: &str, delta: &Delta) -> Result<Mediated, ExtensionError> {
        let body = form::encode_pairs(&[("delta", delta.serialize().as_str())]);
        self.intercept(&Request::post("/Doc", &[("docID", doc_id)], body))
    }

    /// Rotates the document's password: derives a fresh key (new salt),
    /// re-encrypts the current contents, and uploads them as a full save.
    ///
    /// **Scope of protection:** rotation protects the document's *future*
    /// states. The server's stored revision history remains encrypted
    /// under the old password's keys — a party who learned the old
    /// password can still read old revisions, exactly as with any
    /// re-encryption scheme that cannot reach into server-side history.
    ///
    /// # Errors
    ///
    /// Fails when no current state exists and the document cannot be
    /// opened with the old password, or when the upload fails.
    pub fn change_password(
        &mut self,
        doc_id: &str,
        new_password: &str,
    ) -> Result<(), ExtensionError> {
        // Make sure we hold the current plaintext (may require opening
        // with the old password first).
        if !self.docs.contains_key(doc_id) {
            self.open_document(doc_id)?;
        }
        let plaintext = self
            .docs
            .get(doc_id)
            .map(|s| s.plaintext.clone())
            .ok_or_else(|| ExtensionError::NoPassword { doc_id: doc_id.to_string() })?;
        // Re-register and rebuild crypto state under the new password.
        self.keyring.register(doc_id, new_password);
        self.docs.remove(doc_id);
        let mediated = self.save_full(doc_id, &plaintext)?;
        if mediated.response.is_success() {
            Ok(())
        } else {
            Err(ExtensionError::ServerError {
                status: mediated.response.status,
                message: mediated.response.body_text().unwrap_or("").to_string(),
            })
        }
    }

    // Multi-tenant key management (crate `pe-tenant`): per-user master
    // keys, per-document data keys wrapped per authorized editor, and
    // O(1) grant/revoke that never touches document bodies. The directory
    // records travel through the same untrusted server this mediator
    // fronts (its `/tenant/*` endpoints), so nothing here trusts the
    // cloud with key material.

    /// The tenant directory view over the wrapped server.
    fn tenant_directory(&self) -> TenantDirectory<ServiceRecords<&S>> {
        TenantDirectory::new(ServiceRecords::new(&self.server))
    }

    /// Registers a tenant user (fresh random salt, this mediator's
    /// configured KDF iteration count) and logs them in.
    ///
    /// # Errors
    ///
    /// [`ExtensionError::Tenant`] when the name is taken or invalid.
    pub fn tenant_register(&mut self, user: &str, passphrase: &str) -> Result<(), ExtensionError> {
        let mut rng = self.fork_rng();
        let iterations = self.config.kdf_iterations;
        let session = self.tenant_directory().register(user, passphrase, iterations, &mut rng)?;
        self.tenant = Some(session);
        Ok(())
    }

    /// Logs a tenant user in: derives their KEK from the passphrase and
    /// the salt in their directory record, and checks the verifier.
    ///
    /// # Errors
    ///
    /// [`ExtensionError::Tenant`] for unknown users or bad passphrases.
    pub fn tenant_login(&mut self, user: &str, passphrase: &str) -> Result<(), ExtensionError> {
        let session = self.tenant_directory().login(user, passphrase)?;
        self.tenant = Some(session);
        Ok(())
    }

    /// The logged-in tenant user, if any.
    pub fn tenant_user(&self) -> Option<&str> {
        self.tenant.as_ref().map(|s| s.user())
    }

    /// Creates a document owned by the logged-in user: the server
    /// allocates the id, the directory stores the owner's wrapped copy of
    /// a fresh random data key, and the derived document key lands in the
    /// keyring — no per-document password exists.
    ///
    /// # Errors
    ///
    /// [`ExtensionError::NoSession`] without a login; server or directory
    /// failures otherwise.
    pub fn tenant_create_document(&mut self) -> Result<String, ExtensionError> {
        if self.tenant.is_none() {
            return Err(ExtensionError::NoSession);
        }
        let doc_id = self.create_on_server()?;
        let mut rng = self.fork_rng();
        let session = self.tenant.as_ref().expect("checked above");
        let data_key = TenantDirectory::new(ServiceRecords::new(&self.server))
            .create_document(session, &doc_id, &mut rng)?;
        let mut salt = [0u8; 16];
        rng.fill_bytes(&mut salt);
        self.keyring.register_key(&doc_id, data_key.document_key(salt));
        Ok(doc_id)
    }

    /// Grants another user access to a document the logged-in user owns.
    /// Returns the one-time invite code, which travels out of band; the
    /// grantee redeems it with [`Self::tenant_accept`]. O(1) in the
    /// document size — the body is never touched.
    ///
    /// # Errors
    ///
    /// [`ExtensionError::NoSession`] without a login;
    /// [`ExtensionError::Tenant`] when not the owner or the grantee is
    /// unknown.
    pub fn tenant_grant(&mut self, doc_id: &str, grantee: &str) -> Result<String, ExtensionError> {
        let mut rng = self.fork_rng();
        let session = self.tenant.as_ref().ok_or(ExtensionError::NoSession)?;
        let code = TenantDirectory::new(ServiceRecords::new(&self.server))
            .grant(session, doc_id, grantee, &mut rng)?;
        Ok(code)
    }

    /// Redeems an invite code: rewraps the document's data key under the
    /// logged-in user's KEK and burns the invite.
    ///
    /// # Errors
    ///
    /// [`ExtensionError::NoSession`] without a login;
    /// [`ExtensionError::Tenant`] for wrong or spent codes.
    pub fn tenant_accept(&mut self, doc_id: &str, code: &str) -> Result<(), ExtensionError> {
        let session = self.tenant.as_ref().ok_or(ExtensionError::NoSession)?;
        TenantDirectory::new(ServiceRecords::new(&self.server)).accept(session, doc_id, code)?;
        Ok(())
    }

    /// Revokes a user's access to a document the logged-in user owns:
    /// deletes their wrapped key record (and pending invites). Returns
    /// whether a grant existed. O(1) in the document size.
    ///
    /// # Errors
    ///
    /// [`ExtensionError::NoSession`] without a login;
    /// [`ExtensionError::Tenant`] when not the owner.
    pub fn tenant_revoke(&mut self, doc_id: &str, user: &str) -> Result<bool, ExtensionError> {
        let session = self.tenant.as_ref().ok_or(ExtensionError::NoSession)?;
        let existed = TenantDirectory::new(ServiceRecords::new(&self.server))
            .revoke(session, doc_id, user)?;
        Ok(existed)
    }

    /// Rotates a tenant user's passphrase: new salt, new KEK, every
    /// wrapped key they hold rewrapped — document bodies untouched.
    /// Returns the number of grants rewrapped. Refreshes the login when
    /// the rotated user is the one logged in here.
    ///
    /// # Errors
    ///
    /// [`ExtensionError::Tenant`] when the old passphrase is wrong.
    pub fn tenant_passwd(
        &mut self,
        user: &str,
        old_passphrase: &str,
        new_passphrase: &str,
    ) -> Result<usize, ExtensionError> {
        let mut rng = self.fork_rng();
        let iterations = self.config.kdf_iterations;
        let count = self
            .tenant_directory()
            .rewrap(user, old_passphrase, new_passphrase, iterations, &mut rng)?;
        if self.tenant.as_ref().is_some_and(|s| s.user() == user) {
            let session = self.tenant_directory().login(user, new_passphrase)?;
            self.tenant = Some(session);
        }
        Ok(count)
    }
}
