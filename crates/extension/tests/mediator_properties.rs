//! Property test: the mediator under arbitrary editor-generated sessions
//! must keep three invariants simultaneously — the plaintext model, the
//! no-leak guarantee, and reopenability.

use std::sync::Arc;

use pe_cloud::docs::DocsServer;
use pe_crypto::CtrDrbg;
use pe_delta::Delta;
use pe_extension::{DocsMediator, MediatorConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawEdit {
    kind: u8,
    at: usize,
    amount: usize,
    seed: u8,
}

fn raw_edit() -> impl Strategy<Value = RawEdit> {
    (any::<u8>(), any::<usize>(), 1usize..12, any::<u8>())
        .prop_map(|(kind, at, amount, seed)| RawEdit { kind, at, amount, seed })
}

/// Turns a raw edit into a valid delta against `content`.
fn resolve(raw: &RawEdit, content: &str) -> Delta {
    let len = content.len();
    let mut builder = Delta::builder();
    if raw.kind.is_multiple_of(2) || len == 0 {
        let at = if len == 0 { 0 } else { raw.at % (len + 1) };
        let text: String = (0..raw.amount)
            .map(|i| (b'a' + (raw.seed.wrapping_add(i as u8)) % 26) as char)
            .collect();
        builder.retain(at).insert(&text);
    } else {
        let at = raw.at % len;
        let del = raw.amount.min(len - at).max(1);
        builder.retain(at).delete(del);
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mediator_session_invariants(
        initial in "[a-z ]{0,80}",
        edits in proptest::collection::vec(raw_edit(), 1..15),
        rpc in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let config = if rpc { MediatorConfig::rpc(7) } else { MediatorConfig::recb(8) };
        let server = Arc::new(DocsServer::new());
        let mut mediator =
            DocsMediator::with_rng(Arc::clone(&server), config, CtrDrbg::from_seed(seed));
        let doc_id = mediator.create_document("prop-pw").unwrap();
        mediator.save_full(&doc_id, &initial).unwrap();
        let mut model = initial.clone();
        for raw in &edits {
            let delta = resolve(raw, &model);
            model = delta.apply(&model).unwrap();
            mediator.save_delta(&doc_id, &delta).unwrap();
            // Invariant 1: the mediator's view tracks the model.
            prop_assert_eq!(mediator.plaintext(&doc_id), Some(model.as_str()));
        }
        // Invariant 2: no plaintext word reaches the provider.
        let stored = server.stored_content(&doc_id).unwrap();
        for word in model.split_whitespace().filter(|w| w.len() >= 4) {
            prop_assert!(!stored.contains(word), "leaked {word:?}");
        }
        // Invariant 3: a fresh mediator with the password recovers the
        // exact document (verifying integrity in RPC mode).
        let mut reader =
            DocsMediator::with_rng(Arc::clone(&server), config, CtrDrbg::from_seed(seed ^ 1));
        reader.register_password(&doc_id, "prop-pw");
        prop_assert_eq!(reader.open_document(&doc_id).unwrap(), model);
    }
}
