//! End-to-end tests of the mediator against the simulated services.

use std::sync::Arc;

use pe_cloud::docs::DocsServer;
use pe_cloud::{CloudService, Request};
use pe_crypto::CtrDrbg;
use pe_delta::Delta;
use pe_extension::{DocsMediator, MediatorConfig, Outcome};

fn mediator(config: MediatorConfig, seed: u64) -> (Arc<DocsServer>, DocsMediator<Arc<DocsServer>>) {
    let server = Arc::new(DocsServer::new());
    let mediator = DocsMediator::with_rng(Arc::clone(&server), config, CtrDrbg::from_seed(seed));
    (server, mediator)
}

/// The secret must never appear in anything the server stores.
fn assert_server_never_sees(server: &DocsServer, doc_id: &str, secret: &str) {
    let stored = server.stored_content(doc_id).unwrap_or_default();
    assert!(
        !stored.contains(secret),
        "server stored plaintext! stored={stored:.60}… secret={secret}"
    );
}

#[test]
fn full_session_recb() {
    let (server, mut mediator) = mediator(MediatorConfig::recb(8), 1);
    let doc_id = mediator.create_document("password1").unwrap();
    mediator.save_full(&doc_id, "my darkest secret").unwrap();
    assert_server_never_sees(&server, &doc_id, "secret");
    // Incremental edits (paper example semantics).
    let mut delta = Delta::builder();
    delta.retain(3).delete(7).insert("brightest");
    mediator.save_delta(&doc_id, &delta.build()).unwrap();
    assert_server_never_sees(&server, &doc_id, "brightest");
    assert_eq!(mediator.plaintext(&doc_id), Some("my brightest secret"));
    // Reopening through a fresh mediator with the right password works.
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(2),
    );
    reader.register_password(&doc_id, "password1");
    assert_eq!(reader.open_document(&doc_id).unwrap(), "my brightest secret");
}

#[test]
fn full_session_rpc() {
    let (server, mut mediator) = mediator(MediatorConfig::rpc(7), 3);
    let doc_id = mediator.create_document("password2").unwrap();
    mediator.save_full(&doc_id, "integrity protected text").unwrap();
    let mut delta = Delta::builder();
    delta.retain(10).insert("fully ");
    mediator.save_delta(&doc_id, &delta.build()).unwrap();
    assert_server_never_sees(&server, &doc_id, "protected");
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::rpc(7),
        CtrDrbg::from_seed(4),
    );
    reader.register_password(&doc_id, "password2");
    assert_eq!(reader.open_document(&doc_id).unwrap(), "integrity fully protected text");
}

#[test]
fn rpc_detects_server_tampering_on_open() {
    let (server, mut mediator) = mediator(MediatorConfig::rpc(7), 5);
    let doc_id = mediator.create_document("pw").unwrap();
    mediator.save_full(&doc_id, "tamper target content").unwrap();
    // Malicious server flips a ciphertext character.
    let stored = server.stored_content(&doc_id).unwrap();
    let mut tampered: Vec<char> = stored.chars().collect();
    let pos = tampered.len() - 5;
    tampered[pos] = if tampered[pos] == 'A' { 'B' } else { 'A' };
    let tampered: String = tampered.into_iter().collect();
    let body = pe_crypto::form::encode_pairs(&[("docContents", tampered.as_str())]);
    server.handle(&Request::post("/Doc", &[("docID", &doc_id)], body));
    // The victim reopens: integrity failure must surface.
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::rpc(7),
        CtrDrbg::from_seed(6),
    );
    reader.register_password(&doc_id, "pw");
    assert!(reader.open_document(&doc_id).is_err(), "tampering must be detected");
}

#[test]
fn wrong_password_fails_cleanly() {
    let (server, mut mediator) = mediator(MediatorConfig::recb(8), 7);
    let doc_id = mediator.create_document("right").unwrap();
    mediator.save_full(&doc_id, "content").unwrap();
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(8),
    );
    reader.register_password(&doc_id, "wrong");
    assert!(reader.open_document(&doc_id).is_err());
}

#[test]
fn without_password_user_sees_ciphertext() {
    let (server, mut mediator) = mediator(MediatorConfig::recb(8), 9);
    let doc_id = mediator.create_document("pw").unwrap();
    mediator.save_full(&doc_id, "hidden").unwrap();
    // A mediator with no password passes the raw (encrypted) content through.
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(10),
    );
    let shown = reader.open_document(&doc_id).unwrap();
    assert!(shown.starts_with("PE1;"), "user without password sees ciphertext: {shown:.30}");
}

#[test]
fn unknown_requests_are_blocked() {
    let (_server, mut mediator) = mediator(MediatorConfig::recb(8), 11);
    let drawing = Request::post("/drawing", &[], "circle(1,2,3) containing secret layout");
    let mediated = mediator.intercept(&drawing).unwrap();
    assert_eq!(mediated.outcome, Outcome::Blocked);
    assert_eq!(mediated.response.status, 403);
    let arbitrary = Request::get("/telemetry", &[("data", "leak")]);
    assert_eq!(mediator.intercept(&arbitrary).unwrap().outcome, Outcome::Blocked);
}

#[test]
fn acks_are_scrubbed() {
    let (_server, mut mediator) = mediator(MediatorConfig::recb(8), 12);
    let doc_id = mediator.create_document("pw").unwrap();
    let mediated = mediator.save_full(&doc_id, "text").unwrap();
    let body = mediated.response.body_text().unwrap();
    let pairs = pe_crypto::form::parse_pairs(body).unwrap();
    assert_eq!(pe_crypto::form::first_value(&pairs, "contentFromServer"), Some(""));
    assert_eq!(pe_crypto::form::first_value(&pairs, "contentFromServerHash"), Some("0"));
}

/// The §VI-B covert channel demonstrated here is the *self-replace*
/// channel: a malicious client "edits" a character to its existing value
/// (`-1 +b` where the document already starts with `b`). The editing
/// outcome is identical to doing nothing, but the touched ciphertext block
/// is re-encrypted — the server observes *which blocks changed* and reads
/// covert bits from that pattern.
fn self_replace_delta() -> Delta {
    Delta::from_ops(vec![
        pe_delta::DeltaOp::Delete(1),
        pe_delta::DeltaOp::Insert("b".into()),
    ])
}

#[test]
fn canonicalization_destroys_covert_delta_encoding() {
    let config = MediatorConfig::recb(8); // canonicalize_deltas = true
    let (server, mut sneaky) = mediator(config, 13);
    let doc_id = sneaky.create_document("pw").unwrap();
    sneaky.save_full(&doc_id, "base document").unwrap();
    let before = server.stored_content(&doc_id).unwrap();
    sneaky.save_delta(&doc_id, &self_replace_delta()).unwrap();
    let after = server.stored_content(&doc_id).unwrap();
    // The canonical form of a self-replace is the identity delta, so the
    // server-side ciphertext is bit-for-bit unchanged: no covert bit.
    assert_eq!(before, after, "canonicalization must squash the no-op edit");
    assert_eq!(sneaky.plaintext(&doc_id), Some("base document"));
}

#[test]
fn without_canonicalization_the_channel_exists() {
    let mut config = MediatorConfig::recb(8);
    config.canonicalize_deltas = false;
    let (server, mut sneaky) = mediator(config, 14);
    let doc_id = sneaky.create_document("pw").unwrap();
    sneaky.save_full(&doc_id, "base document").unwrap();
    let before = server.stored_content(&doc_id).unwrap();
    sneaky.save_delta(&doc_id, &self_replace_delta()).unwrap();
    let after = server.stored_content(&doc_id).unwrap();
    // The touched block was re-encrypted: the server sees which block
    // changed even though the document did not — one covert bit leaked.
    assert_ne!(before, after, "covert self-replace should re-encrypt a block");
    assert_eq!(sneaky.plaintext(&doc_id), Some("base document"));
}

#[test]
fn hardened_config_pads_and_delays() {
    let config = MediatorConfig::recb(8).hardened();
    let (server, mut mediator) = mediator(config, 15);
    let doc_id = mediator.create_document("pw").unwrap();
    mediator.save_full(&doc_id, "abc").unwrap();
    let mut delays = Vec::new();
    for i in 0..10 {
        let mut delta = Delta::builder();
        delta.insert(&format!("{i}"));
        let mediated = mediator.save_delta(&doc_id, &delta.build()).unwrap();
        delays.push(mediated.suggested_delay);
    }
    assert!(delays.iter().any(|d| !d.is_zero()), "random delays expected");
    assert!(delays.windows(2).any(|w| w[0] != w[1]), "delays must vary");
    // Padding must not corrupt the document.
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(16),
    );
    reader.register_password(&doc_id, "pw");
    // Each one-character delta had no leading retain, so inserts land at
    // position 0: the digits accumulate in reverse order before "abc".
    assert_eq!(reader.open_document(&doc_id).unwrap(), "9876543210abc");
}

#[test]
fn collaborative_reader_sees_updates() {
    let (server, mut writer) = mediator(MediatorConfig::recb(8), 17);
    let doc_id = writer.create_document("shared-pw").unwrap();
    writer.save_full(&doc_id, "draft v1").unwrap();
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(18),
    );
    reader.register_password(&doc_id, "shared-pw");
    assert_eq!(reader.open_document(&doc_id).unwrap(), "draft v1");
    // Writer continues editing; passive reader refreshes via load.
    let mut delta = Delta::builder();
    delta.retain(6).delete(2).insert("v2");
    writer.save_delta(&doc_id, &delta.build()).unwrap();
    let mediated = reader
        .intercept(&Request::get("/Doc/load", &[("docID", &doc_id)]))
        .unwrap();
    let pairs = pe_crypto::form::parse_pairs(mediated.response.body_text().unwrap()).unwrap();
    assert_eq!(pe_crypto::form::first_value(&pairs, "content"), Some("draft v2"));
}

#[test]
fn spell_check_breaks_but_is_not_blocked() {
    let (_server, mut mediator) = mediator(MediatorConfig::recb(8), 19);
    let doc_id = mediator.create_document("pw").unwrap();
    mediator.save_full(&doc_id, "the quick brown fox").unwrap();
    let mediated =
        mediator.intercept(&Request::post("/spell", &[("docID", &doc_id)], "")).unwrap();
    assert_eq!(mediated.outcome, Outcome::PassedThrough);
    let pairs = pe_crypto::form::parse_pairs(mediated.response.body_text().unwrap()).unwrap();
    let flagged = pe_crypto::form::first_value(&pairs, "misspelled").unwrap();
    // Everything is flagged: the feature is broken (though every word of
    // the plaintext is in the server's dictionary).
    assert!(!flagged.is_empty(), "ciphertext must confuse the spell checker");
}

#[test]
fn delta_before_full_save_falls_back_to_full_save() {
    let (server, mut mediator) = mediator(MediatorConfig::recb(8), 20);
    let doc_id = mediator.create_document("pw").unwrap();
    // No full save yet — protocol says first save carries docContents;
    // the mediator must handle a client that sends a delta first.
    let mut delta = Delta::builder();
    delta.insert("first words");
    mediator.save_delta(&doc_id, &delta.build()).unwrap();
    assert_eq!(mediator.plaintext(&doc_id), Some("first words"));
    assert_server_never_sees(&server, &doc_id, "first words");
}

#[test]
fn long_editing_session_stays_consistent() {
    let (server, mut mediator) = mediator(MediatorConfig::rpc(7), 21);
    let doc_id = mediator.create_document("pw").unwrap();
    mediator.save_full(&doc_id, "").unwrap();
    let mut model = String::new();
    let mut seed = 42u64;
    let mut next = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        seed >> 33
    };
    for step in 0..60 {
        let len = model.len();
        let delta = if next() % 3 == 0 && len > 4 {
            let at = (next() as usize) % (len - 2);
            let del = 1 + (next() as usize) % (len - at - 1).min(6);
            let mut b = Delta::builder();
            b.retain(at).delete(del);
            b.build()
        } else {
            let at = if len == 0 { 0 } else { (next() as usize) % (len + 1) };
            let text = format!("w{step} ");
            let mut b = Delta::builder();
            b.retain(at).insert(&text);
            b.build()
        };
        model = delta.apply(&model).unwrap();
        mediator.save_delta(&doc_id, &delta).unwrap();
        assert_eq!(mediator.plaintext(&doc_id), Some(model.as_str()), "step {step}");
    }
    // Final state reopens correctly from the server's stored ciphertext.
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::rpc(7),
        CtrDrbg::from_seed(22),
    );
    reader.register_password(&doc_id, "pw");
    assert_eq!(reader.open_document(&doc_id).unwrap(), model);
}

#[test]
fn revision_history_stays_encrypted_and_decryptable() {
    let (server, mut writer) = mediator(MediatorConfig::recb(8), 30);
    let doc_id = writer.create_document("rev-pw").unwrap();
    writer.save_full(&doc_id, "version one").unwrap();
    let mut delta = Delta::builder();
    delta.retain(8).delete(3).insert("two");
    writer.save_delta(&doc_id, &delta.build()).unwrap();
    // The provider's stored history contains no plaintext.
    for revision in server.stored_revisions(&doc_id).unwrap() {
        assert!(!revision.contains("version"), "revision leaked plaintext");
    }
    // But the password holder can browse history through the mediator.
    let count_resp = writer
        .intercept(&Request::get("/Doc/revisions", &[("docID", &doc_id)]))
        .unwrap();
    let pairs = pe_crypto::form::parse_pairs(count_resp.response.body_text().unwrap()).unwrap();
    let count: usize =
        pe_crypto::form::first_value(&pairs, "revisionCount").unwrap().parse().unwrap();
    assert!(count >= 2);
    // The most recent revision (pre-delta) decrypts to "version one".
    let idx = (count - 1).to_string();
    let rev = writer
        .intercept(&Request::get(
            "/Doc/revisions",
            &[("docID", &doc_id), ("index", idx.as_str())],
        ))
        .unwrap();
    assert_eq!(rev.outcome, Outcome::Decrypted);
    let pairs = pe_crypto::form::parse_pairs(rev.response.body_text().unwrap()).unwrap();
    assert_eq!(pe_crypto::form::first_value(&pairs, "content"), Some("version one"));
}

#[test]
fn password_rotation_reencrypts_under_new_key() {
    let (server, mut owner) = mediator(MediatorConfig::recb(8), 31);
    let doc_id = owner.create_document("old-password").unwrap();
    owner.save_full(&doc_id, "rotate me").unwrap();
    let before = server.stored_content(&doc_id).unwrap();
    owner.change_password(&doc_id, "new-password").unwrap();
    let after = server.stored_content(&doc_id).unwrap();
    assert_ne!(before, after, "rotation must re-encrypt");
    // Old password no longer opens the current document…
    let mut old_reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(32),
    );
    old_reader.register_password(&doc_id, "old-password");
    assert!(old_reader.open_document(&doc_id).is_err());
    // …the new one does…
    let mut new_reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(33),
    );
    new_reader.register_password(&doc_id, "new-password");
    assert_eq!(new_reader.open_document(&doc_id).unwrap(), "rotate me");
    // …and edits continue normally afterwards.
    let mut delta = Delta::builder();
    delta.insert("ok: ");
    owner.save_delta(&doc_id, &delta.build()).unwrap();
    assert_eq!(owner.plaintext(&doc_id), Some("ok: rotate me"));
}

#[test]
fn rotation_does_not_protect_old_revisions() {
    // The documented limitation: server-side history stays under the old
    // keys, so a party with the old password still reads old revisions.
    let (server, mut owner) = mediator(MediatorConfig::recb(8), 34);
    let doc_id = owner.create_document("leaked-old-password").unwrap();
    owner.save_full(&doc_id, "the old secret").unwrap();
    owner.change_password(&doc_id, "fresh-password").unwrap();
    let revisions = server.stored_revisions(&doc_id).unwrap();
    // The pre-rotation ciphertext is still in history; the old password
    // decrypts it through a mediator that only knows the old password.
    let old_ciphertext = revisions.iter().rev().find(|r| !r.is_empty()).unwrap();
    let mut old_holder = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(35),
    );
    old_holder.register_password(&doc_id, "leaked-old-password");
    // Feed the revision back through the open path by planting it as the
    // current content of a scratch document.
    let scratch = old_holder.create_document("leaked-old-password").unwrap();
    let body = pe_crypto::form::encode_pairs(&[("docContents", old_ciphertext.as_str())]);
    server.handle(&Request::post("/Doc", &[("docID", &scratch)], body));
    assert_eq!(old_holder.open_document(&scratch).unwrap(), "the old secret");
}

/// A config with a cheap KDF for tenant tests (PBKDF2 runs per login).
fn tenant_config() -> MediatorConfig {
    let mut config = MediatorConfig::recb(8);
    config.kdf_iterations = 64;
    config
}

#[test]
fn tenant_share_edit_and_revoke() {
    let server = Arc::new(DocsServer::new());
    let mut alice =
        DocsMediator::with_rng(Arc::clone(&server), tenant_config(), CtrDrbg::from_seed(40));
    let mut bob =
        DocsMediator::with_rng(Arc::clone(&server), tenant_config(), CtrDrbg::from_seed(41));

    alice.tenant_register("alice", "alice's passphrase").unwrap();
    bob.tenant_register("bob", "bob's passphrase").unwrap();
    assert_eq!(alice.tenant_user(), Some("alice"));

    // No per-document password anywhere in this test.
    let doc_id = alice.tenant_create_document().unwrap();
    alice.save_full(&doc_id, "tenant shared secret").unwrap();
    assert_server_never_sees(&server, &doc_id, "secret");

    // Before the grant, bob fails closed.
    assert!(bob.open_document(&doc_id).is_err());

    // Grant travels as an invite code; the stored ciphertext must not
    // change by a single byte (zero re-encryption).
    let before = server.stored_content(&doc_id).unwrap();
    let code = alice.tenant_grant(&doc_id, "bob").unwrap();
    bob.tenant_accept(&doc_id, &code).unwrap();
    assert_eq!(server.stored_content(&doc_id).unwrap(), before);

    // Bob reads and edits.
    assert_eq!(bob.open_document(&doc_id).unwrap(), "tenant shared secret");
    let mut delta = Delta::builder();
    delta.retain(7).delete(6).insert("public");
    bob.save_delta(&doc_id, &delta.build()).unwrap();
    assert_eq!(bob.plaintext(&doc_id), Some("tenant public secret"));

    // Revoke is also byte-preserving, and a fresh session for bob now
    // fails closed (no cached key to fall back on).
    let before = server.stored_content(&doc_id).unwrap();
    assert!(alice.tenant_revoke(&doc_id, "bob").unwrap());
    assert_eq!(server.stored_content(&doc_id).unwrap(), before);
    let mut bob_later =
        DocsMediator::with_rng(Arc::clone(&server), tenant_config(), CtrDrbg::from_seed(42));
    bob_later.tenant_login("bob", "bob's passphrase").unwrap();
    assert!(bob_later.open_document(&doc_id).is_err());

    // Alice still reads the document bob edited.
    let mut alice_later =
        DocsMediator::with_rng(Arc::clone(&server), tenant_config(), CtrDrbg::from_seed(43));
    alice_later.tenant_login("alice", "alice's passphrase").unwrap();
    assert_eq!(alice_later.open_document(&doc_id).unwrap(), "tenant public secret");
}

#[test]
fn tenant_passphrase_rotation_keeps_documents() {
    let server = Arc::new(DocsServer::new());
    let mut alice =
        DocsMediator::with_rng(Arc::clone(&server), tenant_config(), CtrDrbg::from_seed(44));
    alice.tenant_register("alice", "old words").unwrap();
    let doc_id = alice.tenant_create_document().unwrap();
    alice.save_full(&doc_id, "survives rotation").unwrap();

    let before = server.stored_content(&doc_id).unwrap();
    let rewrapped = alice.tenant_passwd("alice", "old words", "new words").unwrap();
    assert_eq!(rewrapped, 1);
    // Rotation rewraps 40-byte records; the body bytes are untouched.
    assert_eq!(server.stored_content(&doc_id).unwrap(), before);

    let mut later =
        DocsMediator::with_rng(Arc::clone(&server), tenant_config(), CtrDrbg::from_seed(45));
    assert!(later.tenant_login("alice", "old words").is_err());
    later.tenant_login("alice", "new words").unwrap();
    assert_eq!(later.open_document(&doc_id).unwrap(), "survives rotation");
}
