//! Structural property tests for the IndexedSkipList.
//!
//! Two invariants the model-based tests cannot see from the outside:
//!
//! 1. **Span partition**: the forward links at *every* level partition the
//!    sequence, so each level's `span_blocks`/`span_weight` totals must
//!    equal `len_blocks()`/`total_weight()` exactly.
//! 2. **Locate oracle**: `locate(i)` must agree with a linear scan over
//!    the iterated blocks for every reachable character index.

use pe_indexlist::{BlockSeq, IndexedSkipList, Location, Weighted};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Block(Vec<u8>);

impl Weighted for Block {
    fn weight(&self) -> usize {
        self.0.len()
    }
}

/// An operation with positions drawn open-range; resolved modulo the
/// current size when applied, so every sequence is valid.
#[derive(Debug, Clone)]
enum RawOp {
    Insert { pos: usize, len: usize },
    Remove { pos: usize },
    Replace { pos: usize, len: usize },
}

fn raw_op() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        3 => (any::<usize>(), 1usize..=9).prop_map(|(pos, len)| RawOp::Insert { pos, len }),
        1 => any::<usize>().prop_map(|pos| RawOp::Remove { pos }),
        1 => (any::<usize>(), 1usize..=9).prop_map(|(pos, len)| RawOp::Replace { pos, len }),
    ]
}

/// Applies ops to a skip list, keeping a flat mirror of the block weights.
fn build(seed: u64, ops: &[RawOp]) -> (IndexedSkipList<Block>, Vec<usize>) {
    let mut list = IndexedSkipList::with_seed(seed);
    let mut weights: Vec<usize> = Vec::new();
    for (step, op) in ops.iter().enumerate() {
        let n = weights.len();
        match op {
            RawOp::Insert { pos, len } => {
                let pos = if n == 0 { 0 } else { pos % (n + 1) };
                list.insert(pos, Block(vec![step as u8; *len]));
                weights.insert(pos, *len);
            }
            RawOp::Remove { pos } if n > 0 => {
                let pos = pos % n;
                list.remove(pos);
                weights.remove(pos);
            }
            RawOp::Replace { pos, len } if n > 0 => {
                let pos = pos % n;
                list.replace(pos, Block(vec![step as u8; *len]));
                weights[pos] = *len;
            }
            _ => {}
        }
    }
    (list, weights)
}

/// Linear-scan oracle for `locate`: walk the weights, find the block
/// holding `char_index`.
fn locate_oracle(weights: &[usize], char_index: usize) -> Option<Location> {
    let mut remaining = char_index;
    for (block, &w) in weights.iter().enumerate() {
        if remaining < w {
            return Some(Location { block, offset: remaining });
        }
        remaining -= w;
    }
    None
}

proptest! {
    /// Invariant 1: every level's span sums equal the list totals.
    #[test]
    fn every_level_spans_partition_the_sequence(
        seed in any::<u64>(),
        ops in proptest::collection::vec(raw_op(), 0..120),
    ) {
        let (list, weights) = build(seed, &ops);
        prop_assert_eq!(list.len_blocks(), weights.len());
        prop_assert_eq!(list.total_weight(), weights.iter().sum::<usize>());
        for (level, (blocks, weight)) in list.level_span_totals().into_iter().enumerate() {
            prop_assert_eq!(
                (blocks, weight),
                (list.len_blocks(), list.total_weight()),
                "level {} span totals disagree with the list totals",
                level
            );
        }
        list.assert_invariants();
    }

    /// Invariant 2: locate agrees with the linear-scan oracle everywhere,
    /// including one past the end.
    #[test]
    fn locate_agrees_with_linear_scan(
        seed in any::<u64>(),
        ops in proptest::collection::vec(raw_op(), 0..60),
    ) {
        let (list, weights) = build(seed, &ops);
        let total = list.total_weight();
        for char_index in 0..=total {
            prop_assert_eq!(
                list.locate(char_index),
                locate_oracle(&weights, char_index),
                "locate({}) disagrees with the oracle",
                char_index
            );
        }
        prop_assert_eq!(list.locate(total + 1), None);
    }
}
