//! Property tests: both indexed structures must behave exactly like a
//! naive `Vec` under arbitrary operation sequences.

use pe_indexlist::{BlockSeq, IndexedAvlTree, IndexedSkipList, Weighted};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Block(Vec<u8>);

impl Weighted for Block {
    fn weight(&self) -> usize {
        self.0.len()
    }
}

/// A raw operation drawn by proptest; positions are resolved modulo the
/// current size so every drawn sequence is valid.
#[derive(Debug, Clone)]
enum RawOp {
    Insert { pos: usize, len: usize, fill: u8 },
    Remove { pos: usize },
    Replace { pos: usize, len: usize, fill: u8 },
    Locate { char_index: usize },
    WeightBefore { pos: usize },
}

fn raw_op() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        (any::<usize>(), 1usize..=8, any::<u8>())
            .prop_map(|(pos, len, fill)| RawOp::Insert { pos, len, fill }),
        any::<usize>().prop_map(|pos| RawOp::Remove { pos }),
        (any::<usize>(), 1usize..=8, any::<u8>())
            .prop_map(|(pos, len, fill)| RawOp::Replace { pos, len, fill }),
        any::<usize>().prop_map(|char_index| RawOp::Locate { char_index }),
        any::<usize>().prop_map(|pos| RawOp::WeightBefore { pos }),
    ]
}

/// Reference model.
#[derive(Debug, Default)]
struct Model {
    items: Vec<Block>,
}

impl Model {
    fn total_weight(&self) -> usize {
        self.items.iter().map(|b| b.0.len()).sum()
    }

    fn locate(&self, mut c: usize) -> Option<(usize, usize)> {
        for (i, item) in self.items.iter().enumerate() {
            if c < item.0.len() {
                return Some((i, c));
            }
            c -= item.0.len();
        }
        None
    }

    fn weight_before(&self, pos: usize) -> usize {
        self.items[..pos].iter().map(|b| b.0.len()).sum()
    }
}

fn run_ops<S: BlockSeq<Block>>(seq: &mut S, ops: &[RawOp]) {
    let mut model = Model::default();
    for op in ops {
        let n = model.items.len();
        match op {
            RawOp::Insert { pos, len, fill } => {
                let pos = if n == 0 { 0 } else { pos % (n + 1) };
                let block = Block(vec![*fill; *len]);
                seq.insert(pos, block.clone());
                model.items.insert(pos, block);
            }
            RawOp::Remove { pos } if n > 0 => {
                let pos = pos % n;
                assert_eq!(seq.remove(pos), model.items.remove(pos));
            }
            RawOp::Replace { pos, len, fill } if n > 0 => {
                let pos = pos % n;
                let block = Block(vec![fill.wrapping_add(1); *len]);
                let old = std::mem::replace(&mut model.items[pos], block.clone());
                assert_eq!(seq.replace(pos, block), old);
            }
            RawOp::Locate { char_index } => {
                let total = model.total_weight();
                let probe = if total == 0 { 0 } else { char_index % (total + 1) };
                let expect = model.locate(probe);
                let got = seq.locate(probe).map(|l| (l.block, l.offset));
                assert_eq!(got, expect, "locate({probe})");
            }
            RawOp::WeightBefore { pos } => {
                let pos = pos % (n + 1);
                assert_eq!(seq.weight_before(pos), model.weight_before(pos));
            }
            _ => {}
        }
        assert_eq!(seq.len_blocks(), model.items.len());
        assert_eq!(seq.total_weight(), model.total_weight());
    }
    // Final full scan.
    let collected: Vec<Block> = seq.iter().cloned().collect();
    assert_eq!(collected, model.items);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn skiplist_matches_model(
        ops in proptest::collection::vec(raw_op(), 1..120),
        seed in any::<u64>(),
    ) {
        let mut seq = IndexedSkipList::with_seed(seed);
        run_ops(&mut seq, &ops);
        seq.assert_invariants();
    }

    #[test]
    fn avl_matches_model(ops in proptest::collection::vec(raw_op(), 1..120)) {
        let mut seq = IndexedAvlTree::new();
        run_ops(&mut seq, &ops);
        seq.assert_invariants();
    }

    /// Both structures agree with each other on identical op sequences.
    #[test]
    fn structures_agree(
        ops in proptest::collection::vec(raw_op(), 1..80),
        seed in any::<u64>(),
    ) {
        let mut skiplist = IndexedSkipList::with_seed(seed);
        let mut avl = IndexedAvlTree::new();
        run_ops(&mut skiplist, &ops);
        run_ops(&mut avl, &ops);
        let a: Vec<Block> = skiplist.iter().cloned().collect();
        let b: Vec<Block> = avl.iter().cloned().collect();
        prop_assert_eq!(a, b);
    }
}
