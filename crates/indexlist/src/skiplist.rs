//! The paper's IndexedSkipList (§V-C, Figure 3, Algorithm 1), generalized
//! to weighted (variable-length) blocks.
//!
//! A classic Pugh skip list stores a sorted list and searches by key. The
//! IndexedSkipList instead associates a `skip_count` with every forward
//! pointer — here a pair *(blocks skipped, characters skipped)* — so the
//! structure is searched **by position**: either by block ordinal or by
//! character index. Find, Insert, and Delete all run in expected
//! `O(log n)` time in the number of blocks, matching the analysis the
//! paper inherits from Pugh's original algorithms.

use crate::{BlockSeq, Location, Weighted};

/// Maximum tower height; 2^32 blocks is far beyond any document size.
const MAX_LEVEL: usize = 32;

/// Sentinel index representing the NIL pointer at the end of every level.
const NIL: usize = usize::MAX;

/// A forward pointer: the paper's `forward[i].point_at` plus the
/// `skip_count` field, carried in both block and character units.
///
/// Spans are `u32` (a single link never covers more than 2^32 blocks or
/// characters — far beyond any document this system stores), which keeps
/// a link at 16 bytes and roughly halves the tower memory traffic on the
/// bulk-build and walk paths.
#[derive(Debug, Clone, Copy)]
struct Link {
    target: usize,
    /// Blocks skipped when following this link, counting the destination:
    /// `rank(target) - rank(source)`.
    span_blocks: u32,
    /// Characters skipped when following this link, counting the full
    /// destination block.
    span_weight: u32,
}

/// Narrows a span to the stored width, checked in debug builds.
#[inline]
fn span(n: usize) -> u32 {
    debug_assert!(n <= u32::MAX as usize, "span exceeds u32 range");
    n as u32
}

/// Tower heights ≤ this many links live inline in the arena node.
/// Heights are geometric with p = 1/2, so ~75% of nodes never touch the
/// heap — which keeps bulk loads ([`BlockSeq::extend_back`]) nearly
/// allocation-free.
const INLINE_LINKS: usize = 2;

const NIL_LINK: Link = Link { target: NIL, span_blocks: 0, span_weight: 0 };

/// The forward links of one node: the first [`INLINE_LINKS`] levels
/// inline, taller towers spilling the excess to a heap vector.
#[derive(Debug)]
struct Tower {
    height: u8,
    inline: [Link; INLINE_LINKS],
    /// Links at level `INLINE_LINKS..height`.
    spill: Vec<Link>,
}

impl Tower {
    fn new() -> Tower {
        Tower { height: 0, inline: [NIL_LINK; INLINE_LINKS], spill: Vec::new() }
    }

    fn len(&self) -> usize {
        self.height as usize
    }

    fn push(&mut self, link: Link) {
        let h = self.height as usize;
        if h < INLINE_LINKS {
            self.inline[h] = link;
        } else {
            self.spill.push(link);
        }
        self.height += 1;
    }

    fn pop(&mut self) {
        debug_assert!(self.height > 0);
        if self.height as usize > INLINE_LINKS {
            self.spill.pop();
        }
        self.height -= 1;
    }

    fn clear(&mut self) {
        self.height = 0;
        self.spill.clear();
    }

    fn get(&self, i: usize) -> Option<Link> {
        if i < self.height as usize {
            Some(self[i])
        } else {
            None
        }
    }
}

impl std::ops::Index<usize> for Tower {
    type Output = Link;

    fn index(&self, i: usize) -> &Link {
        assert!(i < self.height as usize, "level {i} out of range");
        if i < INLINE_LINKS {
            &self.inline[i]
        } else {
            &self.spill[i - INLINE_LINKS]
        }
    }
}

impl std::ops::IndexMut<usize> for Tower {
    fn index_mut(&mut self, i: usize) -> &mut Link {
        assert!(i < self.height as usize, "level {i} out of range");
        if i < INLINE_LINKS {
            &mut self.inline[i]
        } else {
            &mut self.spill[i - INLINE_LINKS]
        }
    }
}

#[derive(Debug)]
struct Node<T> {
    /// `None` only for the head sentinel and freed arena slots.
    value: Option<T>,
    forward: Tower,
}

/// SplitMix64: a tiny, high-quality PRNG for tower heights, embedded so the
/// data structure is deterministic given a seed.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The IndexedSkipList of §V-C: an order-statistic skip list over
/// variable-length blocks.
///
/// See the [crate docs](crate) and [`BlockSeq`] for the operation set.
/// Nodes live in an internal arena; removed slots are recycled.
///
/// # Example
///
/// ```
/// use pe_indexlist::{BlockSeq, IndexedSkipList, Weighted};
///
/// struct B(&'static str);
/// impl Weighted for B {
///     fn weight(&self) -> usize { self.0.len() }
/// }
///
/// let mut list = IndexedSkipList::with_seed(7);
/// for (i, text) in ["abc", "fgh", "ijk"].iter().enumerate() {
///     list.insert(i, B(text));
/// }
/// assert_eq!(list.total_weight(), 9);
/// assert_eq!(list.locate(5).map(|l| l.block), Some(1));
/// ```
#[derive(Debug)]
pub struct IndexedSkipList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<usize>,
    len_blocks: usize,
    total_weight: usize,
    /// Number of levels currently in use (head tower height), at least 1.
    level: usize,
    rng: SplitMix64,
}

impl<T: Weighted> Default for IndexedSkipList<T> {
    fn default() -> Self {
        IndexedSkipList::new()
    }
}

impl<T: Weighted> IndexedSkipList<T> {
    /// Creates an empty list with a fixed default seed (deterministic).
    pub fn new() -> IndexedSkipList<T> {
        IndexedSkipList::with_seed(0x5eed_feed_cafe_f00d)
    }

    /// Creates an empty list whose tower heights are drawn from the given
    /// seed, making the structure fully reproducible.
    pub fn with_seed(seed: u64) -> IndexedSkipList<T> {
        let mut forward = Tower::new();
        forward.push(NIL_LINK);
        let head = Node { value: None, forward };
        IndexedSkipList {
            nodes: vec![head],
            free: Vec::new(),
            len_blocks: 0,
            total_weight: 0,
            level: 1,
            rng: SplitMix64(seed),
        }
    }

    /// Draws a tower height with geometric distribution (p = 1/2).
    fn random_level(&mut self) -> usize {
        let bits = self.rng.next();
        ((bits.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    /// Walks to the node of block-rank `rank` (head has rank 0), recording
    /// for every level the node where the walk descended and that node's
    /// cumulative (blocks, weight) rank.
    ///
    /// Returns `(update, ranks)` where `update[i]` is the node index and
    /// `ranks[i]` the (blocks, weight) rank of `update[i]`.
    fn walk_to_rank(&self, rank: usize) -> (Vec<usize>, Vec<(usize, usize)>) {
        let mut update = vec![0usize; self.level];
        let mut ranks = vec![(0usize, 0usize); self.level];
        let mut x = 0usize;
        let mut remaining = rank;
        let mut acc_blocks = 0usize;
        let mut acc_weight = 0usize;
        for i in (0..self.level).rev() {
            loop {
                let link = self.nodes[x].forward[i];
                if link.target == NIL || link.span_blocks as usize > remaining {
                    break;
                }
                remaining -= link.span_blocks as usize;
                acc_blocks += link.span_blocks as usize;
                acc_weight += link.span_weight as usize;
                x = link.target;
            }
            update[i] = x;
            ranks[i] = (acc_blocks, acc_weight);
        }
        debug_assert_eq!(remaining, 0, "rank walk must land exactly");
        (update, ranks)
    }

    /// Allocates a node in the arena, reusing freed slots.
    fn alloc(&mut self, value: T, _levels: usize) -> usize {
        let node = Node { value: Some(value), forward: Tower::new() };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Sums `(span_blocks, span_weight)` along the forward chain of each
    /// level, from the head to NIL. For a consistent list every level's
    /// totals equal `(len_blocks, total_weight)` — the links at level `i`
    /// partition the sequence, whatever subset of nodes reaches level `i`.
    /// Intended for tests; O(n · level).
    #[doc(hidden)]
    pub fn level_span_totals(&self) -> Vec<(usize, usize)> {
        (0..self.level)
            .map(|i| {
                let mut x = 0usize;
                let (mut blocks, mut weight) = (0usize, 0usize);
                loop {
                    let link = self.nodes[x].forward[i];
                    blocks += link.span_blocks as usize;
                    weight += link.span_weight as usize;
                    if link.target == NIL {
                        break;
                    }
                    x = link.target;
                }
                (blocks, weight)
            })
            .collect()
    }

    /// Verifies every structural invariant (span consistency at all
    /// levels, length/weight accounting). Intended for tests; O(n · level).
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        // Collect level-0 order and per-node (rank, weight-rank).
        let mut order = Vec::new();
        let mut x = 0usize;
        let mut rank_of = std::collections::HashMap::new();
        rank_of.insert(0usize, (0usize, 0usize));
        let mut blocks = 0usize;
        let mut weight = 0usize;
        loop {
            let link = self.nodes[x].forward[0];
            assert_eq!(
                link.span_blocks as usize,
                if link.target == NIL { self.len_blocks - blocks } else { 1 }
            );
            if link.target == NIL {
                assert_eq!(link.span_weight as usize, self.total_weight - weight);
                break;
            }
            x = link.target;
            let w = self.nodes[x].value.as_ref().expect("live node has a value").weight();
            assert_eq!(
                link.span_weight as usize,
                w,
                "level-0 span must equal destination weight"
            );
            blocks += 1;
            weight += w;
            rank_of.insert(x, (blocks, weight));
            order.push(x);
        }
        assert_eq!(blocks, self.len_blocks, "block count must match");
        assert_eq!(weight, self.total_weight, "weight must match");
        // Every level must chain through increasing ranks with exact spans.
        for i in 0..self.level {
            let mut x = 0usize;
            loop {
                let link = self.nodes[x]
                    .forward
                    .get(i)
                    .unwrap_or_else(|| panic!("node on chain missing level {i}"));
                let (rb, rw) = rank_of[&x];
                if link.target == NIL {
                    assert_eq!(link.span_blocks as usize, self.len_blocks - rb);
                    assert_eq!(link.span_weight as usize, self.total_weight - rw);
                    break;
                }
                let (tb, tw) = rank_of[&link.target];
                assert_eq!(link.span_blocks as usize, tb - rb, "span_blocks at level {i}");
                assert_eq!(link.span_weight as usize, tw - rw, "span_weight at level {i}");
                x = link.target;
            }
        }
    }
}

impl<T: Weighted> BlockSeq<T> for IndexedSkipList<T> {
    fn len_blocks(&self) -> usize {
        self.len_blocks
    }

    fn total_weight(&self) -> usize {
        self.total_weight
    }

    fn get(&self, ordinal: usize) -> Option<&T> {
        if ordinal >= self.len_blocks {
            return None;
        }
        let (update, _) = self.walk_to_rank(ordinal);
        let target = self.nodes[update[0]].forward[0].target;
        self.nodes[target].value.as_ref()
    }

    fn insert(&mut self, ordinal: usize, value: T) {
        assert!(ordinal <= self.len_blocks, "insert ordinal {ordinal} out of range");
        let w = value.weight();
        assert!(w > 0, "blocks must have positive weight");
        let lvl = self.random_level();
        if lvl > self.level {
            // Grow the head tower; new levels span the whole list.
            for _ in self.level..lvl {
                self.nodes[0].forward.push(Link {
                    target: NIL,
                    span_blocks: span(self.len_blocks),
                    span_weight: span(self.total_weight),
                });
            }
            self.level = lvl;
        }
        let (update, ranks) = self.walk_to_rank(ordinal);
        let wk = ranks[0].1; // weight of blocks before the insertion point
        let new_idx = self.alloc(value, lvl);
        for i in 0..lvl {
            let u = update[i];
            let old = self.nodes[u].forward[i];
            let nb = span(ordinal + 1 - ranks[i].0);
            let nw = span(wk + w - ranks[i].1);
            let out_link = Link {
                target: old.target,
                span_blocks: old.span_blocks - (nb - 1),
                span_weight: old.span_weight - (nw - span(w)),
            };
            self.nodes[new_idx].forward.push(out_link);
            self.nodes[u].forward[i] =
                Link { target: new_idx, span_blocks: nb, span_weight: nw };
        }
        for (i, &u) in update.iter().enumerate().skip(lvl) {
            self.nodes[u].forward[i].span_blocks += 1;
            self.nodes[u].forward[i].span_weight += span(w);
        }
        self.len_blocks += 1;
        self.total_weight += w;
    }

    /// Bulk append: one walk to the end seeds per-level tail pointers,
    /// then every item links in without a position search (and without
    /// the two per-insert rank vectors [`insert`](BlockSeq::insert)
    /// allocates). Tail links — the per-level links that run past the
    /// end of the list — carry placeholder spans during the loop and are
    /// patched in one pass at the end, so each item costs `O(its own
    /// tower height)` instead of `O(list height)`. Draws tower heights
    /// in the same order as sequential end-inserts, so the resulting
    /// structure is identical.
    fn extend_back(&mut self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        self.nodes.reserve(items.len().saturating_sub(self.free.len()));
        let (mut update, mut ranks) = self.walk_to_rank(self.len_blocks);
        for value in items {
            let w = value.weight();
            assert!(w > 0, "blocks must have positive weight");
            let lvl = self.random_level();
            if lvl > self.level {
                for _ in self.level..lvl {
                    // Placeholder span; the final fixup below rewrites it.
                    self.nodes[0].forward.push(Link {
                        target: NIL,
                        span_blocks: 0,
                        span_weight: 0,
                    });
                }
                self.level = lvl;
                update.resize(self.level, 0);
                ranks.resize(self.level, (0, 0));
            }
            let ordinal = self.len_blocks;
            let wk = self.total_weight;
            let new_idx = self.alloc(value, lvl);
            for i in 0..lvl {
                let u = update[i];
                debug_assert_eq!(
                    self.nodes[u].forward[i].target,
                    NIL,
                    "tail links point past the end"
                );
                self.nodes[new_idx].forward.push(Link {
                    target: NIL,
                    span_blocks: 0,
                    span_weight: 0,
                });
                self.nodes[u].forward[i] = Link {
                    target: new_idx,
                    span_blocks: span(ordinal + 1 - ranks[i].0),
                    span_weight: span(wk + w - ranks[i].1),
                };
                update[i] = new_idx;
                ranks[i] = (ordinal + 1, wk + w);
            }
            self.len_blocks += 1;
            self.total_weight += w;
        }
        // Patch every tail link: it spans from its node to the (new) end.
        for i in 0..self.level {
            self.nodes[update[i]].forward[i] = Link {
                target: NIL,
                span_blocks: span(self.len_blocks - ranks[i].0),
                span_weight: span(self.total_weight - ranks[i].1),
            };
        }
    }

    fn remove(&mut self, ordinal: usize) -> T {
        assert!(ordinal < self.len_blocks, "remove ordinal {ordinal} out of range");
        let (update, _) = self.walk_to_rank(ordinal);
        let target = self.nodes[update[0]].forward[0].target;
        debug_assert_ne!(target, NIL);
        let w = self.nodes[target].value.as_ref().expect("live node").weight();
        let target_levels = self.nodes[target].forward.len();
        for (i, &u) in update.iter().enumerate() {
            if i < target_levels && self.nodes[u].forward[i].target == target {
                let t_link = self.nodes[target].forward[i];
                let u_link = &mut self.nodes[u].forward[i];
                u_link.target = t_link.target;
                u_link.span_blocks += t_link.span_blocks;
                u_link.span_weight += t_link.span_weight;
                u_link.span_blocks -= 1;
                u_link.span_weight -= span(w);
            } else {
                let u_link = &mut self.nodes[u].forward[i];
                u_link.span_blocks -= 1;
                u_link.span_weight -= span(w);
            }
        }
        // Shrink unused levels (keep at least one).
        while self.level > 1 && self.nodes[0].forward[self.level - 1].target == NIL {
            self.nodes[0].forward.pop();
            self.level -= 1;
        }
        self.len_blocks -= 1;
        self.total_weight -= w;
        let value = self.nodes[target].value.take().expect("live node");
        self.nodes[target].forward.clear();
        self.free.push(target);
        value
    }

    fn replace(&mut self, ordinal: usize, value: T) -> T {
        assert!(ordinal < self.len_blocks, "replace ordinal {ordinal} out of range");
        let new_w = value.weight();
        assert!(new_w > 0, "blocks must have positive weight");
        let (update, _) = self.walk_to_rank(ordinal);
        let target = self.nodes[update[0]].forward[0].target;
        let old_w = self.nodes[target].value.as_ref().expect("live node").weight();
        if new_w != old_w {
            // Exactly one link per level covers the target block; it is the
            // link leaving update[i].
            for (i, &u) in update.iter().enumerate() {
                let u_link = &mut self.nodes[u].forward[i];
                u_link.span_weight = u_link.span_weight + span(new_w) - span(old_w);
            }
            self.total_weight = self.total_weight + new_w - old_w;
        }
        self.nodes[target].value.replace(value).expect("live node")
    }

    fn locate(&self, char_index: usize) -> Option<Location> {
        if char_index >= self.total_weight {
            return None;
        }
        // Algorithm 1 of the paper, with weights as the skip counts.
        let mut x = 0usize;
        let mut remaining = char_index;
        let mut acc_blocks = 0usize;
        for i in (0..self.level).rev() {
            loop {
                let link = self.nodes[x].forward[i];
                if link.target == NIL || link.span_weight as usize > remaining {
                    break;
                }
                remaining -= link.span_weight as usize;
                acc_blocks += link.span_blocks as usize;
                x = link.target;
            }
        }
        Some(Location { block: acc_blocks, offset: remaining })
    }

    fn weight_before(&self, ordinal: usize) -> usize {
        assert!(ordinal <= self.len_blocks, "ordinal {ordinal} out of range");
        let (_, ranks) = self.walk_to_rank(ordinal);
        ranks[0].1
    }

    fn iter_from(&self, ordinal: usize) -> Box<dyn Iterator<Item = &T> + '_> {
        let start = if ordinal >= self.len_blocks {
            NIL
        } else {
            let (update, _) = self.walk_to_rank(ordinal);
            self.nodes[update[0]].forward[0].target
        };
        Box::new(Iter { list: self, cursor: start })
    }
}

struct Iter<'a, T> {
    list: &'a IndexedSkipList<T>,
    cursor: usize,
}

impl<'a, T: Weighted> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cursor];
        self.cursor = node.forward[0].target;
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecModel;

    #[derive(Debug, Clone, PartialEq)]
    struct B(String);

    impl Weighted for B {
        fn weight(&self) -> usize {
            self.0.len()
        }
    }

    fn b(s: &str) -> B {
        B(s.to_string())
    }

    fn contents(list: &IndexedSkipList<B>) -> String {
        list.iter().map(|blk| blk.0.as_str()).collect()
    }

    #[test]
    fn empty_list() {
        let list: IndexedSkipList<B> = IndexedSkipList::new();
        assert_eq!(list.len_blocks(), 0);
        assert_eq!(list.total_weight(), 0);
        assert!(list.is_empty());
        assert_eq!(list.locate(0), None);
        assert_eq!(list.get(0), None);
        list.assert_invariants();
    }

    #[test]
    fn paper_figure3_insertion() {
        // Figure 3: insert "xy" at index 3 of "abcfghijk" (blocks abc, fgh, ijk).
        let mut list = IndexedSkipList::with_seed(11);
        list.insert(0, b("abc"));
        list.insert(1, b("fgh"));
        list.insert(2, b("ijk"));
        let loc = list.locate(3).unwrap();
        assert_eq!(loc, Location { block: 1, offset: 0 });
        list.insert(loc.block, b("xy"));
        assert_eq!(contents(&list), "abcxyfghijk");
        list.assert_invariants();
    }

    #[test]
    fn sequential_appends() {
        let mut list = IndexedSkipList::with_seed(1);
        for i in 0..100 {
            list.insert(i, b(&format!("{i:03}")));
            list.assert_invariants();
        }
        assert_eq!(list.len_blocks(), 100);
        assert_eq!(list.total_weight(), 300);
        for i in 0..100 {
            assert_eq!(list.get(i).unwrap().0, format!("{i:03}"));
        }
    }

    #[test]
    fn front_inserts_reverse_order() {
        let mut list = IndexedSkipList::with_seed(2);
        for i in 0..50 {
            list.insert(0, b(&format!("{i}")));
        }
        let texts: Vec<_> = list.iter().map(|blk| blk.0.clone()).collect();
        let expect: Vec<_> = (0..50).rev().map(|i| format!("{i}")).collect();
        assert_eq!(texts, expect);
        list.assert_invariants();
    }

    #[test]
    fn locate_every_char() {
        let mut list = IndexedSkipList::with_seed(3);
        let words = ["a", "bc", "def", "ghij", "klmno"];
        for (i, word) in words.iter().enumerate() {
            list.insert(i, b(word));
        }
        let flat: String = words.concat();
        for (c, expected_char) in flat.chars().enumerate() {
            let loc = list.locate(c).unwrap();
            let block = list.get(loc.block).unwrap();
            assert_eq!(block.0.as_bytes()[loc.offset] as char, expected_char);
        }
        assert_eq!(list.locate(flat.len()), None);
    }

    #[test]
    fn remove_middle_and_ends() {
        let mut list = IndexedSkipList::with_seed(4);
        for (i, word) in ["aa", "bb", "cc", "dd", "ee"].iter().enumerate() {
            list.insert(i, b(word));
        }
        assert_eq!(list.remove(2).0, "cc");
        list.assert_invariants();
        assert_eq!(list.remove(0).0, "aa");
        list.assert_invariants();
        assert_eq!(list.remove(list.len_blocks() - 1).0, "ee");
        list.assert_invariants();
        assert_eq!(contents(&list), "bbdd");
        assert_eq!(list.total_weight(), 4);
    }

    #[test]
    fn replace_changes_weight() {
        let mut list = IndexedSkipList::with_seed(5);
        for (i, word) in ["aa", "bb", "cc"].iter().enumerate() {
            list.insert(i, b(word));
        }
        let old = list.replace(1, b("XYZW"));
        assert_eq!(old.0, "bb");
        assert_eq!(list.total_weight(), 8);
        assert_eq!(list.locate(5).unwrap(), Location { block: 1, offset: 3 });
        assert_eq!(list.locate(6).unwrap(), Location { block: 2, offset: 0 });
        list.assert_invariants();
    }

    #[test]
    fn weight_before_matches_prefix_sums() {
        let mut list = IndexedSkipList::with_seed(6);
        let words = ["q", "we", "rty", "uiop"];
        for (i, word) in words.iter().enumerate() {
            list.insert(i, b(word));
        }
        let mut acc = 0;
        for (i, word) in words.iter().enumerate() {
            assert_eq!(list.weight_before(i), acc);
            acc += word.len();
        }
        assert_eq!(list.weight_before(words.len()), acc);
    }

    #[test]
    fn iter_from_offsets() {
        let mut list = IndexedSkipList::with_seed(7);
        for (i, word) in ["ab", "cd", "ef"].iter().enumerate() {
            list.insert(i, b(word));
        }
        let tail: String = list.iter_from(1).map(|blk| blk.0.clone()).collect();
        assert_eq!(tail, "cdef");
        assert_eq!(list.iter_from(3).count(), 0);
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut list = IndexedSkipList::with_seed(8);
        for round in 0..10 {
            for i in 0..20 {
                list.insert(i, b(&format!("r{round}i{i}")));
            }
            for _ in 0..20 {
                list.remove(0);
            }
        }
        assert!(list.is_empty());
        // The arena should not have grown linearly with total insertions.
        assert!(list.nodes.len() <= 22, "arena grew to {}", list.nodes.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_past_end_panics() {
        let mut list = IndexedSkipList::new();
        list.insert(1, b("x"));
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_block_panics() {
        let mut list = IndexedSkipList::new();
        list.insert(0, b(""));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remove_from_empty_panics() {
        let mut list: IndexedSkipList<B> = IndexedSkipList::new();
        list.remove(0);
    }

    #[test]
    fn extend_back_matches_sequential_inserts() {
        // Same seed → same tower heights → structurally identical lists.
        let words: Vec<B> = (0..500).map(|i| b(&format!("{:03}", i % 300))).collect();
        let mut bulk = IndexedSkipList::with_seed(77);
        bulk.extend_back(words.clone());
        let mut serial = IndexedSkipList::with_seed(77);
        for (i, word) in words.iter().cloned().enumerate() {
            serial.insert(i, word);
        }
        bulk.assert_invariants();
        assert_eq!(contents(&bulk), contents(&serial));
        assert_eq!(bulk.level_span_totals(), serial.level_span_totals());
        assert_eq!(bulk.len_blocks(), 500);
        // Appending to a non-empty list continues the same structure.
        let mut grown = IndexedSkipList::with_seed(77);
        grown.extend_back(words[..100].to_vec());
        grown.extend_back(words[100..].to_vec());
        grown.assert_invariants();
        assert_eq!(contents(&grown), contents(&serial));
        assert_eq!(grown.level_span_totals(), serial.level_span_totals());
    }

    #[test]
    fn extend_back_empty_is_noop() {
        let mut list: IndexedSkipList<B> = IndexedSkipList::with_seed(1);
        list.extend_back(Vec::new());
        assert!(list.is_empty());
        list.insert(0, b("x"));
        list.extend_back(Vec::new());
        assert_eq!(list.len_blocks(), 1);
        list.assert_invariants();
    }

    /// Randomized cross-check against the Vec reference model.
    #[test]
    fn randomized_against_model() {
        let mut rng = SplitMix64(0xfeed);
        for seed in 0..8u64 {
            let mut list = IndexedSkipList::with_seed(seed);
            let mut model: VecModel<B> = VecModel::new();
            for step in 0..400 {
                let r = rng.next();
                let n = model.len_blocks();
                match r % 4 {
                    0 | 1 => {
                        let pos = if n == 0 { 0 } else { (r >> 8) as usize % (n + 1) };
                        let len = 1 + ((r >> 40) as usize % 8);
                        let text: String =
                            (0..len).map(|k| (b'a' + ((r >> k) % 26) as u8) as char).collect();
                        list.insert(pos, b(&text));
                        model.insert(pos, b(&text));
                    }
                    2 if n > 0 => {
                        let pos = (r >> 8) as usize % n;
                        assert_eq!(list.remove(pos), model.remove(pos));
                    }
                    3 if n > 0 => {
                        let pos = (r >> 8) as usize % n;
                        let len = 1 + ((r >> 40) as usize % 8);
                        let text: String =
                            (0..len).map(|k| (b'z' - ((r >> k) % 26) as u8) as char).collect();
                        assert_eq!(list.replace(pos, b(&text)), model.replace(pos, b(&text)));
                    }
                    _ => {}
                }
                assert_eq!(list.len_blocks(), model.len_blocks());
                assert_eq!(list.total_weight(), model.total_weight());
                if step % 20 == 0 {
                    list.assert_invariants();
                    let w = model.total_weight();
                    for probe in [0, w / 3, w / 2, w.saturating_sub(1)] {
                        assert_eq!(list.locate(probe), model.locate(probe), "locate {probe}");
                    }
                    for ord in 0..model.len_blocks() {
                        assert_eq!(list.get(ord), model.get(ord));
                    }
                }
            }
            list.assert_invariants();
        }
    }
}
