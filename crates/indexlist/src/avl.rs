//! IndexedAvlTree: the deterministic balanced-tree alternative to the
//! IndexedSkipList suggested in §V-C of the paper ("the idea of indexing
//! could also be applied to any of the well-known balanced tree data
//! structures").
//!
//! Every node stores subtree aggregates *(block count, character weight)*
//! so the tree supports lookup by block ordinal and by character index,
//! plus rank-addressed insert/remove/replace — all in worst-case
//! `O(log n)`. Used by the ablation benchmarks to compare against the
//! probabilistic skip list.

use crate::{BlockSeq, Location, Weighted};

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<T> {
    /// `None` only for freed arena slots.
    value: Option<T>,
    left: usize,
    right: usize,
    height: i32,
    /// Number of blocks in this subtree (including this node).
    sub_blocks: usize,
    /// Total character weight of this subtree (including this node).
    sub_weight: usize,
}

/// A rank-indexed AVL tree over weighted blocks.
///
/// # Example
///
/// ```
/// use pe_indexlist::{BlockSeq, IndexedAvlTree, Weighted};
///
/// struct B(&'static str);
/// impl Weighted for B {
///     fn weight(&self) -> usize { self.0.len() }
/// }
///
/// let mut tree = IndexedAvlTree::new();
/// tree.insert(0, B("hello "));
/// tree.insert(1, B("world"));
/// assert_eq!(tree.total_weight(), 11);
/// assert_eq!(tree.locate(6).map(|l| l.block), Some(1));
/// ```
#[derive(Debug)]
pub struct IndexedAvlTree<T> {
    nodes: Vec<Node<T>>,
    free: Vec<usize>,
    root: usize,
}

impl<T: Weighted> Default for IndexedAvlTree<T> {
    fn default() -> Self {
        IndexedAvlTree::new()
    }
}

impl<T: Weighted> IndexedAvlTree<T> {
    /// Creates an empty tree.
    pub fn new() -> IndexedAvlTree<T> {
        IndexedAvlTree { nodes: Vec::new(), free: Vec::new(), root: NIL }
    }

    fn height(&self, n: usize) -> i32 {
        if n == NIL {
            0
        } else {
            self.nodes[n].height
        }
    }

    fn blocks(&self, n: usize) -> usize {
        if n == NIL {
            0
        } else {
            self.nodes[n].sub_blocks
        }
    }

    fn weight(&self, n: usize) -> usize {
        if n == NIL {
            0
        } else {
            self.nodes[n].sub_weight
        }
    }

    fn val(&self, n: usize) -> &T {
        self.nodes[n].value.as_ref().expect("live node has a value")
    }

    fn update(&mut self, n: usize) {
        let (l, r) = (self.nodes[n].left, self.nodes[n].right);
        self.nodes[n].height = 1 + self.height(l).max(self.height(r));
        self.nodes[n].sub_blocks = 1 + self.blocks(l) + self.blocks(r);
        self.nodes[n].sub_weight = self.val(n).weight() + self.weight(l) + self.weight(r);
    }

    fn balance_factor(&self, n: usize) -> i32 {
        self.height(self.nodes[n].left) - self.height(self.nodes[n].right)
    }

    fn rotate_right(&mut self, y: usize) -> usize {
        let x = self.nodes[y].left;
        let t2 = self.nodes[x].right;
        self.nodes[x].right = y;
        self.nodes[y].left = t2;
        self.update(y);
        self.update(x);
        x
    }

    fn rotate_left(&mut self, x: usize) -> usize {
        let y = self.nodes[x].right;
        let t2 = self.nodes[y].left;
        self.nodes[y].left = x;
        self.nodes[x].right = t2;
        self.update(x);
        self.update(y);
        y
    }

    fn rebalance(&mut self, n: usize) -> usize {
        self.update(n);
        let bf = self.balance_factor(n);
        if bf > 1 {
            if self.balance_factor(self.nodes[n].left) < 0 {
                let new_left = self.rotate_left(self.nodes[n].left);
                self.nodes[n].left = new_left;
            }
            self.rotate_right(n)
        } else if bf < -1 {
            if self.balance_factor(self.nodes[n].right) > 0 {
                let new_right = self.rotate_right(self.nodes[n].right);
                self.nodes[n].right = new_right;
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    fn alloc(&mut self, value: T) -> usize {
        let node = Node {
            value: Some(value),
            left: NIL,
            right: NIL,
            height: 1,
            sub_blocks: 1,
            sub_weight: 0, // set by update()
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.update(idx);
        idx
    }

    fn insert_at(&mut self, n: usize, rank: usize, value: T) -> usize {
        if n == NIL {
            debug_assert_eq!(rank, 0);
            return self.alloc(value);
        }
        let left_count = self.blocks(self.nodes[n].left);
        if rank <= left_count {
            let new_left = self.insert_at(self.nodes[n].left, rank, value);
            self.nodes[n].left = new_left;
        } else {
            let new_right =
                self.insert_at(self.nodes[n].right, rank - left_count - 1, value);
            self.nodes[n].right = new_right;
        }
        self.rebalance(n)
    }

    /// Removes the leftmost node of subtree `n`; returns (new subtree root,
    /// detached node index).
    fn take_min(&mut self, n: usize) -> (usize, usize) {
        if self.nodes[n].left == NIL {
            let detached = n;
            let right = self.nodes[n].right;
            return (right, detached);
        }
        let (new_left, detached) = self.take_min(self.nodes[n].left);
        self.nodes[n].left = new_left;
        (self.rebalance(n), detached)
    }

    fn remove_at(&mut self, n: usize, rank: usize) -> (usize, usize) {
        debug_assert_ne!(n, NIL);
        let left_count = self.blocks(self.nodes[n].left);
        if rank < left_count {
            let (new_left, removed) = self.remove_at(self.nodes[n].left, rank);
            self.nodes[n].left = new_left;
            (self.rebalance(n), removed)
        } else if rank > left_count {
            let (new_right, removed) =
                self.remove_at(self.nodes[n].right, rank - left_count - 1);
            self.nodes[n].right = new_right;
            (self.rebalance(n), removed)
        } else {
            // Remove this node.
            let (left, right) = (self.nodes[n].left, self.nodes[n].right);
            if right == NIL {
                (left, n)
            } else {
                let (new_right, successor) = self.take_min(right);
                self.nodes[successor].left = left;
                self.nodes[successor].right = new_right;
                (self.rebalance(successor), n)
            }
        }
    }

    /// Verifies AVL balance and aggregate invariants. Test helper.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        fn check<T: Weighted>(tree: &IndexedAvlTree<T>, n: usize) -> (i32, usize, usize) {
            if n == NIL {
                return (0, 0, 0);
            }
            let node = &tree.nodes[n];
            let (lh, lb, lw) = check(tree, node.left);
            let (rh, rb, rw) = check(tree, node.right);
            assert!((lh - rh).abs() <= 1, "AVL balance violated");
            let h = 1 + lh.max(rh);
            assert_eq!(node.height, h, "height aggregate wrong");
            assert_eq!(node.sub_blocks, 1 + lb + rb, "block aggregate wrong");
            let own = node.value.as_ref().expect("live node").weight();
            assert_eq!(node.sub_weight, own + lw + rw, "weight aggregate wrong");
            (h, node.sub_blocks, node.sub_weight)
        }
        check(self, self.root);
    }
}

impl<T: Weighted> BlockSeq<T> for IndexedAvlTree<T> {
    fn len_blocks(&self) -> usize {
        self.blocks(self.root)
    }

    fn total_weight(&self) -> usize {
        self.weight(self.root)
    }

    fn get(&self, ordinal: usize) -> Option<&T> {
        if ordinal >= self.len_blocks() {
            return None;
        }
        let mut n = self.root;
        let mut rank = ordinal;
        loop {
            let left_count = self.blocks(self.nodes[n].left);
            if rank < left_count {
                n = self.nodes[n].left;
            } else if rank > left_count {
                rank -= left_count + 1;
                n = self.nodes[n].right;
            } else {
                return Some(self.val(n));
            }
        }
    }

    fn insert(&mut self, ordinal: usize, value: T) {
        assert!(ordinal <= self.len_blocks(), "insert ordinal {ordinal} out of range");
        assert!(value.weight() > 0, "blocks must have positive weight");
        self.root = self.insert_at(self.root, ordinal, value);
    }

    fn remove(&mut self, ordinal: usize) -> T {
        assert!(ordinal < self.len_blocks(), "remove ordinal {ordinal} out of range");
        let (new_root, removed) = self.remove_at(self.root, ordinal);
        self.root = new_root;
        let value = self.nodes[removed].value.take().expect("live node");
        self.free.push(removed);
        value
    }

    fn replace(&mut self, ordinal: usize, value: T) -> T {
        assert!(ordinal < self.len_blocks(), "replace ordinal {ordinal} out of range");
        assert!(value.weight() > 0, "blocks must have positive weight");
        // Descend recording the path so aggregates can be fixed afterwards.
        let mut path = Vec::new();
        let mut n = self.root;
        let mut rank = ordinal;
        loop {
            path.push(n);
            let left_count = self.blocks(self.nodes[n].left);
            if rank < left_count {
                n = self.nodes[n].left;
            } else if rank > left_count {
                rank -= left_count + 1;
                n = self.nodes[n].right;
            } else {
                break;
            }
        }
        let old = self.nodes[n].value.replace(value).expect("live node");
        for &p in path.iter().rev() {
            self.update(p);
        }
        old
    }

    fn locate(&self, char_index: usize) -> Option<Location> {
        if char_index >= self.total_weight() {
            return None;
        }
        let mut n = self.root;
        let mut c = char_index;
        let mut acc_blocks = 0;
        loop {
            let left = self.nodes[n].left;
            let lw = self.weight(left);
            if c < lw {
                n = left;
            } else {
                let own = self.val(n).weight();
                if c < lw + own {
                    return Some(Location {
                        block: acc_blocks + self.blocks(left),
                        offset: c - lw,
                    });
                }
                c -= lw + own;
                acc_blocks += self.blocks(left) + 1;
                n = self.nodes[n].right;
            }
        }
    }

    fn weight_before(&self, ordinal: usize) -> usize {
        assert!(ordinal <= self.len_blocks(), "ordinal {ordinal} out of range");
        let mut n = self.root;
        let mut rank = ordinal;
        let mut acc = 0;
        while n != NIL {
            let left = self.nodes[n].left;
            let left_count = self.blocks(left);
            if rank < left_count {
                n = left;
            } else if rank > left_count {
                acc += self.weight(left) + self.val(n).weight();
                rank -= left_count + 1;
                n = self.nodes[n].right;
            } else {
                return acc + self.weight(left);
            }
        }
        acc
    }

    fn iter_from(&self, ordinal: usize) -> Box<dyn Iterator<Item = &T> + '_> {
        // Build the initial stack for an in-order traversal starting at
        // `ordinal`.
        let mut stack = Vec::new();
        let mut n = self.root;
        let mut rank = ordinal.min(self.len_blocks());
        if ordinal >= self.len_blocks() {
            return Box::new(AvlIter { tree: self, stack: Vec::new() });
        }
        while n != NIL {
            let left_count = self.blocks(self.nodes[n].left);
            if rank < left_count {
                stack.push(n);
                n = self.nodes[n].left;
            } else if rank > left_count {
                rank -= left_count + 1;
                n = self.nodes[n].right;
            } else {
                stack.push(n);
                break;
            }
        }
        Box::new(AvlIter { tree: self, stack })
    }
}

struct AvlIter<'a, T> {
    tree: &'a IndexedAvlTree<T>,
    /// Stack of nodes whose value is still to be yielded (the classic
    /// in-order iterator stack).
    stack: Vec<usize>,
}

impl<'a, T: Weighted> Iterator for AvlIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let n = self.stack.pop()?;
        // After yielding n, push the leftmost spine of its right child.
        let mut child = self.tree.nodes[n].right;
        while child != NIL {
            self.stack.push(child);
            child = self.tree.nodes[child].left;
        }
        self.tree.nodes[n].value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VecModel;

    #[derive(Debug, Clone, PartialEq)]
    struct B(String);

    impl Weighted for B {
        fn weight(&self) -> usize {
            self.0.len()
        }
    }

    fn b(s: &str) -> B {
        B(s.to_string())
    }

    fn contents(tree: &IndexedAvlTree<B>) -> String {
        tree.iter().map(|blk| blk.0.as_str()).collect()
    }

    #[test]
    fn empty_tree() {
        let tree: IndexedAvlTree<B> = IndexedAvlTree::new();
        assert_eq!(tree.len_blocks(), 0);
        assert_eq!(tree.total_weight(), 0);
        assert!(tree.is_empty());
        assert_eq!(tree.locate(0), None);
        assert_eq!(tree.get(0), None);
        tree.assert_invariants();
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let mut tree = IndexedAvlTree::new();
        for i in 0..1000 {
            tree.insert(i, b("x"));
        }
        tree.assert_invariants();
        // A balanced tree over 1000 nodes has height <= 1.44*log2(1001)+1 ~ 15.
        assert!(tree.height(tree.root) <= 15, "height {}", tree.height(tree.root));
    }

    #[test]
    fn descending_inserts_stay_balanced() {
        let mut tree = IndexedAvlTree::new();
        for _ in 0..1000 {
            tree.insert(0, b("x"));
        }
        tree.assert_invariants();
        assert!(tree.height(tree.root) <= 15);
    }

    #[test]
    fn in_order_iteration() {
        let mut tree = IndexedAvlTree::new();
        for (i, word) in ["ab", "cd", "ef", "gh"].iter().enumerate() {
            tree.insert(i, b(word));
        }
        assert_eq!(contents(&tree), "abcdefgh");
        let tail: String = tree.iter_from(2).map(|blk| blk.0.clone()).collect();
        assert_eq!(tail, "efgh");
        assert_eq!(tree.iter_from(4).count(), 0);
    }

    #[test]
    fn locate_and_weight_before() {
        let mut tree = IndexedAvlTree::new();
        let words = ["a", "bc", "def", "ghij"];
        for (i, word) in words.iter().enumerate() {
            tree.insert(i, b(word));
        }
        let flat: String = words.concat();
        for (c, expected) in flat.chars().enumerate() {
            let loc = tree.locate(c).unwrap();
            assert_eq!(tree.get(loc.block).unwrap().0.as_bytes()[loc.offset] as char, expected);
        }
        assert_eq!(tree.locate(flat.len()), None);
        let mut acc = 0;
        for (i, word) in words.iter().enumerate() {
            assert_eq!(tree.weight_before(i), acc);
            acc += word.len();
        }
        assert_eq!(tree.weight_before(words.len()), acc);
    }

    #[test]
    fn remove_every_position() {
        for victim in 0..7 {
            let mut tree = IndexedAvlTree::new();
            for (i, word) in ["q", "w", "e", "r", "t", "y", "u"].iter().enumerate() {
                tree.insert(i, b(word));
            }
            let removed = tree.remove(victim);
            let expect = ["q", "w", "e", "r", "t", "y", "u"][victim];
            assert_eq!(removed.0, expect);
            tree.assert_invariants();
            assert_eq!(tree.len_blocks(), 6);
        }
    }

    #[test]
    fn replace_adjusts_aggregates() {
        let mut tree = IndexedAvlTree::new();
        for (i, word) in ["aa", "bb", "cc"].iter().enumerate() {
            tree.insert(i, b(word));
        }
        assert_eq!(tree.replace(1, b("WXYZ")).0, "bb");
        assert_eq!(tree.total_weight(), 8);
        assert_eq!(tree.locate(5).unwrap(), Location { block: 1, offset: 3 });
        tree.assert_invariants();
    }

    #[test]
    fn arena_recycles_slots() {
        let mut tree = IndexedAvlTree::new();
        for round in 0..10 {
            for i in 0..20 {
                tree.insert(i, b(&format!("r{round}i{i}")));
            }
            for _ in 0..20 {
                tree.remove(0);
            }
        }
        assert!(tree.is_empty());
        assert!(tree.nodes.len() <= 21, "arena grew to {}", tree.nodes.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_past_end_panics() {
        let mut tree = IndexedAvlTree::new();
        tree.insert(1, b("x"));
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_panics() {
        let mut tree = IndexedAvlTree::new();
        tree.insert(0, b(""));
    }

    /// Randomized cross-check against the Vec reference model, mirroring
    /// the skip-list test so both structures face identical scrutiny.
    #[test]
    fn randomized_against_model() {
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 16
        };
        let mut tree = IndexedAvlTree::new();
        let mut model: VecModel<B> = VecModel::new();
        for step in 0..1500 {
            let r = next();
            let n = model.len_blocks();
            match r % 4 {
                0 | 1 => {
                    let pos = if n == 0 { 0 } else { (r >> 8) as usize % (n + 1) };
                    let len = 1 + ((r >> 30) as usize % 8);
                    let text: String =
                        (0..len).map(|k| (b'a' + ((r >> k) % 26) as u8) as char).collect();
                    tree.insert(pos, b(&text));
                    model.insert(pos, b(&text));
                }
                2 if n > 0 => {
                    let pos = (r >> 8) as usize % n;
                    assert_eq!(tree.remove(pos), model.remove(pos));
                }
                3 if n > 0 => {
                    let pos = (r >> 8) as usize % n;
                    let len = 1 + ((r >> 30) as usize % 8);
                    let text: String =
                        (0..len).map(|k| (b'z' - ((r >> k) % 26) as u8) as char).collect();
                    assert_eq!(tree.replace(pos, b(&text)), model.replace(pos, b(&text)));
                }
                _ => {}
            }
            assert_eq!(tree.len_blocks(), model.len_blocks());
            assert_eq!(tree.total_weight(), model.total_weight());
            if step % 25 == 0 {
                tree.assert_invariants();
                let w = model.total_weight();
                for probe in [0, w / 3, w / 2, w.saturating_sub(1)] {
                    assert_eq!(tree.locate(probe), model.locate(probe));
                }
                for ord in 0..model.len_blocks() {
                    assert_eq!(tree.get(ord), model.get(ord));
                    assert_eq!(tree.weight_before(ord), model.weight_before(ord));
                }
            }
        }
        tree.assert_invariants();
    }
}
