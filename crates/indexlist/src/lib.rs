//! Order-statistic block sequences for incremental encryption.
//!
//! Section V-C of the paper introduces the **IndexedSkipList**: a skip list
//! in which every forward pointer carries a `skip_count`, so the structure
//! supports *find by index* (Algorithm 1), *insert*, and *delete* in
//! expected `O(log n)` time over the number of blocks. The paper also notes
//! that "the idea of indexing could also be applied to any of the
//! well-known balanced tree data structures"; the [`IndexedAvlTree`] is
//! that deterministic alternative, used in ablation benchmarks.
//!
//! Both structures store **variable-length blocks**: each element has a
//! weight (its character count), and lookups are supported both by block
//! ordinal and by *character position* — the weighted generalization needed
//! once blocks hold up to `b` characters instead of exactly one.
//!
//! # Example
//!
//! ```
//! use pe_indexlist::{BlockSeq, IndexedSkipList, Weighted};
//!
//! #[derive(Debug, Clone, PartialEq)]
//! struct Chunk(String);
//! impl Weighted for Chunk {
//!     fn weight(&self) -> usize { self.0.len() }
//! }
//!
//! let mut list = IndexedSkipList::new();
//! list.insert(0, Chunk("abc".into()));
//! list.insert(1, Chunk("defg".into()));
//! // Character 4 ('e') lives in block 1 at offset 1.
//! let loc = list.locate(4).unwrap();
//! assert_eq!((loc.block, loc.offset), (1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod avl;
mod skiplist;

pub use avl::IndexedAvlTree;
pub use skiplist::IndexedSkipList;

/// A value with an intrinsic weight (for document blocks: the number of
/// characters the block holds).
pub trait Weighted {
    /// The weight of this element. Must be at least 1 for elements stored
    /// in a [`BlockSeq`].
    fn weight(&self) -> usize;
}

/// Position of a character within a block sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Ordinal of the block containing the character (0-based).
    pub block: usize,
    /// Offset of the character within that block (0-based, `< weight`).
    pub offset: usize,
}

/// A sequence of weighted blocks addressable both by block ordinal and by
/// cumulative character position.
///
/// Implemented by [`IndexedSkipList`] (the paper's structure) and
/// [`IndexedAvlTree`] (the deterministic alternative suggested in §V-C).
/// All operations are `O(log n)` in the number of blocks (expected for the
/// skip list, worst-case for the AVL tree).
pub trait BlockSeq<T: Weighted> {
    /// Number of blocks stored.
    fn len_blocks(&self) -> usize;

    /// Sum of the weights of all blocks (total character count).
    fn total_weight(&self) -> usize;

    /// Returns the block at `ordinal`, or `None` if out of range.
    fn get(&self, ordinal: usize) -> Option<&T>;

    /// Inserts `value` so that it becomes block number `ordinal`.
    ///
    /// # Panics
    ///
    /// Panics if `ordinal > len_blocks()` or if `value.weight() == 0`.
    fn insert(&mut self, ordinal: usize, value: T);

    /// Appends `items` in order after the last block (bulk load — the
    /// full-document encryption path creates every block at once).
    ///
    /// The provided implementation inserts one by one; implementations
    /// override it with an append that skips the per-insert position
    /// search ([`IndexedSkipList`] appends in amortized O(1) per item
    /// below the current tower height).
    ///
    /// # Panics
    ///
    /// Panics if any item has `weight() == 0`.
    fn extend_back(&mut self, items: Vec<T>) {
        for value in items {
            let end = self.len_blocks();
            self.insert(end, value);
        }
    }

    /// Removes and returns the block at `ordinal`.
    ///
    /// # Panics
    ///
    /// Panics if `ordinal >= len_blocks()`.
    fn remove(&mut self, ordinal: usize) -> T;

    /// Replaces the block at `ordinal` (the new value may have a different
    /// weight) and returns the old block.
    ///
    /// # Panics
    ///
    /// Panics if `ordinal >= len_blocks()` or if `value.weight() == 0`.
    fn replace(&mut self, ordinal: usize, value: T) -> T;

    /// Finds the block containing the character at `char_index`.
    ///
    /// Returns `None` when `char_index >= total_weight()`.
    fn locate(&self, char_index: usize) -> Option<Location>;

    /// Cumulative weight of all blocks before `ordinal` (i.e. the character
    /// index of the first character of block `ordinal`).
    ///
    /// # Panics
    ///
    /// Panics if `ordinal > len_blocks()` (`ordinal == len_blocks()` is
    /// allowed and returns the total weight).
    fn weight_before(&self, ordinal: usize) -> usize;

    /// Iterates over the blocks in order, starting at block `ordinal`.
    fn iter_from(&self, ordinal: usize) -> Box<dyn Iterator<Item = &T> + '_>;

    /// Iterates over all blocks in order.
    fn iter(&self) -> Box<dyn Iterator<Item = &T> + '_> {
        self.iter_from(0)
    }

    /// True when the sequence holds no blocks.
    fn is_empty(&self) -> bool {
        self.len_blocks() == 0
    }
}

#[cfg(test)]
pub(crate) mod model {
    //! A trivially-correct reference model used by the property tests of
    //! both implementations.

    use super::{BlockSeq, Location, Weighted};

    /// Vec-backed reference implementation with O(n) operations.
    #[derive(Debug, Default)]
    pub struct VecModel<T> {
        items: Vec<T>,
    }

    impl<T: Weighted> VecModel<T> {
        pub fn new() -> Self {
            VecModel { items: Vec::new() }
        }
    }

    impl<T: Weighted> BlockSeq<T> for VecModel<T> {
        fn len_blocks(&self) -> usize {
            self.items.len()
        }

        fn total_weight(&self) -> usize {
            self.items.iter().map(|b| b.weight()).sum()
        }

        fn get(&self, ordinal: usize) -> Option<&T> {
            self.items.get(ordinal)
        }

        fn insert(&mut self, ordinal: usize, value: T) {
            assert!(value.weight() > 0);
            self.items.insert(ordinal, value);
        }

        fn remove(&mut self, ordinal: usize) -> T {
            self.items.remove(ordinal)
        }

        fn replace(&mut self, ordinal: usize, value: T) -> T {
            assert!(value.weight() > 0);
            std::mem::replace(&mut self.items[ordinal], value)
        }

        fn locate(&self, char_index: usize) -> Option<Location> {
            let mut remaining = char_index;
            for (block, item) in self.items.iter().enumerate() {
                if remaining < item.weight() {
                    return Some(Location { block, offset: remaining });
                }
                remaining -= item.weight();
            }
            None
        }

        fn weight_before(&self, ordinal: usize) -> usize {
            assert!(ordinal <= self.items.len());
            self.items[..ordinal].iter().map(|b| b.weight()).sum()
        }

        fn iter_from(&self, ordinal: usize) -> Box<dyn Iterator<Item = &T> + '_> {
            Box::new(self.items[ordinal..].iter())
        }
    }
}
