//! End-to-end backend parity: the serialized rECB and RPC ciphertexts
//! must be byte-identical no matter which AES backend the process forces.
//!
//! Exercises the `PE_CRYPTO_FORCE_BACKEND` override exactly as an
//! operator would — the backend is selected when `DocumentKey::cipher()`
//! builds the key schedule — rather than through the in-process
//! `with_backend` constructors the pe-crypto matrix uses. One `#[test]`
//! only: the override is process-global, so no sibling test may race it.

use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, RpcDocument, SchemeParams};
use pe_crypto::aes::FORCE_BACKEND_ENV;
use pe_crypto::{AesBackend, CtrDrbg};

/// A full scripted session under the currently forced backend: create,
/// edit, serialize, reopen, decrypt — returning every wire artifact.
fn session() -> (String, String, Vec<u8>, Vec<u8>) {
    let key = DocumentKey::derive("correct horse battery", &[7u8; 16], 100);
    let text = b"the paper's O(edit) claim only holds if the cipher is cheap";

    let mut recb =
        RecbDocument::create(&key, SchemeParams::recb(8), text, CtrDrbg::from_seed(11)).unwrap();
    recb.apply(&EditOp::insert(4, b"source ")).unwrap();
    recb.apply(&EditOp::delete(30, 6)).unwrap();
    let recb_wire = recb.serialize();
    let recb_plain = RecbDocument::open(&key, &recb_wire, CtrDrbg::from_seed(12))
        .unwrap()
        .decrypt()
        .unwrap();

    let mut rpc =
        RpcDocument::create(&key, SchemeParams::rpc(7), text, CtrDrbg::from_seed(21)).unwrap();
    rpc.apply(&EditOp::insert(0, b"NB: ")).unwrap();
    rpc.apply(&EditOp::delete(10, 3)).unwrap();
    let rpc_wire = rpc.serialize();
    let rpc_plain =
        RpcDocument::open(&key, &rpc_wire, CtrDrbg::from_seed(22)).unwrap().decrypt().unwrap();

    (recb_wire, rpc_wire, recb_plain, rpc_plain)
}

#[test]
fn forced_backends_produce_identical_documents() {
    let mut backends = vec![AesBackend::Scalar, AesBackend::Table];
    if AesBackend::aesni_supported() {
        backends.push(AesBackend::AesNi);
    }

    let mut results = Vec::new();
    for &backend in &backends {
        std::env::set_var(FORCE_BACKEND_ENV, backend.name());
        assert_eq!(AesBackend::select(), backend, "override must stick");
        results.push((backend, session()));
    }
    std::env::remove_var(FORCE_BACKEND_ENV);

    let (_, reference) = &results[0];
    for (backend, outcome) in &results[1..] {
        assert_eq!(
            outcome.0, reference.0,
            "rECB wire ciphertext differs between {backend} and {}",
            results[0].0
        );
        assert_eq!(
            outcome.1, reference.1,
            "RPC wire ciphertext differs between {backend} and {}",
            results[0].0
        );
    }
    for (backend, outcome) in &results[1..] {
        assert_eq!(outcome.2, reference.2, "rECB roundtrip plaintext on {backend}");
        assert_eq!(outcome.3, reference.3, "RPC roundtrip plaintext on {backend}");
    }
    assert!(
        std::str::from_utf8(&reference.2).is_ok() && !reference.2.is_empty(),
        "rECB roundtrip plaintext is sane"
    );
}
