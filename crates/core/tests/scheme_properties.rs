//! Property-based tests for the incremental encryption schemes.
//!
//! The central correctness law of incremental encryption (§V-A): after any
//! sequence of `IncE` updates, decryption yields exactly the plaintext the
//! same edits produce on a reference model — and the ciphertext patches
//! returned by each update transform the server's stored string into the
//! document's own serialization.

use pe_core::baseline::{CoCloDocument, XorDocument};
use pe_core::wire::apply_patches;
use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, RpcDocument, SchemeParams};
use pe_crypto::CtrDrbg;
use proptest::prelude::*;

/// A raw edit drawn by proptest; bounds are fixed up against the evolving
/// document length.
#[derive(Debug, Clone)]
struct RawEdit {
    kind: u8,
    at: usize,
    amount: usize,
    byte: u8,
}

fn raw_edit() -> impl Strategy<Value = RawEdit> {
    (any::<u8>(), 0usize..4096, 0usize..24, any::<u8>())
        .prop_map(|(kind, at, amount, byte)| RawEdit { kind, at, amount, byte })
}

/// Resolves a raw edit into a valid `EditOp` for a document of length
/// `len`, mirroring how a real editor only produces in-bounds edits.
fn resolve(raw: &RawEdit, len: usize) -> EditOp {
    if raw.kind.is_multiple_of(2) || len == 0 {
        let at = if len == 0 { 0 } else { raw.at % (len + 1) };
        let text: Vec<u8> = (0..raw.amount.max(1))
            .map(|i| raw.byte.wrapping_add(i as u8) % 94 + 32)
            .collect();
        EditOp::insert(at, &text)
    } else {
        let at = raw.at % len;
        let max = len - at;
        EditOp::delete(at, (raw.amount % max.max(1)).max(1).min(max))
    }
}

fn apply_model(model: &mut Vec<u8>, op: &EditOp) {
    match op {
        EditOp::Insert { at, text } => {
            model.splice(at..at, text.iter().copied());
        }
        EditOp::Delete { at, len } => {
            model.drain(*at..*at + *len);
        }
    }
}

/// Runs a full session against one scheme and checks every law after
/// every step.
fn run_session<D, F>(initial: &[u8], edits: &[RawEdit], make: F)
where
    D: IncrementalCipherDoc,
    F: FnOnce(&[u8]) -> D,
{
    let mut doc = make(initial);
    let mut model = initial.to_vec();
    let mut server = doc.serialize();
    for raw in edits {
        let op = resolve(raw, model.len());
        let patches = doc.apply(&op).expect("in-bounds edit must succeed");
        apply_model(&mut model, &op);
        server = apply_patches(&server, doc.layout(), &patches)
            .expect("patches must apply to the server copy");
        assert_eq!(server, doc.serialize(), "server copy must track serialization");
        assert_eq!(doc.decrypt().expect("decrypt"), model, "decrypt must match the model");
        assert_eq!(doc.len(), model.len());
    }
}

fn key() -> DocumentKey {
    DocumentKey::derive("prop-pw", &[0x42; 16], 50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn recb_session_laws(
        initial in proptest::collection::vec(32u8..127, 0..200),
        edits in proptest::collection::vec(raw_edit(), 1..25),
        b in 1usize..=8,
        seed in any::<u64>(),
    ) {
        run_session(&initial, &edits, |text| {
            RecbDocument::create(&key(), SchemeParams::recb(b), text, CtrDrbg::from_seed(seed))
                .unwrap()
        });
    }

    #[test]
    fn rpc_session_laws(
        initial in proptest::collection::vec(32u8..127, 0..200),
        edits in proptest::collection::vec(raw_edit(), 1..25),
        b in 1usize..=7,
        seed in any::<u64>(),
    ) {
        run_session(&initial, &edits, |text| {
            RpcDocument::create(&key(), SchemeParams::rpc(b), text, CtrDrbg::from_seed(seed))
                .unwrap()
        });
    }

    #[test]
    fn coclo_session_laws(
        initial in proptest::collection::vec(32u8..127, 0..100),
        edits in proptest::collection::vec(raw_edit(), 1..10),
        seed in any::<u64>(),
    ) {
        run_session(&initial, &edits, |text| {
            CoCloDocument::create(&key(), SchemeParams::recb(8), text, CtrDrbg::from_seed(seed))
                .unwrap()
        });
    }

    #[test]
    fn xor_session_laws(
        initial in proptest::collection::vec(32u8..127, 0..150),
        edits in proptest::collection::vec(raw_edit(), 1..15),
        seed in any::<u64>(),
    ) {
        run_session(&initial, &edits, |text| {
            XorDocument::create(&key(), SchemeParams::recb(8), text, CtrDrbg::from_seed(seed))
                .unwrap()
        });
    }

    /// The serialized RPC ciphertext produced by any edit session must
    /// reopen cleanly (integrity holds on honest updates) and decrypt to
    /// the same plaintext.
    #[test]
    fn rpc_serialization_reopens(
        initial in proptest::collection::vec(32u8..127, 0..120),
        edits in proptest::collection::vec(raw_edit(), 0..12),
        seed in any::<u64>(),
    ) {
        let mut doc = RpcDocument::create(
            &key(), SchemeParams::rpc(7), &initial, CtrDrbg::from_seed(seed),
        ).unwrap();
        let mut model = initial.clone();
        for raw in &edits {
            let op = resolve(raw, model.len());
            doc.apply(&op).unwrap();
            apply_model(&mut model, &op);
        }
        let wire = doc.serialize();
        let reopened = RpcDocument::open(&key(), &wire, CtrDrbg::from_seed(1)).unwrap();
        prop_assert_eq!(reopened.decrypt().unwrap(), model);
    }

    /// Flipping any single record character of an RPC document (outside
    /// the preamble) must be detected on open.
    #[test]
    fn rpc_detects_any_single_char_corruption(
        text in proptest::collection::vec(32u8..127, 1..60),
        seed in any::<u64>(),
        victim in any::<usize>(),
    ) {
        let doc = RpcDocument::create(
            &key(), SchemeParams::rpc(7), &text, CtrDrbg::from_seed(seed),
        ).unwrap();
        let wire = doc.serialize();
        let preamble = pe_core::wire::PREAMBLE_CHARS;
        let pos = preamble + victim % (wire.len() - preamble);
        let mut chars: Vec<char> = wire.chars().collect();
        // Replace with a different Base32 character (tags 0-9 stay digits
        // to keep the structure parseable — structural errors also count
        // as detection).
        let replacement = if chars[pos] == 'A' { 'B' } else { 'A' };
        chars[pos] = replacement;
        let tampered: String = chars.into_iter().collect();
        let result = RpcDocument::open(&key(), &tampered, CtrDrbg::from_seed(2));
        prop_assert!(result.is_err(), "corruption at char {pos} must be detected");
    }
}
