//! Robustness fuzzing: hostile or garbage serialized input must produce
//! errors, never panics. (A malicious server controls everything a
//! document-open path parses.)

use pe_core::baseline::XorDocument;
use pe_core::wire::{apply_patches, decode_record, split_records, CipherPatch, Layout, Preamble};
use pe_core::{DocumentKey, RecbDocument, RpcDocument};
use pe_crypto::CtrDrbg;
use proptest::prelude::*;

fn key() -> DocumentKey {
    DocumentKey::derive("fuzz", &[0xf0; 16], 50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary Unicode garbage through every parser.
    #[test]
    fn arbitrary_text_never_panics(text in "\\PC{0,300}") {
        let _ = Preamble::parse(&text);
        let _ = split_records(&text);
        let _ = decode_record(&text);
        let _ = RecbDocument::open(&key(), &text, CtrDrbg::from_seed(0));
        let _ = RpcDocument::open(&key(), &text, CtrDrbg::from_seed(0));
        let _ = XorDocument::open(&key(), &text, CtrDrbg::from_seed(0));
    }

    /// ASCII strings in the right alphabet (the adversary's best shot at
    /// structural validity) still never panic.
    #[test]
    fn plausible_ciphertext_never_panics(body in "[A-Z2-7;b18PRE]{0,400}") {
        let _ = RecbDocument::open(&key(), &body, CtrDrbg::from_seed(1));
        let _ = RpcDocument::open(&key(), &body, CtrDrbg::from_seed(1));
    }

    /// Truncations, extensions, and single-char corruptions of a VALID
    /// document: must error or produce a document, never panic — and for
    /// RPC must never silently verify.
    #[test]
    fn mutations_of_valid_documents_never_panic(
        cut in any::<usize>(),
        junk in "[A-Z2-7]{0,30}",
        flip_at in any::<usize>(),
    ) {
        let doc = RpcDocument::create(
            &key(),
            pe_core::SchemeParams::rpc(7),
            b"a perfectly normal secret document",
            CtrDrbg::from_seed(2),
        )
        .unwrap();
        use pe_core::IncrementalCipherDoc;
        let wire = doc.serialize();

        // Truncation at an arbitrary byte position.
        let cut = cut % (wire.len() + 1);
        let truncated = &wire[..cut];
        prop_assert!(
            cut == wire.len() || RpcDocument::open(&key(), truncated, CtrDrbg::from_seed(3)).is_err()
        );

        // Appending junk.
        let extended = format!("{wire}{junk}");
        if !junk.is_empty() {
            prop_assert!(RpcDocument::open(&key(), &extended, CtrDrbg::from_seed(3)).is_err());
        }

        // Single character replacement inside the record region.
        let preamble = pe_core::wire::PREAMBLE_CHARS;
        let pos = preamble + flip_at % (wire.len() - preamble);
        let mut chars: Vec<char> = wire.chars().collect();
        let original = chars[pos];
        chars[pos] = if original == 'Q' { 'R' } else { 'Q' };
        if chars[pos] != original {
            let corrupted: String = chars.into_iter().collect();
            prop_assert!(
                RpcDocument::open(&key(), &corrupted, CtrDrbg::from_seed(3)).is_err(),
                "corruption at {pos} must be detected"
            );
        }
    }

    /// apply_patches with arbitrary patch sets: error or success, no panic.
    #[test]
    fn arbitrary_patches_never_panic(
        start in 0usize..10,
        removed in 0usize..10,
        n_inserted in 0usize..4,
        width in 0usize..40,
    ) {
        let doc = {
            let pre = Preamble::new(&pe_core::SchemeParams::recb(8), [1; 16]).encode();
            let record = pe_core::wire::encode_record('1', &[7; 16]);
            format!("{pre}{record}{record}{record}")
        };
        let inserted = vec!["W".repeat(width); n_inserted];
        let patch = CipherPatch::splice(start, removed, inserted);
        let _ = apply_patches(&doc, Layout::standard(), &[patch]);
    }
}
