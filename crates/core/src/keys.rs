//! Per-document keys and scheme parameters.
//!
//! The paper's prototype prompts the user for a per-document password and
//! encryption options when a document is created or opened (§IV-C). A
//! [`DocumentKey`] is derived from that password with PBKDF2-HMAC-SHA-256
//! over a random salt; the salt is public and stored in the ciphertext
//! preamble so any party knowing the password can re-derive the key.

use pe_crypto::aes::Aes128;
use pe_crypto::drbg::NonceSource;
use pe_crypto::pbkdf2::pbkdf2_sha256;

use crate::error::CoreError;

/// Default PBKDF2 iteration count used by [`DocumentKey::generate`].
pub const DEFAULT_KDF_ITERATIONS: u32 = 10_000;

/// Which incremental encryption mode a document uses (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Randomized ECB: confidentiality only.
    Recb,
    /// RPC with the length amendment: confidentiality and integrity.
    Rpc,
}

impl Mode {
    /// One-character wire tag used in the ciphertext preamble.
    pub(crate) fn tag(self) -> char {
        match self {
            Mode::Recb => 'R',
            Mode::Rpc => 'P',
        }
    }

    pub(crate) fn from_tag(tag: char) -> Option<Mode> {
        match tag {
            'R' => Some(Mode::Recb),
            'P' => Some(Mode::Rpc),
            _ => None,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Recb => f.write_str("rECB"),
            Mode::Rpc => f.write_str("RPC"),
        }
    }
}

/// User-selected encryption parameters for a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeParams {
    /// Encryption mode.
    pub mode: Mode,
    /// Maximum characters per block, `1..=8` (§V-C chooses 8 for AES).
    pub max_block: usize,
    /// PBKDF2 iteration count for key derivation.
    pub kdf_iterations: u32,
}

impl SchemeParams {
    /// Confidentiality-only parameters with the given block size.
    pub fn recb(max_block: usize) -> SchemeParams {
        SchemeParams { mode: Mode::Recb, max_block, kdf_iterations: DEFAULT_KDF_ITERATIONS }
    }

    /// Confidentiality-and-integrity parameters with the given block size.
    pub fn rpc(max_block: usize) -> SchemeParams {
        SchemeParams { mode: Mode::Rpc, max_block, kdf_iterations: DEFAULT_KDF_ITERATIONS }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParams`] when `max_block` is outside
    /// `1..=8` or the iteration count is zero.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(1..=8).contains(&self.max_block) {
            return Err(CoreError::BadParams {
                detail: format!("max_block must be in 1..=8, got {}", self.max_block),
            });
        }
        if self.kdf_iterations == 0 {
            return Err(CoreError::BadParams { detail: "kdf_iterations must be positive".into() });
        }
        Ok(())
    }
}

/// A per-document AES-128 key together with the public salt it was
/// derived from.
///
/// # Example
///
/// ```
/// use pe_core::DocumentKey;
///
/// let key = DocumentKey::derive("hunter2", &[1u8; 16], 1_000);
/// let again = DocumentKey::derive("hunter2", key.salt(), 1_000);
/// assert_eq!(key.salt(), again.salt());
/// ```
#[derive(Clone)]
pub struct DocumentKey {
    /// AES-128 subkey, HKDF-separated from the master secret.
    key: [u8; 16],
    /// MAC subkey for integrity sidecars ([`IncMac`](crate::baseline::IncMac)).
    mac_key: [u8; 32],
    salt: [u8; 16],
}

impl std::fmt::Debug for DocumentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("DocumentKey").field("salt", &self.salt).finish_non_exhaustive()
    }
}

impl DocumentKey {
    /// Derives a key from `password` and an existing `salt` (used when
    /// opening a document whose preamble carries the salt).
    ///
    /// PBKDF2 stretches the password into a master secret; HKDF with
    /// distinct labels separates the AES document key from the MAC key,
    /// so the integrity sidecar never reuses encryption key material.
    pub fn derive(password: &str, salt: &[u8; 16], iterations: u32) -> DocumentKey {
        let mut master = [0u8; 32];
        pbkdf2_sha256(password.as_bytes(), salt, iterations, &mut master);
        let key = DocumentKey::from_master(&master, *salt);
        pe_crypto::zeroize::wipe(&mut master);
        key
    }

    /// Builds a document key directly from a 32-byte master secret.
    ///
    /// The multi-tenant layer generates a *random* master secret per
    /// document (no password, no PBKDF2) and shares it with authorized
    /// editors via RFC 3394 key wrap; this constructor applies the same
    /// HKDF subkey separation as [`derive`](DocumentKey::derive), so a
    /// tenant document's ciphertext is indistinguishable from a
    /// password-derived one on the wire. The `salt` is whatever the
    /// preamble records — for tenant documents it is decorative (the key
    /// comes from the wrapped master secret, not from stretching a
    /// password over the salt).
    pub fn from_master(master: &[u8; 32], salt: [u8; 16]) -> DocumentKey {
        let mut key = [0u8; 16];
        pe_crypto::hkdf::expand(master, b"pe.v1.aes", &mut key);
        let mut mac_key = [0u8; 32];
        pe_crypto::hkdf::expand(master, b"pe.v1.mac", &mut mac_key);
        DocumentKey { key, mac_key, salt }
    }

    /// The MAC subkey for client-side integrity sidecars.
    pub fn mac_key(&self) -> &[u8; 32] {
        &self.mac_key
    }

    /// Generates a fresh salt from `rng` and derives a key (used when
    /// creating a new encrypted document).
    pub fn generate<R: NonceSource>(password: &str, iterations: u32, rng: &mut R) -> DocumentKey {
        let mut salt = [0u8; 16];
        rng.fill_bytes(&mut salt);
        DocumentKey::derive(password, &salt, iterations)
    }

    /// The public salt.
    pub fn salt(&self) -> &[u8; 16] {
        &self.salt
    }

    /// Instantiates the AES cipher for this key.
    pub(crate) fn cipher(&self) -> Aes128 {
        Aes128::new(&self.key)
    }
}

impl Drop for DocumentKey {
    fn drop(&mut self) {
        // Best-effort hygiene: each dropped copy wipes its own key bytes
        // so derived keys do not linger in freed memory (the salt is
        // public and stays readable for debugging).
        pe_crypto::zeroize::wipe(&mut self.key);
        pe_crypto::zeroize::wipe(&mut self.mac_key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_crypto::CtrDrbg;

    #[test]
    fn same_password_same_salt_same_key() {
        let a = DocumentKey::derive("pw", &[3u8; 16], 100);
        let b = DocumentKey::derive("pw", &[3u8; 16], 100);
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn different_password_different_key() {
        let a = DocumentKey::derive("pw1", &[3u8; 16], 100);
        let b = DocumentKey::derive("pw2", &[3u8; 16], 100);
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn generate_uses_fresh_salt() {
        let mut rng = CtrDrbg::from_seed(9);
        let a = DocumentKey::generate("pw", 100, &mut rng);
        let b = DocumentKey::generate("pw", 100, &mut rng);
        assert_ne!(a.salt(), b.salt());
        assert_ne!(a.key, b.key);
    }

    #[test]
    fn debug_hides_key_material() {
        let key = DocumentKey::derive("secret-password", &[0u8; 16], 100);
        let debug = format!("{key:?}");
        assert!(!debug.contains("key:"), "debug output must not expose the key: {debug}");
    }

    #[test]
    fn aes_and_mac_subkeys_are_independent() {
        let key = DocumentKey::derive("pw", &[3u8; 16], 100);
        assert_ne!(&key.key[..], &key.mac_key()[..16], "HKDF labels must separate subkeys");
        // Deterministic per (password, salt).
        let again = DocumentKey::derive("pw", &[3u8; 16], 100);
        assert_eq!(key.mac_key(), again.mac_key());
    }

    #[test]
    fn from_master_matches_derive_pipeline() {
        let salt = [7u8; 16];
        let mut master = [0u8; 32];
        pbkdf2_sha256(b"pw", &salt, 100, &mut master);
        let direct = DocumentKey::from_master(&master, salt);
        let derived = DocumentKey::derive("pw", &salt, 100);
        assert_eq!(direct.key, derived.key);
        assert_eq!(direct.mac_key(), derived.mac_key());
        assert_eq!(direct.salt(), derived.salt());
    }

    #[test]
    fn params_validate() {
        assert!(SchemeParams::recb(8).validate().is_ok());
        assert!(SchemeParams::rpc(1).validate().is_ok());
        assert!(SchemeParams::recb(0).validate().is_err());
        assert!(SchemeParams::recb(9).validate().is_err());
        let mut p = SchemeParams::recb(4);
        p.kdf_iterations = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn mode_tags_roundtrip() {
        for mode in [Mode::Recb, Mode::Rpc] {
            assert_eq!(Mode::from_tag(mode.tag()), Some(mode));
        }
        assert_eq!(Mode::from_tag('x'), None);
    }
}
