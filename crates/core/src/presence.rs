//! Sealed presence records for live collaboration.
//!
//! A live editing session wants to share *who* is editing and *where*
//! their cursor sits — but the paper's threat model says the cloud must
//! learn neither: a cursor position is a pointer into the plaintext, and
//! an editor label is identity metadata. A [`PresenceSealer`] turns a
//! `(editor, cursor)` pair into an opaque, authenticated blob that only
//! parties holding the document key can open; the server stores and
//! fans the blob out like any other ciphertext.
//!
//! Construction: subkeys are HKDF-separated from the document's MAC
//! subkey (labels `pe.v1.presence.aes` / `pe.v1.presence.mac`, so the
//! document-body keys are never reused), the payload is AES-CTR
//! encrypted under a caller-supplied nonce, and a truncated
//! SHA-256 tag authenticates nonce and ciphertext. Blobs are hex on the
//! wire — safe inside form encoding.

use pe_crypto::sha256::Sha256;
use pe_crypto::{hex, BlockCipher};

use crate::keys::DocumentKey;

/// Length of the authentication tag in bytes.
const TAG_LEN: usize = 8;
/// Length of the nonce prefix in bytes.
const NONCE_LEN: usize = 8;

/// An opened presence record: who, and where their cursor is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Presence {
    /// Editor label (a client-chosen pseudonym; opaque to the server).
    pub editor: String,
    /// Cursor position in plaintext characters.
    pub cursor: usize,
}

/// Seals and opens presence records under a document's key material.
pub struct PresenceSealer {
    aes_key: [u8; 16],
    mac_key: [u8; 32],
}

impl std::fmt::Debug for PresenceSealer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PresenceSealer").finish_non_exhaustive()
    }
}

impl PresenceSealer {
    /// Builds a sealer from the document key (HKDF-separated subkeys;
    /// the document-body AES key is never reused).
    pub fn new(key: &DocumentKey) -> PresenceSealer {
        let mut aes_key = [0u8; 16];
        pe_crypto::hkdf::expand(key.mac_key(), b"pe.v1.presence.aes", &mut aes_key);
        let mut mac_key = [0u8; 32];
        pe_crypto::hkdf::expand(key.mac_key(), b"pe.v1.presence.mac", &mut mac_key);
        PresenceSealer { aes_key, mac_key }
    }

    /// Convenience: derives the document key from `password` with a salt
    /// bound to `doc_id` (collaborators derive the same sealer from the
    /// same password without any key exchange).
    pub fn from_password(doc_id: &str, password: &str, iterations: u32) -> PresenceSealer {
        let digest = Sha256::digest(doc_id.as_bytes());
        let mut salt = [0u8; 16];
        salt.copy_from_slice(&digest[..16]);
        let key = DocumentKey::derive(password, &salt, iterations.max(1));
        PresenceSealer::new(&key)
    }

    fn keystream_xor(&self, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
        let cipher = pe_crypto::aes::Aes128::new(&self.aes_key);
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let mut block = [0u8; 16];
            block[..NONCE_LEN].copy_from_slice(nonce);
            block[NONCE_LEN..].copy_from_slice(&(i as u64).to_be_bytes());
            cipher.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }

    fn tag(&self, nonce: &[u8; NONCE_LEN], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let mut mac = Sha256::new();
        mac.update(&self.mac_key);
        mac.update(nonce);
        mac.update(ciphertext);
        let digest = mac.finalize();
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&digest[..TAG_LEN]);
        tag
    }

    /// Seals a presence record. `nonce` must not repeat for the same
    /// key (live sessions use a per-editor counter mixed with their
    /// label, which the payload binds).
    pub fn seal(&self, presence: &Presence, nonce: u64) -> String {
        let payload = format!("{}\t{}", presence.editor, presence.cursor);
        let mut nonce_bytes = [0u8; NONCE_LEN];
        nonce_bytes.copy_from_slice(&nonce.to_be_bytes());
        let mut data = payload.into_bytes();
        self.keystream_xor(&nonce_bytes, &mut data);
        let tag = self.tag(&nonce_bytes, &data);
        let mut blob = Vec::with_capacity(NONCE_LEN + data.len() + TAG_LEN);
        blob.extend_from_slice(&nonce_bytes);
        blob.extend_from_slice(&data);
        blob.extend_from_slice(&tag);
        hex::encode(&blob)
    }

    /// Opens a sealed blob; `None` for tampered, truncated, or
    /// foreign-key blobs.
    pub fn open(&self, blob: &str) -> Option<Presence> {
        let bytes = hex::decode(blob).ok()?;
        if bytes.len() < NONCE_LEN + TAG_LEN {
            return None;
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&bytes[..NONCE_LEN]);
        let (body, tag) = bytes[NONCE_LEN..].split_at(bytes.len() - NONCE_LEN - TAG_LEN);
        let expected = self.tag(&nonce, body);
        // Constant-time-ish comparison: accumulate the difference.
        let mut diff = 0u8;
        for (a, b) in tag.iter().zip(expected.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return None;
        }
        let mut data = body.to_vec();
        self.keystream_xor(&nonce, &mut data);
        let payload = String::from_utf8(data).ok()?;
        let (editor, cursor) = payload.split_once('\t')?;
        Some(Presence { editor: editor.to_string(), cursor: cursor.parse().ok()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealer() -> PresenceSealer {
        PresenceSealer::from_password("doc7", "pw", 100)
    }

    #[test]
    fn seal_open_roundtrip() {
        let s = sealer();
        let p = Presence { editor: "alice".into(), cursor: 42 };
        let blob = s.seal(&p, 1);
        assert_eq!(s.open(&blob), Some(p));
    }

    #[test]
    fn blob_reveals_nothing_and_varies_with_nonce() {
        let s = sealer();
        let p = Presence { editor: "alice".into(), cursor: 7 };
        let b1 = s.seal(&p, 1);
        let b2 = s.seal(&p, 2);
        assert_ne!(b1, b2, "same record, different nonce, different blob");
        assert!(!b1.contains("alice"));
        assert!(b1.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn tampering_is_detected() {
        let s = sealer();
        let blob = s.seal(&Presence { editor: "bob".into(), cursor: 3 }, 9);
        let mut bytes: Vec<char> = blob.chars().collect();
        bytes[NONCE_LEN * 2 + 1] = if bytes[NONCE_LEN * 2 + 1] == '0' { '1' } else { '0' };
        let tampered: String = bytes.into_iter().collect();
        assert_eq!(s.open(&tampered), None);
        assert_eq!(s.open("zz"), None);
        assert_eq!(s.open("00"), None);
    }

    #[test]
    fn wrong_password_cannot_open() {
        let s = sealer();
        let other = PresenceSealer::from_password("doc7", "other-pw", 100);
        let blob = s.seal(&Presence { editor: "carol".into(), cursor: 0 }, 4);
        assert_eq!(other.open(&blob), None);
    }

    #[test]
    fn sealer_from_document_key_matches_password_path() {
        let digest = Sha256::digest("docX".as_bytes());
        let mut salt = [0u8; 16];
        salt.copy_from_slice(&digest[..16]);
        let key = DocumentKey::derive("pw", &salt, 100);
        let a = PresenceSealer::new(&key);
        let b = PresenceSealer::from_password("docX", "pw", 100);
        let blob = a.seal(&Presence { editor: "e".into(), cursor: 1 }, 5);
        assert!(b.open(&blob).is_some());
    }
}
