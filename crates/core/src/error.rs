//! Error type for the incremental encryption layer.

use std::error::Error;
use std::fmt;

/// Errors produced by encrypted-document operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An edit referenced a position outside the document.
    OutOfBounds {
        /// Offset that was requested.
        at: usize,
        /// Current document length.
        len: usize,
    },
    /// Integrity verification failed (RPC mode): the ciphertext was
    /// modified, reordered, truncated, or the password is wrong.
    IntegrityFailure {
        /// Human-readable description of what failed to verify.
        detail: String,
    },
    /// The serialized ciphertext could not be parsed.
    Malformed {
        /// Human-readable description of the malformation.
        detail: String,
    },
    /// Scheme parameters were invalid (e.g. block size outside `1..=8`).
    BadParams {
        /// Human-readable description of the bad parameter.
        detail: String,
    },
    /// A delta could not be transformed (propagated protocol error).
    Delta(pe_delta::DeltaError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::OutOfBounds { at, len } => {
                write!(f, "edit at byte {at} is outside document of length {len}")
            }
            CoreError::IntegrityFailure { detail } => {
                write!(f, "integrity verification failed: {detail}")
            }
            CoreError::Malformed { detail } => {
                write!(f, "malformed ciphertext document: {detail}")
            }
            CoreError::BadParams { detail } => write!(f, "bad parameters: {detail}"),
            CoreError::Delta(e) => write!(f, "delta error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pe_delta::DeltaError> for CoreError {
    fn from(e: pe_delta::DeltaError) -> CoreError {
        CoreError::Delta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::OutOfBounds { at: 9, len: 3 }.to_string(),
            "edit at byte 9 is outside document of length 3"
        );
        assert!(CoreError::IntegrityFailure { detail: "chain broken".into() }
            .to_string()
            .contains("chain broken"));
        assert!(CoreError::BadParams { detail: "b=0".into() }.to_string().contains("b=0"));
    }

    #[test]
    fn delta_errors_convert_and_chain() {
        let delta_err = pe_delta::DeltaError::EmptyToken;
        let err: CoreError = delta_err.into();
        assert!(err.source().is_some());
    }
}
