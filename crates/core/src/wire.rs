//! Serialized ciphertext format.
//!
//! The server must be able to store and render the ciphertext as ordinary
//! document text, so everything is encoded with the RFC 4648 Base32
//! alphabet (§IV/Fig. 2 of the paper use `Base32.encode`). The format is:
//!
//! ```text
//! PE1;<mode>;b<digit>;<salt>; <record> <record> …
//! └────────── preamble ─────┘
//! ```
//!
//! * The **preamble** is cleartext: format version, mode tag (`R` = rECB,
//!   `P` = RPC), maximum block size, and the Base32 KDF salt. It is
//!   written once at creation and never changes, so incremental updates
//!   never touch it.
//! * Each **record** is exactly [`RECORD_CHARS`] characters: a one-character
//!   tag followed by 26 Base32 characters encoding one 16-byte AES block.
//!   Tags: `0` = header block, `1`–`8` = data block holding that many
//!   plaintext characters (the public per-block character counter §V-C
//!   requires for variable-length blocks), `9` = RPC checksum block.
//!
//! Because records have fixed width, an incremental update maps to a small
//! set of contiguous record splices ([`CipherPatch`]), which the
//! transformer turns into a character-level delta over this string.

use pe_crypto::base32;

use crate::error::CoreError;
use crate::keys::{Mode, SchemeParams};

/// Characters per serialized record: 1 tag + 26 Base32 characters for a
/// 16-byte block.
pub const RECORD_CHARS: usize = 1 + base32::encoded_len(16);

/// Fixed preamble length: `PE1;` + `R;` + `b8;` + 26-char salt + `;`.
pub const PREAMBLE_CHARS: usize = 4 + 2 + 3 + base32::encoded_len(16) + 1;

/// Geometry of a serialized ciphertext document, used to convert record
/// indices into character offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Characters before the first record.
    pub preamble_chars: usize,
    /// Characters per record.
    pub record_chars: usize,
}

impl Layout {
    /// The layout every current document uses.
    pub fn standard() -> Layout {
        Layout { preamble_chars: PREAMBLE_CHARS, record_chars: RECORD_CHARS }
    }

    /// Character offset of record `index`.
    pub fn record_offset(&self, index: usize) -> usize {
        self.preamble_chars + index * self.record_chars
    }
}

/// A contiguous splice of records: starting at `start_record` (an index
/// into the records of the *previous* serialized ciphertext), `removed`
/// records are deleted and `inserted` serialized records take their place.
///
/// [`IncrementalCipherDoc::apply`](crate::IncrementalCipherDoc::apply)
/// returns patches sorted by `start_record` and non-overlapping, so they
/// translate directly into a single left-to-right delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CipherPatch {
    /// Record index (in the pre-update ciphertext) where the splice starts.
    pub start_record: usize,
    /// Number of old records removed.
    pub removed: usize,
    /// Serialized replacement records.
    pub inserted: Vec<String>,
}

impl CipherPatch {
    /// A patch replacing `removed` records at `start_record` with the
    /// given serialized records.
    pub fn splice(start_record: usize, removed: usize, inserted: Vec<String>) -> CipherPatch {
        CipherPatch { start_record, removed, inserted }
    }
}

/// Cleartext document parameters carried in the preamble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preamble {
    /// Encryption mode.
    pub mode: Mode,
    /// Maximum characters per block.
    pub max_block: usize,
    /// KDF salt.
    pub salt: [u8; 16],
}

impl Preamble {
    /// Builds a preamble from scheme parameters and the key salt.
    pub fn new(params: &SchemeParams, salt: [u8; 16]) -> Preamble {
        Preamble { mode: params.mode, max_block: params.max_block, salt }
    }

    /// Encodes the preamble (always [`PREAMBLE_CHARS`] characters).
    pub fn encode(&self) -> String {
        let s = format!(
            "PE1;{};b{};{};",
            self.mode.tag(),
            self.max_block,
            base32::encode_unpadded(&self.salt)
        );
        debug_assert_eq!(s.len(), PREAMBLE_CHARS);
        s
    }

    /// Parses a preamble from the start of a serialized document.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Malformed`] when the text does not follow the
    /// preamble grammar.
    pub fn parse(text: &str) -> Result<Preamble, CoreError> {
        let malformed = |detail: &str| CoreError::Malformed { detail: detail.to_string() };
        if text.len() < PREAMBLE_CHARS || !text.is_char_boundary(PREAMBLE_CHARS) {
            return Err(malformed("document shorter than preamble"));
        }
        let head = &text[..PREAMBLE_CHARS];
        if !head.starts_with("PE1;") {
            return Err(malformed("missing PE1 magic"));
        }
        let mut fields = head[4..head.len() - 1].split(';');
        let mode_field = fields.next().ok_or_else(|| malformed("missing mode"))?;
        let mode = mode_field
            .chars()
            .next()
            .and_then(Mode::from_tag)
            .filter(|_| mode_field.len() == 1)
            .ok_or_else(|| malformed("unknown mode tag"))?;
        let block_field = fields.next().ok_or_else(|| malformed("missing block size"))?;
        let max_block = block_field
            .strip_prefix('b')
            .and_then(|d| d.parse::<usize>().ok())
            .filter(|b| (1..=8).contains(b))
            .ok_or_else(|| malformed("invalid block size field"))?;
        let salt_field = fields.next().ok_or_else(|| malformed("missing salt"))?;
        let salt_bytes = base32::decode_unpadded(salt_field)
            .map_err(|_| malformed("invalid salt encoding"))?;
        let salt: [u8; 16] =
            salt_bytes.try_into().map_err(|_| malformed("salt must be 16 bytes"))?;
        Ok(Preamble { mode, max_block, salt })
    }
}

/// Encodes one record: tag character + Base32 of the 16-byte block.
pub fn encode_record(tag: char, block: &[u8; 16]) -> String {
    debug_assert!(tag.is_ascii_digit());
    let mut out = String::with_capacity(RECORD_CHARS);
    out.push(tag);
    out.push_str(&base32::encode_unpadded(block));
    out
}

/// Decodes one record into its tag and block.
///
/// # Errors
///
/// Returns [`CoreError::Malformed`] for wrong length, an invalid tag, or
/// invalid Base32.
pub fn decode_record(text: &str) -> Result<(char, [u8; 16]), CoreError> {
    if text.len() != RECORD_CHARS {
        return Err(CoreError::Malformed {
            detail: format!("record must be {RECORD_CHARS} chars, got {}", text.len()),
        });
    }
    let tag = text.chars().next().expect("non-empty");
    if !tag.is_ascii_digit() || !text.is_ascii() {
        return Err(CoreError::Malformed { detail: format!("invalid record tag {tag:?}") });
    }
    let body = base32::decode_unpadded(&text[1..])
        .map_err(|e| CoreError::Malformed { detail: format!("invalid record body: {e}") })?;
    let block: [u8; 16] = body
        .try_into()
        .map_err(|_| CoreError::Malformed { detail: "record body must be 16 bytes".into() })?;
    Ok((tag, block))
}

/// Splits the record region of a serialized document into record strings.
///
/// # Errors
///
/// Returns [`CoreError::Malformed`] when the region is not a whole number
/// of records.
pub fn split_records(text: &str) -> Result<Vec<&str>, CoreError> {
    if text.len() < PREAMBLE_CHARS || !text.is_char_boundary(PREAMBLE_CHARS) {
        return Err(CoreError::Malformed { detail: "document shorter than preamble".into() });
    }
    let body = &text[PREAMBLE_CHARS..];
    if !body.len().is_multiple_of(RECORD_CHARS) {
        return Err(CoreError::Malformed {
            detail: format!("record region length {} is not a multiple of {RECORD_CHARS}", body.len()),
        });
    }
    body.as_bytes()
        .chunks(RECORD_CHARS)
        .map(|c| {
            std::str::from_utf8(c)
                .map_err(|_| CoreError::Malformed { detail: "record is not ASCII".into() })
        })
        .collect()
}

/// Applies a sorted, non-overlapping patch set to a serialized ciphertext
/// document, producing the updated serialized document.
///
/// This mirrors what the cloud server effectively does when it applies the
/// transformed delta: it is used by tests and by the delta transformer to
/// maintain the extension's ciphertext mirror.
///
/// # Errors
///
/// Returns [`CoreError::Malformed`] when patches overlap, are unsorted, or
/// reach outside the document's records.
pub fn apply_patches(
    old: &str,
    layout: Layout,
    patches: &[CipherPatch],
) -> Result<String, CoreError> {
    let record_region = old
        .get(layout.preamble_chars..)
        .ok_or_else(|| CoreError::Malformed { detail: "document shorter than preamble".into() })?;
    if !old.is_ascii() {
        return Err(CoreError::Malformed { detail: "ciphertext documents are ASCII".into() });
    }
    if record_region.len() % layout.record_chars != 0 {
        return Err(CoreError::Malformed { detail: "misaligned record region".into() });
    }
    let total_records = record_region.len() / layout.record_chars;
    let mut out = String::with_capacity(old.len());
    out.push_str(&old[..layout.preamble_chars]);
    let mut cursor = 0usize; // record index into the old document
    for patch in patches {
        if patch.start_record < cursor {
            return Err(CoreError::Malformed { detail: "patches overlap or are unsorted".into() });
        }
        let splice_end = patch.start_record + patch.removed;
        if splice_end > total_records {
            return Err(CoreError::Malformed {
                detail: format!(
                    "patch touches record {} but document has {total_records}",
                    splice_end - 1
                ),
            });
        }
        // Copy untouched records, skip removed ones, emit replacements.
        let keep_start = layout.preamble_chars + cursor * layout.record_chars;
        let keep_end = layout.preamble_chars + patch.start_record * layout.record_chars;
        out.push_str(&old[keep_start..keep_end]);
        for record in &patch.inserted {
            if record.len() != layout.record_chars {
                return Err(CoreError::Malformed {
                    detail: format!("inserted record has width {}", record.len()),
                });
            }
            out.push_str(record);
        }
        cursor = splice_end;
    }
    out.push_str(&old[layout.preamble_chars + cursor * layout.record_chars..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_width_is_27() {
        assert_eq!(RECORD_CHARS, 27);
    }

    #[test]
    fn preamble_roundtrip() {
        for (mode, b) in [(Mode::Recb, 1), (Mode::Recb, 8), (Mode::Rpc, 4)] {
            let params = match mode {
                Mode::Recb => SchemeParams::recb(b),
                Mode::Rpc => SchemeParams::rpc(b),
            };
            let pre = Preamble::new(&params, [0xab; 16]);
            let text = pre.encode();
            assert_eq!(text.len(), PREAMBLE_CHARS);
            assert_eq!(Preamble::parse(&text).unwrap(), pre);
        }
    }

    #[test]
    fn preamble_rejects_garbage() {
        assert!(Preamble::parse("").is_err());
        assert!(Preamble::parse(&"x".repeat(PREAMBLE_CHARS)).is_err());
        let good = Preamble::new(&SchemeParams::recb(8), [1; 16]).encode();
        let bad_mode = good.replacen("R", "Z", 1);
        assert!(Preamble::parse(&bad_mode).is_err());
        let bad_block = good.replacen("b8", "b9", 1);
        assert!(Preamble::parse(&bad_block).is_err());
    }

    #[test]
    fn record_roundtrip() {
        let block = [0x5a; 16];
        for tag in '0'..='9' {
            let text = encode_record(tag, &block);
            assert_eq!(text.len(), RECORD_CHARS);
            assert_eq!(decode_record(&text).unwrap(), (tag, block));
        }
    }

    #[test]
    fn record_rejects_bad_input() {
        assert!(decode_record("short").is_err());
        let good = encode_record('1', &[0; 16]);
        let bad_tag = format!("x{}", &good[1..]);
        assert!(decode_record(&bad_tag).is_err());
        let bad_body = format!("1{}", "!".repeat(26));
        assert!(decode_record(&bad_body).is_err());
    }

    #[test]
    fn split_records_checks_alignment() {
        let pre = Preamble::new(&SchemeParams::recb(8), [2; 16]).encode();
        let r1 = encode_record('0', &[1; 16]);
        let r2 = encode_record('3', &[2; 16]);
        let doc = format!("{pre}{r1}{r2}");
        let records = split_records(&doc).unwrap();
        assert_eq!(records, vec![r1.as_str(), r2.as_str()]);
        let misaligned = format!("{pre}{r1}xx");
        assert!(split_records(&misaligned).is_err());
    }

    #[test]
    fn layout_offsets() {
        let layout = Layout::standard();
        assert_eq!(layout.record_offset(0), PREAMBLE_CHARS);
        assert_eq!(layout.record_offset(3), PREAMBLE_CHARS + 3 * RECORD_CHARS);
    }

    fn sample_doc(n: usize) -> String {
        let mut doc = Preamble::new(&SchemeParams::recb(8), [7; 16]).encode();
        for i in 0..n {
            doc.push_str(&encode_record('1', &[i as u8; 16]));
        }
        doc
    }

    #[test]
    fn apply_patches_replaces_records() {
        let doc = sample_doc(3);
        let replacement = encode_record('2', &[0xff; 16]);
        let patch = CipherPatch::splice(1, 1, vec![replacement.clone()]);
        let out = apply_patches(&doc, Layout::standard(), &[patch]).unwrap();
        let records = split_records(&out).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1], replacement);
        assert_eq!(records[0], split_records(&doc).unwrap()[0]);
    }

    #[test]
    fn apply_patches_insert_and_remove() {
        let doc = sample_doc(4);
        let extra = encode_record('4', &[0xee; 16]);
        let patches = vec![
            CipherPatch::splice(1, 0, vec![extra.clone()]),
            CipherPatch::splice(2, 2, vec![]),
        ];
        let out = apply_patches(&doc, Layout::standard(), &patches).unwrap();
        let old_records = split_records(&doc).unwrap();
        let records = split_records(&out).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], old_records[0]);
        assert_eq!(records[1], extra);
        assert_eq!(records[2], old_records[1]);
    }

    #[test]
    fn apply_patches_rejects_overlap() {
        let doc = sample_doc(4);
        let patches = vec![CipherPatch::splice(1, 2, vec![]), CipherPatch::splice(2, 1, vec![])];
        assert!(apply_patches(&doc, Layout::standard(), &patches).is_err());
    }

    #[test]
    fn apply_patches_rejects_out_of_range() {
        let doc = sample_doc(2);
        let patches = vec![CipherPatch::splice(1, 5, vec![])];
        assert!(apply_patches(&doc, Layout::standard(), &patches).is_err());
    }

    #[test]
    fn empty_patch_set_is_identity() {
        let doc = sample_doc(2);
        assert_eq!(apply_patches(&doc, Layout::standard(), &[]).unwrap(), doc);
    }
}
