//! Batched and parallel application of the block cipher.
//!
//! Full-document operations (`Enc`, `Dec`, and the mediator's full-save
//! path) touch every block, so their cost is `blocks × per-block AES`.
//! The schemes assemble all plaintext/ciphertext blocks into one
//! contiguous buffer and hand it to [`apply_cipher`], which either runs
//! the cipher's batch loop in place or — above a size threshold — fans
//! the buffer out across scoped worker threads.
//!
//! Two invariants keep the parallel path byte-identical to the serial
//! one:
//!
//! * **Nonce draws stay sequential.** Callers draw every nonce from the
//!   document DRBG *before* calling in here; the workers only run AES on
//!   already-packed blocks, so the ciphertext does not depend on the
//!   worker count.
//! * **Order is preserved.** The buffer is split into contiguous chunks,
//!   each worker encrypts its chunk in place, and the scoped join puts
//!   the caller back in control with the blocks exactly where they were.

use pe_crypto::BlockCipher;

/// Which way to run the cipher over a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    /// Encrypt every block.
    Encrypt,
    /// Decrypt every block.
    Decrypt,
}

/// Documents with at least this many blocks are candidates for the
/// scoped-thread fan-out (8 KiB of plaintext at the default `b = 8`).
/// Below it, thread spawn/join overhead dominates the AES work.
pub(crate) const PARALLEL_THRESHOLD_BLOCKS: usize = 1024;

/// Minimum number of blocks each worker must receive; caps the worker
/// count so tiny tails never get their own thread.
const MIN_BLOCKS_PER_WORKER: usize = 512;

/// Picks the worker count for a batch of `blocks`: 1 (serial) below the
/// threshold, otherwise up to `N_cpu` workers with at least
/// [`MIN_BLOCKS_PER_WORKER`] blocks each.
pub(crate) fn auto_workers(blocks: usize) -> usize {
    if blocks < PARALLEL_THRESHOLD_BLOCKS {
        return 1;
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    cores.clamp(1, (blocks / MIN_BLOCKS_PER_WORKER).max(1))
}

/// Runs the cipher over every block of `blocks` in place, in order,
/// using `workers` scoped threads when `workers > 1`.
///
/// Records `core.batch.blocks_per_call`, and counts the batch in
/// `core.batch.parallel_saves` when the fan-out engages.
pub(crate) fn apply_cipher<C: BlockCipher + Sync>(
    cipher: &C,
    blocks: &mut [[u8; 16]],
    direction: Direction,
    workers: usize,
) {
    pe_observe::static_histogram!("core.batch.blocks_per_call").record(blocks.len() as u64);
    if workers > 1 && blocks.len() > 1 {
        pe_observe::static_counter!("core.batch.parallel_saves").inc();
        let chunk = blocks.len().div_ceil(workers.min(blocks.len()));
        crossbeam::thread::scope(|scope| {
            for part in blocks.chunks_mut(chunk) {
                scope.spawn(move |_| match direction {
                    Direction::Encrypt => cipher.encrypt_blocks(part),
                    Direction::Decrypt => cipher.decrypt_blocks(part),
                });
            }
        })
        .expect("cipher workers do not panic");
    } else {
        match direction {
            Direction::Encrypt => cipher.encrypt_blocks(blocks),
            Direction::Decrypt => cipher.decrypt_blocks(blocks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_crypto::Aes128;

    fn blocks(n: usize) -> Vec<[u8; 16]> {
        (0..n)
            .map(|i| {
                let mut b = [0u8; 16];
                b[..8].copy_from_slice(&(i as u64).to_be_bytes());
                b
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_for_both_directions() {
        let cipher = Aes128::new(&[0x42u8; 16]);
        for n in [1usize, 2, 3, 1000, 2049] {
            let mut serial = blocks(n);
            let mut parallel = serial.clone();
            apply_cipher(&cipher, &mut serial, Direction::Encrypt, 1);
            apply_cipher(&cipher, &mut parallel, Direction::Encrypt, 4);
            assert_eq!(serial, parallel, "encrypt n={n}");
            apply_cipher(&cipher, &mut serial, Direction::Decrypt, 1);
            apply_cipher(&cipher, &mut parallel, Direction::Decrypt, 7);
            assert_eq!(serial, parallel, "decrypt n={n}");
            assert_eq!(serial, blocks(n), "roundtrip n={n}");
        }
    }

    #[test]
    fn auto_workers_is_serial_below_threshold() {
        assert_eq!(auto_workers(0), 1);
        assert_eq!(auto_workers(PARALLEL_THRESHOLD_BLOCKS - 1), 1);
        assert!(auto_workers(PARALLEL_THRESHOLD_BLOCKS) >= 1);
        // Never more workers than the per-worker minimum allows.
        let w = auto_workers(PARALLEL_THRESHOLD_BLOCKS);
        assert!(w <= 2, "1024 blocks allow at most 2 workers, got {w}");
    }
}
