//! Shared block-packing helpers for the incremental schemes.

use pe_indexlist::Weighted;

/// A sealed (encrypted) variable-length block as stored in the block
/// sequence: the public character count (§V-C: "we have to store the block
/// character counters so that we remember block boundaries") plus one
/// 16-byte AES block of ciphertext.
///
/// Public so that alternative [`BlockSeq`](pe_indexlist::BlockSeq)
/// backings can be named in type parameters (e.g.
/// `RecbDocument<IndexedAvlTree<SealedBlock>>`); its contents are managed
/// exclusively by the schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlock {
    /// Number of plaintext characters in this block, `1..=8`.
    pub(crate) len: u8,
    /// The encrypted block.
    pub(crate) cipher: [u8; 16],
}

impl Weighted for SealedBlock {
    fn weight(&self) -> usize {
        self.len as usize
    }
}

impl SealedBlock {
    /// The record tag for this block: its character count as a digit.
    pub fn tag(&self) -> char {
        char::from_digit(u32::from(self.len), 10).expect("len is 1..=8")
    }
}

/// Splits `text` into chunks of exactly `b` bytes, except the last chunk
/// which holds the remainder (`1..=b` bytes). Empty input yields no
/// chunks.
pub(crate) fn chunks(text: &[u8], b: usize) -> Vec<Vec<u8>> {
    debug_assert!((1..=8).contains(&b));
    text.chunks(b).map(<[u8]>::to_vec).collect()
}

/// Pads a `1..=8` byte chunk to exactly 8 bytes with zeros.
pub(crate) fn pad8(data: &[u8]) -> [u8; 8] {
    debug_assert!((1..=8).contains(&data.len()));
    let mut out = [0u8; 8];
    out[..data.len()].copy_from_slice(data);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_exact_and_remainder() {
        assert_eq!(chunks(b"", 8), Vec::<Vec<u8>>::new());
        assert_eq!(chunks(b"abc", 8), vec![b"abc".to_vec()]);
        assert_eq!(chunks(b"abcdefgh", 8), vec![b"abcdefgh".to_vec()]);
        assert_eq!(chunks(b"abcdefghi", 8), vec![b"abcdefgh".to_vec(), b"i".to_vec()]);
        assert_eq!(chunks(b"abcde", 2), vec![b"ab".to_vec(), b"cd".to_vec(), b"e".to_vec()]);
    }

    #[test]
    fn pad8_zero_fills() {
        assert_eq!(pad8(b"ab"), [b'a', b'b', 0, 0, 0, 0, 0, 0]);
        assert_eq!(pad8(b"12345678"), *b"12345678");
    }

    #[test]
    fn sealed_block_tag_and_weight() {
        let block = SealedBlock { len: 5, cipher: [0; 16] };
        assert_eq!(block.tag(), '5');
        assert_eq!(block.weight(), 5);
    }
}
