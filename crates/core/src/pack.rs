//! Shared block-packing helpers for the incremental schemes.

use pe_indexlist::Weighted;

/// A sealed (encrypted) variable-length block as stored in the block
/// sequence: the public character count (§V-C: "we have to store the block
/// character counters so that we remember block boundaries") plus one
/// 16-byte AES block of ciphertext.
///
/// Public so that alternative [`BlockSeq`](pe_indexlist::BlockSeq)
/// backings can be named in type parameters (e.g.
/// `RecbDocument<IndexedAvlTree<SealedBlock>>`); its contents are managed
/// exclusively by the schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlock {
    /// Number of plaintext characters in this block, `1..=8`.
    pub(crate) len: u8,
    /// The encrypted block.
    pub(crate) cipher: [u8; 16],
}

impl Weighted for SealedBlock {
    fn weight(&self) -> usize {
        self.len as usize
    }
}

impl SealedBlock {
    /// The record tag for this block: its character count as a digit.
    pub fn tag(&self) -> char {
        char::from_digit(u32::from(self.len), 10).expect("len is 1..=8")
    }
}

/// Reused scratch buffers for the batch seal path (`seal_all` in the
/// rECB and RPC documents): packed block buffers, per-block lengths, and
/// the bulk nonce draw.
///
/// Lives on the document so repeated saves stop allocating once each
/// vector reaches its high-water-mark capacity — the seal half of the
/// zero-copy seal→WAL pipeline (the append half is the WAL writer's
/// reused frame buffer).
#[derive(Debug, Default)]
pub(crate) struct SealScratch {
    /// Packed-then-encrypted 16-byte blocks.
    pub(crate) bufs: Vec<[u8; 16]>,
    /// Plaintext character count per block.
    pub(crate) lens: Vec<u8>,
    /// Bulk nonce draw (rECB: 8 bytes per block; RPC: 4 bytes per
    /// intermediate chain link).
    pub(crate) nonces: Vec<u8>,
}

impl SealScratch {
    /// Clears the buffers (keeping capacity) and reserves for `n` blocks
    /// needing `nonce_bytes` of bulk randomness.
    pub(crate) fn reset(&mut self, n: usize, nonce_bytes: usize) {
        self.bufs.clear();
        self.bufs.reserve(n);
        self.lens.clear();
        self.lens.reserve(n);
        self.nonces.clear();
        self.nonces.resize(nonce_bytes, 0);
    }
}

/// Splits `text` into chunks of exactly `b` bytes, except the last chunk
/// which holds the remainder (`1..=b` bytes). Empty input yields no
/// chunks. Borrowing slices of `text` (rather than collecting owned
/// `Vec`s) keeps the full-document seal path allocation-free.
pub(crate) fn chunks(text: &[u8], b: usize) -> impl ExactSizeIterator<Item = &[u8]> {
    debug_assert!((1..=8).contains(&b));
    text.chunks(b)
}

/// Number of chunks [`chunks`] yields for `len` bytes at block size `b`.
pub(crate) fn chunk_count(len: usize, b: usize) -> usize {
    len.div_ceil(b)
}

/// Pads a `1..=8` byte chunk to exactly 8 bytes with zeros.
pub(crate) fn pad8(data: &[u8]) -> [u8; 8] {
    debug_assert!((1..=8).contains(&data.len()));
    let mut out = [0u8; 8];
    out[..data.len()].copy_from_slice(data);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_exact_and_remainder() {
        let collect = |text: &'static [u8], b: usize| -> Vec<Vec<u8>> {
            chunks(text, b).map(<[u8]>::to_vec).collect()
        };
        assert_eq!(collect(b"", 8), Vec::<Vec<u8>>::new());
        assert_eq!(collect(b"abc", 8), vec![b"abc".to_vec()]);
        assert_eq!(collect(b"abcdefgh", 8), vec![b"abcdefgh".to_vec()]);
        assert_eq!(collect(b"abcdefghi", 8), vec![b"abcdefgh".to_vec(), b"i".to_vec()]);
        assert_eq!(collect(b"abcde", 2), vec![b"ab".to_vec(), b"cd".to_vec(), b"e".to_vec()]);
    }

    #[test]
    fn chunk_count_matches_iterator() {
        for (len, b) in [(0usize, 8usize), (1, 8), (8, 8), (9, 8), (5, 2), (1000, 3)] {
            let text = vec![b'x'; len];
            assert_eq!(chunk_count(len, b), chunks(&text, b).len(), "len={len} b={b}");
        }
    }

    #[test]
    fn pad8_zero_fills() {
        assert_eq!(pad8(b"ab"), [b'a', b'b', 0, 0, 0, 0, 0, 0]);
        assert_eq!(pad8(b"12345678"), *b"12345678");
    }

    #[test]
    fn sealed_block_tag_and_weight() {
        let block = SealedBlock { len: 5, cipher: [0; 16] };
        assert_eq!(block.tag(), '5');
        assert_eq!(block.weight(), 5);
    }
}
