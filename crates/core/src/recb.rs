//! The randomized-ECB (rECB) incremental encryption mode (§V-B).
//!
//! Following Buonanno–Katz–Yung as used by the paper, the ciphertext of a
//! document `d₁ … dₙ` is
//!
//! ```text
//! F(r0),  F(r0⊕r1, r1⊕d1),  F(r0⊕r2, r2⊕d2),  …,  F(r0⊕rn, rn⊕dn)
//! ```
//!
//! where `F` is AES-128, `r0` is a per-document 64-bit nonce sealed in the
//! header block, and each data block packs `r0⊕rᵢ` in its left half and
//! `rᵢ⊕dᵢ` (the padded payload of up to 8 characters) in its right half.
//! Because each data block depends only on `r0` and its own fresh nonce,
//! blocks can be inserted, removed, or rewritten independently — the key
//! property that makes updates O(affected blocks · log n).
//!
//! The mode provides confidentiality only. An active server can splice
//! ciphertext blocks without detection; see [`RpcDocument`](crate::RpcDocument)
//! for the integrity-providing mode, and
//! [`baseline`](crate::baseline) for the schemes the paper compares
//! against.

use pe_crypto::aes::Aes128;
use pe_crypto::drbg::NonceSource;
use pe_crypto::BlockCipher;
use pe_indexlist::{BlockSeq, IndexedSkipList};

use crate::batch::{self, Direction};
use crate::error::CoreError;
use crate::keys::{DocumentKey, Mode, SchemeParams};
use crate::pack::{chunk_count, chunks, pad8, SealScratch, SealedBlock};
use crate::splice::{plan, SplicePlan};
use crate::wire::{
    decode_record, encode_record, split_records, CipherPatch, Layout, Preamble,
};
use crate::{EditOp, IncrementalCipherDoc};

/// Domain-separation magic stored in the header block's right half.
const HEADER_MAGIC: [u8; 8] = *b"PE1.RECB";

/// A confidentiality-only encrypted document using the rECB mode with
/// variable-length blocks.
///
/// # Example
///
/// ```
/// use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, SchemeParams};
/// use pe_crypto::CtrDrbg;
///
/// let key = DocumentKey::derive("pw", &[1u8; 16], 100);
/// let mut doc = RecbDocument::create(
///     &key,
///     SchemeParams::recb(8),
///     b"attack at dawn",
///     CtrDrbg::from_seed(3),
/// )?;
/// let patches = doc.apply(&EditOp::delete(10, 4))?;
/// assert!(!patches.is_empty());
/// assert_eq!(doc.decrypt()?, b"attack at ");
/// # Ok::<(), pe_core::CoreError>(())
/// ```
pub struct RecbDocument<S = IndexedSkipList<SealedBlock>> {
    cipher: Aes128,
    salt: [u8; 16],
    params: SchemeParams,
    r0: [u8; 8],
    header_cipher: [u8; 16],
    blocks: S,
    rng: Box<dyn NonceSource + Send>,
    /// Reused batch-seal buffers; see [`SealScratch`].
    scratch: SealScratch,
}

impl<S: BlockSeq<SealedBlock>> std::fmt::Debug for RecbDocument<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecbDocument")
            .field("mode", &Mode::Recb)
            .field("max_block", &self.params.max_block)
            .field("blocks", &self.blocks.len_blocks())
            .field("len", &self.blocks.total_weight())
            .finish_non_exhaustive()
    }
}

impl RecbDocument {
    /// Encrypts `plaintext` into a fresh document (the scheme's `Enc`),
    /// backed by the paper's [`IndexedSkipList`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParams`] when `params` are invalid or not
    /// rECB-mode.
    pub fn create<R>(
        key: &DocumentKey,
        params: SchemeParams,
        plaintext: &[u8],
        rng: R,
    ) -> Result<RecbDocument, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        RecbDocument::create_with_backing(key, params, plaintext, rng)
    }

    /// Loads a skip-list-backed document from its serialized ciphertext.
    ///
    /// # Errors
    ///
    /// As for [`RecbDocument::open_with_backing`].
    pub fn open<R>(key: &DocumentKey, serialized: &str, rng: R) -> Result<RecbDocument, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        RecbDocument::open_with_backing(key, serialized, rng)
    }
}

impl<S: BlockSeq<SealedBlock> + Default> RecbDocument<S> {
    /// Encrypts `plaintext` into a fresh document over an arbitrary
    /// [`BlockSeq`] backing (§V-C: "the idea of indexing could also be
    /// applied to any of the well-known balanced tree data structures").
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParams`] when `params` are invalid or not
    /// rECB-mode.
    pub fn create_with_backing<R>(
        key: &DocumentKey,
        params: SchemeParams,
        plaintext: &[u8],
        rng: R,
    ) -> Result<RecbDocument<S>, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        params.validate()?;
        if params.mode != Mode::Recb {
            return Err(CoreError::BadParams { detail: "params.mode must be Recb".into() });
        }
        let mut rng: Box<dyn NonceSource + Send> = Box::new(rng);
        let mut r0 = [0u8; 8];
        rng.fill_bytes(&mut r0);
        let cipher = key.cipher();
        let mut header = [0u8; 16];
        header[..8].copy_from_slice(&r0);
        header[8..].copy_from_slice(&HEADER_MAGIC);
        cipher.encrypt_block(&mut header);
        let mut doc = RecbDocument {
            cipher,
            salt: *key.salt(),
            params,
            r0,
            header_cipher: header,
            blocks: S::default(),
            rng,
            scratch: SealScratch::default(),
        };
        let workers = batch::auto_workers(chunk_count(plaintext.len(), params.max_block));
        let mut sealed = Vec::new();
        doc.seal_all(plaintext, workers, &mut sealed);
        doc.blocks.extend_back(sealed);
        Ok(doc)
    }

    /// Loads a document from its serialized ciphertext (the string the
    /// server stores) over an arbitrary backing.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Malformed`] for structural problems,
    /// [`CoreError::BadParams`] when the key's salt does not match the
    /// preamble, and [`CoreError::IntegrityFailure`] when the header block
    /// does not decrypt to the expected magic (wrong password or corrupted
    /// header).
    pub fn open_with_backing<R>(
        key: &DocumentKey,
        serialized: &str,
        rng: R,
    ) -> Result<RecbDocument<S>, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        let preamble = Preamble::parse(serialized)?;
        if preamble.mode != Mode::Recb {
            return Err(CoreError::Malformed { detail: "not an rECB document".into() });
        }
        if &preamble.salt != key.salt() {
            return Err(CoreError::BadParams {
                detail: "key salt does not match document preamble".into(),
            });
        }
        let records = split_records(serialized)?;
        if records.is_empty() {
            return Err(CoreError::Malformed { detail: "missing header record".into() });
        }
        let cipher = key.cipher();
        let (tag, header_cipher) = decode_record(records[0])?;
        if tag != '0' {
            return Err(CoreError::Malformed { detail: "first record is not a header".into() });
        }
        let mut header = header_cipher;
        cipher.decrypt_block(&mut header);
        if header[8..] != HEADER_MAGIC {
            pe_observe::static_counter!("core.integrity_failures.recb").inc();
            return Err(CoreError::IntegrityFailure {
                detail: "wrong password or corrupted header".into(),
            });
        }
        let mut r0 = [0u8; 8];
        r0.copy_from_slice(&header[..8]);
        let mut parsed = Vec::with_capacity(records.len() - 1);
        for record in &records[1..] {
            let (tag, block_cipher) = decode_record(record)?;
            let len = tag.to_digit(10).filter(|d| (1..=8).contains(d)).ok_or_else(|| {
                CoreError::Malformed { detail: format!("invalid data record tag {tag:?}") }
            })? as u8;
            if usize::from(len) > preamble.max_block {
                return Err(CoreError::Malformed {
                    detail: format!("block of {len} chars exceeds b={}", preamble.max_block),
                });
            }
            parsed.push(SealedBlock { len, cipher: block_cipher });
        }
        let mut blocks = S::default();
        blocks.extend_back(parsed);
        let params = SchemeParams::recb(preamble.max_block);
        Ok(RecbDocument {
            cipher,
            salt: preamble.salt,
            params,
            r0,
            header_cipher,
            blocks,
            rng: Box::new(rng),
            scratch: SealScratch::default(),
        })
    }
}

impl<S: BlockSeq<SealedBlock>> RecbDocument<S> {
    /// The scheme parameters this document was created with.
    pub fn params(&self) -> SchemeParams {
        self.params
    }

    /// Number of serialized records (header + data blocks).
    pub fn record_count(&self) -> usize {
        1 + self.blocks.len_blocks()
    }

    /// Seals every chunk of `text` into fresh blocks appended to `out`
    /// (the batch `Enc` path).
    ///
    /// Nonces are drawn from the document DRBG **sequentially** while the
    /// blocks are packed; only the AES applications fan out when
    /// `workers > 1`, so the ciphertext is byte-identical for every
    /// worker count. The packing and nonce buffers are the document's
    /// reused [`SealScratch`], so repeated saves do not allocate.
    fn seal_all(&mut self, text: &[u8], workers: usize, out: &mut Vec<SealedBlock>) {
        let n = chunk_count(text.len(), self.params.max_block);
        // One bulk draw for every block nonce: a NonceSource is a byte
        // stream, so this yields the same bytes as n sequential 8-byte
        // draws (and lets CtrDrbg batch its keystream blocks).
        self.scratch.reset(n, n * 8);
        self.rng.fill_bytes(&mut self.scratch.nonces);
        // The two block halves are pure byte-wise XORs, so they can be
        // packed as whole 64-bit words; the output bytes are identical.
        let r0w = u64::from_ne_bytes(self.r0);
        for (chunk, ri) in
            chunks(text, self.params.max_block).zip(self.scratch.nonces.chunks_exact(8))
        {
            let riw = u64::from_ne_bytes(ri.try_into().expect("8-byte nonce"));
            let payload = u64::from_ne_bytes(pad8(chunk));
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&(r0w ^ riw).to_ne_bytes());
            block[8..].copy_from_slice(&(riw ^ payload).to_ne_bytes());
            self.scratch.bufs.push(block);
            self.scratch.lens.push(chunk.len() as u8);
        }
        batch::apply_cipher(&self.cipher, &mut self.scratch.bufs, Direction::Encrypt, workers);
        pe_observe::static_counter!("core.blocks_sealed.recb").add(n as u64);
        out.reserve(n);
        out.extend(
            self.scratch
                .bufs
                .iter()
                .zip(&self.scratch.lens)
                .map(|(cipher, &len)| SealedBlock { len, cipher: *cipher }),
        );
    }

    /// Opens (decrypts) every block, appending the plaintext to `out`
    /// (the batch `Dec` path): one contiguous scratch buffer for the AES
    /// work instead of a `Vec` per block, fanned out for large documents.
    fn open_all(&self, out: &mut Vec<u8>) {
        let n = self.blocks.len_blocks();
        let mut bufs: Vec<[u8; 16]> = Vec::with_capacity(n);
        let mut lens: Vec<u8> = Vec::with_capacity(n);
        for sealed in self.blocks.iter() {
            bufs.push(sealed.cipher);
            lens.push(sealed.len);
        }
        batch::apply_cipher(&self.cipher, &mut bufs, Direction::Decrypt, batch::auto_workers(n));
        out.reserve(self.blocks.total_weight());
        // dᵢ = right ⊕ rᵢ = right ⊕ (left ⊕ r0), a whole-word XOR.
        let r0w = u64::from_ne_bytes(self.r0);
        for (block, len) in bufs.iter().zip(lens) {
            let left = u64::from_ne_bytes(block[..8].try_into().expect("half block"));
            let right = u64::from_ne_bytes(block[8..].try_into().expect("half block"));
            let data = (left ^ r0w ^ right).to_ne_bytes();
            out.extend_from_slice(&data[..len as usize]);
        }
        pe_observe::static_counter!("core.blocks_opened.recb").add(n as u64);
    }

    /// Opens (decrypts) the block at `ordinal` (single-block edit path).
    fn open_block(&self, ordinal: usize) -> Vec<u8> {
        let sealed = self.blocks.get(ordinal).expect("ordinal in range");
        let mut block = sealed.cipher;
        self.cipher.decrypt_block(&mut block);
        let mut data = Vec::with_capacity(sealed.len as usize);
        for k in 0..sealed.len as usize {
            let ri = block[k] ^ self.r0[k];
            data.push(block[8 + k] ^ ri);
        }
        pe_observe::static_counter!("core.blocks_opened.recb").inc();
        data
    }
}

impl<S: BlockSeq<SealedBlock> + Default> IncrementalCipherDoc for RecbDocument<S> {
    fn len(&self) -> usize {
        self.blocks.total_weight()
    }

    fn decrypt(&self) -> Result<Vec<u8>, CoreError> {
        let mut out = Vec::new();
        self.open_all(&mut out);
        Ok(out)
    }

    fn apply(&mut self, op: &EditOp) -> Result<Vec<CipherPatch>, CoreError> {
        let plan = plan(&self.blocks, op, |ordinal| self.open_block(ordinal))?;
        let SplicePlan::Splice { start_block, removed, content } = plan else {
            return Ok(Vec::new());
        };
        for _ in 0..removed {
            self.blocks.remove(start_block);
        }
        let workers = batch::auto_workers(chunk_count(content.len(), self.params.max_block));
        let mut sealed_blocks = Vec::new();
        self.seal_all(&content, workers, &mut sealed_blocks);
        let mut inserted = Vec::with_capacity(sealed_blocks.len());
        for (i, sealed) in sealed_blocks.into_iter().enumerate() {
            inserted.push(encode_record(sealed.tag(), &sealed.cipher));
            self.blocks.insert(start_block + i, sealed);
        }
        Ok(vec![CipherPatch::splice(1 + start_block, removed, inserted)])
    }

    /// Full-document replacement via the batch seal path: one nonce pass,
    /// one (possibly parallel) AES pass, no per-edit splice planning.
    fn replace_all(&mut self, plaintext: &[u8]) -> Result<(), CoreError> {
        let workers = batch::auto_workers(chunk_count(plaintext.len(), self.params.max_block));
        let mut sealed = Vec::new();
        self.seal_all(plaintext, workers, &mut sealed);
        let mut blocks = S::default();
        blocks.extend_back(sealed);
        self.blocks = blocks;
        Ok(())
    }

    fn serialize(&self) -> String {
        let mut out = Preamble::new(&self.params, self.salt).encode();
        out.push_str(&encode_record('0', &self.header_cipher));
        for block in self.blocks.iter() {
            out.push_str(&encode_record(block.tag(), &block.cipher));
        }
        out
    }

    fn layout(&self) -> Layout {
        Layout::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::apply_patches;
    use pe_crypto::CtrDrbg;

    fn key() -> DocumentKey {
        DocumentKey::derive("test-password", &[9u8; 16], 100)
    }

    fn doc(plaintext: &[u8], b: usize, seed: u64) -> RecbDocument {
        RecbDocument::create(&key(), SchemeParams::recb(b), plaintext, CtrDrbg::from_seed(seed))
            .unwrap()
    }

    #[test]
    fn roundtrip_simple() {
        let d = doc(b"hello world", 8, 1);
        assert_eq!(d.decrypt().unwrap(), b"hello world");
        assert_eq!(d.len(), 11);
    }

    #[test]
    fn roundtrip_every_block_size() {
        let text = b"The quick brown fox jumps over the lazy dog";
        for b in 1..=8 {
            let d = doc(text, b, b as u64);
            assert_eq!(d.decrypt().unwrap(), text, "block size {b}");
        }
    }

    #[test]
    fn empty_document() {
        let d = doc(b"", 8, 2);
        assert_eq!(d.decrypt().unwrap(), b"");
        assert!(d.is_empty());
        assert_eq!(d.record_count(), 1);
    }

    #[test]
    fn serialize_open_roundtrip() {
        let d = doc(b"some secret content", 4, 3);
        let wire = d.serialize();
        let reopened = RecbDocument::open(&key(), &wire, CtrDrbg::from_seed(99)).unwrap();
        assert_eq!(reopened.decrypt().unwrap(), b"some secret content");
        assert_eq!(reopened.serialize(), wire);
    }

    #[test]
    fn wrong_password_detected_via_header() {
        let d = doc(b"secret", 8, 4);
        let wire = d.serialize();
        let wrong = DocumentKey::derive("other-password", &[9u8; 16], 100);
        let err = RecbDocument::open(&wrong, &wire, CtrDrbg::from_seed(0)).unwrap_err();
        assert!(matches!(err, CoreError::IntegrityFailure { .. }));
    }

    #[test]
    fn mismatched_salt_rejected() {
        let d = doc(b"secret", 8, 5);
        let wire = d.serialize();
        let other_salt = DocumentKey::derive("test-password", &[1u8; 16], 100);
        assert!(matches!(
            RecbDocument::open(&other_salt, &wire, CtrDrbg::from_seed(0)),
            Err(CoreError::BadParams { .. })
        ));
    }

    #[test]
    fn ciphertext_is_nondeterministic() {
        let a = doc(b"same plaintext", 8, 10);
        let b = doc(b"same plaintext", 8, 11);
        assert_ne!(a.serialize(), b.serialize());
    }

    #[test]
    fn equal_blocks_have_unequal_ciphertext() {
        // 16 identical chars → two identical plaintext blocks at b=8.
        let d = doc(b"AAAAAAAAAAAAAAAA", 8, 12);
        let records = {
            let wire = d.serialize();
            split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect::<Vec<_>>()
        };
        assert_eq!(records.len(), 3);
        assert_ne!(records[1], records[2], "fresh nonces must differ per block");
    }

    #[test]
    fn insert_middle_roundtrip_and_patches() {
        let mut d = doc(b"abcdefghij", 4, 13);
        let before = d.serialize();
        let patches = d.apply(&EditOp::insert(5, b"XYZ")).unwrap();
        assert_eq!(d.decrypt().unwrap(), b"abcdeXYZfghij");
        let server_side = apply_patches(&before, d.layout(), &patches).unwrap();
        assert_eq!(server_side, d.serialize(), "patches must reproduce serialization");
    }

    #[test]
    fn patches_track_serialization_through_edit_script() {
        let mut d = doc(b"The quick brown fox jumps over the lazy dog", 8, 14);
        let mut server = d.serialize();
        let script = [
            EditOp::insert(0, b">> "),
            EditOp::delete(3, 4),
            EditOp::insert(20, b"INSERTED TEXT HERE"),
            EditOp::delete(0, 1),
            EditOp::insert(35, b"x"),
            EditOp::delete(10, 20),
        ];
        for op in &script {
            let patches = d.apply(op).unwrap();
            server = apply_patches(&server, d.layout(), &patches).unwrap();
            assert_eq!(server, d.serialize());
        }
        // And the final document still decrypts to the model plaintext.
        let mut model: Vec<u8> = b"The quick brown fox jumps over the lazy dog".to_vec();
        for op in &script {
            match op {
                EditOp::Insert { at, text } => {
                    model.splice(at..at, text.iter().copied());
                }
                EditOp::Delete { at, len } => {
                    model.drain(*at..*at + *len);
                }
            }
        }
        assert_eq!(d.decrypt().unwrap(), model);
    }

    #[test]
    fn append_and_prepend() {
        let mut d = doc(b"middle", 3, 15);
        d.apply(&EditOp::insert(6, b"-end")).unwrap();
        d.apply(&EditOp::insert(0, b"start-")).unwrap();
        assert_eq!(d.decrypt().unwrap(), b"start-middle-end");
    }

    #[test]
    fn delete_everything_then_insert() {
        let mut d = doc(b"all of this will go", 8, 16);
        d.apply(&EditOp::delete(0, 19)).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.record_count(), 1);
        d.apply(&EditOp::insert(0, b"fresh")).unwrap();
        assert_eq!(d.decrypt().unwrap(), b"fresh");
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut d = doc(b"abc", 8, 17);
        assert!(d.apply(&EditOp::insert(4, b"x")).is_err());
        assert!(d.apply(&EditOp::delete(2, 2)).is_err());
    }

    #[test]
    fn incremental_equals_full_reencryption_semantically() {
        // The defining IncE law: after any update, decrypt(IncE(C, op))
        // equals the edited plaintext (which is what Enc of the edited
        // plaintext decrypts to as well).
        let mut d = doc(b"incremental encryption", 5, 18);
        d.apply(&EditOp::insert(11, b" unforgeable")).unwrap();
        let fresh = doc(b"incremental unforgeable encryption", 5, 19);
        assert_eq!(d.decrypt().unwrap(), fresh.decrypt().unwrap());
    }

    #[test]
    fn substitution_attack_goes_undetected() {
        // §VI-A: "Our privacy-only encryption scheme cannot withstand
        // these attacks". Swapping two data records of equal length is
        // accepted silently by rECB — the negative control for the RPC
        // integrity tests.
        let d = doc(b"AAAAAAAABBBBBBBB", 8, 20);
        let wire = d.serialize();
        let records: Vec<String> =
            split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect();
        let swapped = format!(
            "{}{}{}{}",
            &wire[..Layout::standard().preamble_chars],
            records[0],
            records[2],
            records[1]
        );
        let tampered = RecbDocument::open(&key(), &swapped, CtrDrbg::from_seed(0)).unwrap();
        assert_eq!(tampered.decrypt().unwrap(), b"BBBBBBBBAAAAAAAA");
    }

    #[test]
    fn avl_backing_is_interchangeable() {
        use pe_indexlist::IndexedAvlTree;
        let text = b"any balanced tree works just as well";
        let mut avl_doc: RecbDocument<IndexedAvlTree<SealedBlock>> =
            RecbDocument::create_with_backing(
                &key(),
                SchemeParams::recb(4),
                text,
                CtrDrbg::from_seed(40),
            )
            .unwrap();
        let mut server = avl_doc.serialize();
        for op in [
            EditOp::insert(3, b" XX"),
            EditOp::delete(10, 6),
            EditOp::insert(0, b"head: "),
        ] {
            let patches = avl_doc.apply(&op).unwrap();
            server = apply_patches(&server, avl_doc.layout(), &patches).unwrap();
            assert_eq!(server, avl_doc.serialize());
        }
        // The wire format is backing-agnostic: a skip-list document opens
        // what the AVL document wrote.
        let reopened = RecbDocument::open(&key(), &server, CtrDrbg::from_seed(41)).unwrap();
        assert_eq!(reopened.decrypt().unwrap(), avl_doc.decrypt().unwrap());
    }

    #[test]
    fn forced_parallel_seal_is_byte_identical_to_serial() {
        // Two empty documents created from the same seed share r0 and the
        // DRBG state. Sealing the same text with different worker counts
        // must produce byte-identical blocks, because nonce draws stay
        // sequential and only the AES applications fan out.
        let text: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let mut serial = doc(b"", 8, 42);
        let mut parallel = doc(b"", 8, 42);
        let mut a = Vec::new();
        serial.seal_all(&text, 1, &mut a);
        let mut b = Vec::new();
        parallel.seal_all(&text, 4, &mut b);
        assert_eq!(a, b, "worker count must not change the ciphertext");
        for (i, sealed) in a.into_iter().enumerate() {
            serial.blocks.insert(i, sealed);
        }
        assert_eq!(serial.decrypt().unwrap(), text);
    }

    #[test]
    fn replace_all_matches_fresh_create_byte_for_byte() {
        // From an empty document, replace_all consumes the DRBG exactly
        // like create does, so the serialized ciphertext must match a
        // fresh document built from the same seed.
        let text: Vec<u8> = (0..9_000u32).map(|i| (i.wrapping_mul(31) % 256) as u8).collect();
        let mut grown = doc(b"", 8, 57);
        grown.replace_all(&text).unwrap();
        let fresh = doc(&text, 8, 57);
        assert_eq!(grown.serialize(), fresh.serialize());
        assert_eq!(grown.decrypt().unwrap(), text);
    }

    #[test]
    fn blowup_decreases_with_block_size() {
        let text = vec![b'x'; 1000];
        let mut blowups = Vec::new();
        for b in [1usize, 2, 4, 8] {
            let d = doc(&text, b, 21);
            blowups.push(d.serialize().len() as f64 / text.len() as f64);
        }
        for pair in blowups.windows(2) {
            assert!(pair[1] < pair[0], "blowup must shrink with b: {blowups:?}");
        }
        // At b=1 each char costs 27 ciphertext chars (plus header).
        assert!(blowups[0] > 26.0 && blowups[0] < 28.5);
        // At b=8 a full block costs 27/8 = 3.375.
        assert!(blowups[3] > 3.0 && blowups[3] < 4.0);
    }
}
