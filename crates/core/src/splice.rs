//! Edit planning shared by the incremental schemes.
//!
//! Both rECB and RPC documents handle an edit the same way at the block
//! level: locate the contiguous run of blocks the edit touches, decrypt
//! the boundary blocks, and compute the replacement plaintext for that
//! run. The schemes differ only in how the replacement blocks are sealed
//! (independent nonces vs chained nonces), so the planning step is shared.

use pe_indexlist::{BlockSeq, Weighted};

use crate::error::CoreError;
use crate::EditOp;

/// The block-level effect of one edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SplicePlan {
    /// The edit has no effect (empty insert / zero-length delete).
    Noop,
    /// Replace `removed` blocks starting at block ordinal `start_block`
    /// with blocks packed from `content` (which may be empty).
    Splice {
        /// First affected block ordinal.
        start_block: usize,
        /// Number of existing blocks consumed by the edit.
        removed: usize,
        /// Replacement plaintext for the affected region.
        content: Vec<u8>,
    },
}

/// Plans the block splice for `op` against a block sequence, using `open`
/// to decrypt the plaintext of a block by ordinal.
///
/// # Errors
///
/// Returns [`CoreError::OutOfBounds`] when the edit reaches outside the
/// document.
pub(crate) fn plan<T, S, F>(blocks: &S, op: &EditOp, open: F) -> Result<SplicePlan, CoreError>
where
    T: Weighted,
    S: BlockSeq<T>,
    F: Fn(usize) -> Vec<u8>,
{
    let planned = match op {
        EditOp::Insert { at, text } => plan_insert(blocks, *at, text, open),
        EditOp::Delete { at, len } => plan_delete(blocks, *at, *len, open),
    };
    if let Ok(SplicePlan::Splice { removed, content, .. }) = &planned {
        pe_observe::static_histogram!("core.splice_removed_blocks").record(*removed as u64);
        pe_observe::static_histogram!("core.splice_content_bytes").record(content.len() as u64);
    }
    planned
}

fn plan_insert<T, S, F>(
    blocks: &S,
    at: usize,
    text: &[u8],
    open: F,
) -> Result<SplicePlan, CoreError>
where
    T: Weighted,
    S: BlockSeq<T>,
    F: Fn(usize) -> Vec<u8>,
{
    let total = blocks.total_weight();
    if at > total {
        return Err(CoreError::OutOfBounds { at, len: total });
    }
    if text.is_empty() {
        return Ok(SplicePlan::Noop);
    }
    if blocks.is_empty() {
        return Ok(SplicePlan::Splice { start_block: 0, removed: 0, content: text.to_vec() });
    }
    if at == total {
        // Append: absorb the last block so partially-filled tails refill.
        let last = blocks.len_blocks() - 1;
        let mut content = open(last);
        content.extend_from_slice(text);
        return Ok(SplicePlan::Splice { start_block: last, removed: 1, content });
    }
    let loc = blocks.locate(at).expect("at < total");
    let mut content;
    if loc.offset == 0 {
        // Insertion on a block boundary: absorb the following block so the
        // chain nonce entering the region is preserved by the reseal.
        content = text.to_vec();
        content.extend_from_slice(&open(loc.block));
    } else {
        let data = open(loc.block);
        content = data[..loc.offset].to_vec();
        content.extend_from_slice(text);
        content.extend_from_slice(&data[loc.offset..]);
    }
    Ok(SplicePlan::Splice { start_block: loc.block, removed: 1, content })
}

fn plan_delete<T, S, F>(
    blocks: &S,
    at: usize,
    len: usize,
    open: F,
) -> Result<SplicePlan, CoreError>
where
    T: Weighted,
    S: BlockSeq<T>,
    F: Fn(usize) -> Vec<u8>,
{
    let total = blocks.total_weight();
    let end = at.checked_add(len).ok_or(CoreError::OutOfBounds { at, len: total })?;
    if end > total {
        return Err(CoreError::OutOfBounds { at: end, len: total });
    }
    if len == 0 {
        return Ok(SplicePlan::Noop);
    }
    let start = blocks.locate(at).expect("at < total because len > 0");
    // Last affected block (inclusive) and the surviving suffix of it.
    let (last_block, suffix) = if end == total {
        (blocks.len_blocks() - 1, Vec::new())
    } else {
        let loc_end = blocks.locate(end).expect("end < total");
        if loc_end.offset == 0 {
            (loc_end.block - 1, Vec::new())
        } else {
            let data = open(loc_end.block);
            (loc_end.block, data[loc_end.offset..].to_vec())
        }
    };
    let mut content = if start.offset > 0 {
        let data = open(start.block);
        data[..start.offset].to_vec()
    } else {
        Vec::new()
    };
    content.extend_from_slice(&suffix);
    Ok(SplicePlan::Splice {
        start_block: start.block,
        removed: last_block - start.block + 1,
        content,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_indexlist::IndexedSkipList;

    #[derive(Debug, Clone, PartialEq)]
    struct Plain(Vec<u8>);

    impl Weighted for Plain {
        fn weight(&self) -> usize {
            self.0.len()
        }
    }

    /// Builds a sequence of plaintext "blocks" (no encryption) so the
    /// planner can be tested in isolation.
    fn seq(words: &[&str]) -> IndexedSkipList<Plain> {
        let mut list = IndexedSkipList::with_seed(5);
        for (i, w) in words.iter().enumerate() {
            list.insert(i, Plain(w.as_bytes().to_vec()));
        }
        list
    }

    fn plan_on(
        list: &IndexedSkipList<Plain>,
        op: &EditOp,
    ) -> Result<SplicePlan, CoreError> {
        plan(list, op, |ord| list.get(ord).unwrap().0.clone())
    }

    #[test]
    fn insert_into_empty() {
        let list = seq(&[]);
        let plan = plan_on(&list, &EditOp::insert(0, b"hi")).unwrap();
        assert_eq!(plan, SplicePlan::Splice { start_block: 0, removed: 0, content: b"hi".to_vec() });
    }

    #[test]
    fn empty_insert_is_noop() {
        let list = seq(&["abc"]);
        assert_eq!(plan_on(&list, &EditOp::insert(1, b"")).unwrap(), SplicePlan::Noop);
    }

    #[test]
    fn append_absorbs_last_block() {
        let list = seq(&["abc", "de"]);
        let plan = plan_on(&list, &EditOp::insert(5, b"XY")).unwrap();
        assert_eq!(
            plan,
            SplicePlan::Splice { start_block: 1, removed: 1, content: b"deXY".to_vec() }
        );
    }

    #[test]
    fn boundary_insert_absorbs_following_block() {
        let list = seq(&["abc", "def"]);
        let plan = plan_on(&list, &EditOp::insert(3, b"XY")).unwrap();
        assert_eq!(
            plan,
            SplicePlan::Splice { start_block: 1, removed: 1, content: b"XYdef".to_vec() }
        );
    }

    #[test]
    fn interior_insert_splits_block() {
        let list = seq(&["abc", "def"]);
        let plan = plan_on(&list, &EditOp::insert(4, b"XY")).unwrap();
        assert_eq!(
            plan,
            SplicePlan::Splice { start_block: 1, removed: 1, content: b"dXYef".to_vec() }
        );
    }

    #[test]
    fn insert_past_end_rejected() {
        let list = seq(&["abc"]);
        assert!(matches!(
            plan_on(&list, &EditOp::insert(4, b"x")),
            Err(CoreError::OutOfBounds { at: 4, len: 3 })
        ));
    }

    #[test]
    fn delete_within_one_block() {
        let list = seq(&["abcdef"]);
        let plan = plan_on(&list, &EditOp::delete(1, 3)).unwrap();
        assert_eq!(
            plan,
            SplicePlan::Splice { start_block: 0, removed: 1, content: b"aef".to_vec() }
        );
    }

    #[test]
    fn delete_spanning_blocks_merges_remnants() {
        let list = seq(&["abc", "def", "ghi"]);
        // Delete "cdefg": prefix "ab" from block 0, suffix "hi" from block 2.
        let plan = plan_on(&list, &EditOp::delete(2, 5)).unwrap();
        assert_eq!(
            plan,
            SplicePlan::Splice { start_block: 0, removed: 3, content: b"abhi".to_vec() }
        );
    }

    #[test]
    fn delete_whole_blocks_leaves_empty_content() {
        let list = seq(&["abc", "def", "ghi"]);
        let plan = plan_on(&list, &EditOp::delete(3, 3)).unwrap();
        assert_eq!(
            plan,
            SplicePlan::Splice { start_block: 1, removed: 1, content: Vec::new() }
        );
    }

    #[test]
    fn delete_to_end() {
        let list = seq(&["abc", "def"]);
        let plan = plan_on(&list, &EditOp::delete(1, 5)).unwrap();
        assert_eq!(
            plan,
            SplicePlan::Splice { start_block: 0, removed: 2, content: b"a".to_vec() }
        );
    }

    #[test]
    fn delete_past_end_rejected() {
        let list = seq(&["abc"]);
        assert!(plan_on(&list, &EditOp::delete(1, 5)).is_err());
    }

    #[test]
    fn zero_delete_is_noop() {
        let list = seq(&["abc"]);
        assert_eq!(plan_on(&list, &EditOp::delete(1, 0)).unwrap(), SplicePlan::Noop);
    }
}
