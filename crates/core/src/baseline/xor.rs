//! The XOR incremental scheme — a deliberately weak negative control.
//!
//! Section V-A notes that "the hash-then-sign and XOR schemes are all
//! subject to substitution attacks". This module implements the XOR-style
//! scheme so those attacks can be demonstrated concretely: each block is
//! `(rᵢ ‖ F(rᵢ) ⊕ dᵢ)` with the nonce stored **in the clear**, making the
//! payload half malleable — an attacker who knows (or guesses) a block's
//! plaintext can rewrite it to any value of the same length without the
//! key, and blocks can be substituted freely.
//!
//! The attack tests in this module and the workspace integration tests
//! show the forgery succeeding here while the same manipulation against
//! [`RpcDocument`](crate::RpcDocument) raises
//! [`CoreError::IntegrityFailure`].

use pe_crypto::aes::Aes128;
use pe_crypto::drbg::NonceSource;
use pe_crypto::BlockCipher;
use pe_indexlist::{BlockSeq, IndexedSkipList};

use crate::error::CoreError;
use crate::keys::{DocumentKey, Mode, SchemeParams};
use crate::pack::{chunks, pad8, SealedBlock};
use crate::splice::{plan, SplicePlan};
use crate::wire::{
    decode_record, encode_record, split_records, CipherPatch, Layout, Preamble,
};
use crate::{EditOp, IncrementalCipherDoc};

/// An encrypted document using the malleable XOR scheme.
///
/// The wire format reuses the standard record layout; the preamble mode
/// tag is rECB's (a server cannot tell the schemes apart), so documents
/// must be reopened with [`XorDocument::open`], not
/// [`RecbDocument::open`](crate::RecbDocument::open).
pub struct XorDocument {
    cipher: Aes128,
    salt: [u8; 16],
    params: SchemeParams,
    blocks: IndexedSkipList<SealedBlock>,
    rng: Box<dyn NonceSource + Send>,
}

impl std::fmt::Debug for XorDocument {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("XorDocument")
            .field("blocks", &self.blocks.len_blocks())
            .field("len", &self.blocks.total_weight())
            .finish_non_exhaustive()
    }
}

impl XorDocument {
    /// Encrypts `plaintext` into a fresh document.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParams`] for invalid parameters.
    pub fn create<R>(
        key: &DocumentKey,
        params: SchemeParams,
        plaintext: &[u8],
        rng: R,
    ) -> Result<XorDocument, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        params.validate()?;
        let mut doc = XorDocument {
            cipher: key.cipher(),
            salt: *key.salt(),
            params: SchemeParams { mode: Mode::Recb, ..params },
            blocks: IndexedSkipList::new(),
            rng: Box::new(rng),
        };
        for (i, chunk) in chunks(plaintext, params.max_block).enumerate() {
            let sealed = doc.seal(chunk);
            doc.blocks.insert(i, sealed);
        }
        Ok(doc)
    }

    /// Loads a document from its serialized form. No integrity of any
    /// kind is verified — that is the point of this baseline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Malformed`] for structural problems only.
    pub fn open<R>(key: &DocumentKey, serialized: &str, rng: R) -> Result<XorDocument, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        let preamble = Preamble::parse(serialized)?;
        let records = split_records(serialized)?;
        let mut blocks = IndexedSkipList::new();
        for (i, record) in records.iter().enumerate() {
            let (tag, cipher) = decode_record(record)?;
            let len = tag.to_digit(10).filter(|d| (1..=8).contains(d)).ok_or_else(|| {
                CoreError::Malformed { detail: format!("invalid record tag {tag:?}") }
            })? as u8;
            blocks.insert(i, SealedBlock { len, cipher });
        }
        Ok(XorDocument {
            cipher: key.cipher(),
            salt: preamble.salt,
            params: SchemeParams::recb(preamble.max_block),
            blocks,
            rng: Box::new(rng),
        })
    }

    fn seal(&mut self, data: &[u8]) -> SealedBlock {
        let mut r = [0u8; 8];
        self.rng.fill_bytes(&mut r);
        let mask = self.mask(&r);
        let payload = pad8(data);
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&r);
        for k in 0..8 {
            block[8 + k] = payload[k] ^ mask[k];
        }
        SealedBlock { len: data.len() as u8, cipher: block }
    }

    /// Keystream for a nonce: the first 8 bytes of `F(r ‖ 0⁸)`.
    fn mask(&self, r: &[u8; 8]) -> [u8; 8] {
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(r);
        self.cipher.encrypt_block(&mut block);
        block[..8].try_into().expect("8 bytes")
    }

    fn open_block(&self, ordinal: usize) -> Vec<u8> {
        let sealed = self.blocks.get(ordinal).expect("in range");
        let r: [u8; 8] = sealed.cipher[..8].try_into().expect("8 bytes");
        let mask = self.mask(&r);
        (0..sealed.len as usize).map(|k| sealed.cipher[8 + k] ^ mask[k]).collect()
    }
}

impl IncrementalCipherDoc for XorDocument {
    fn len(&self) -> usize {
        self.blocks.total_weight()
    }

    fn decrypt(&self) -> Result<Vec<u8>, CoreError> {
        let mut out = Vec::with_capacity(self.len());
        for ordinal in 0..self.blocks.len_blocks() {
            out.extend_from_slice(&self.open_block(ordinal));
        }
        Ok(out)
    }

    fn apply(&mut self, op: &EditOp) -> Result<Vec<CipherPatch>, CoreError> {
        let plan = plan(&self.blocks, op, |ordinal| self.open_block(ordinal))?;
        let SplicePlan::Splice { start_block, removed, content } = plan else {
            return Ok(Vec::new());
        };
        for _ in 0..removed {
            self.blocks.remove(start_block);
        }
        let mut inserted = Vec::new();
        for (i, piece) in chunks(&content, self.params.max_block).enumerate() {
            let sealed = self.seal(piece);
            inserted.push(encode_record(sealed.tag(), &sealed.cipher));
            self.blocks.insert(start_block + i, sealed);
        }
        Ok(vec![CipherPatch::splice(start_block, removed, inserted)])
    }

    fn serialize(&self) -> String {
        let mut out = Preamble::new(&self.params, self.salt).encode();
        for block in self.blocks.iter() {
            out.push_str(&encode_record(block.tag(), &block.cipher));
        }
        out
    }

    fn layout(&self) -> Layout {
        Layout::standard()
    }
}

/// Forges a block of a serialized [`XorDocument`] **without the key**:
/// given the known plaintext of record `index`, rewrites it to decrypt to
/// `new_text` (same length).
///
/// This is the §V-A substitution/malleability attack, packaged as a
/// function so tests and examples can demonstrate it.
///
/// # Errors
///
/// Returns [`CoreError::Malformed`] for structural problems or when the
/// lengths differ.
pub(crate) fn forge_block(
    serialized: &str,
    index: usize,
    known_plaintext: &[u8],
    new_text: &[u8],
) -> Result<String, CoreError> {
    if known_plaintext.len() != new_text.len() {
        return Err(CoreError::Malformed { detail: "forgery must preserve length".into() });
    }
    let records = split_records(serialized)?;
    let record = records.get(index).ok_or_else(|| CoreError::Malformed {
        detail: format!("record {index} out of range"),
    })?;
    let (tag, mut cipher) = decode_record(record)?;
    for (k, (old, new)) in known_plaintext.iter().zip(new_text.iter()).enumerate() {
        cipher[8 + k] ^= old ^ new;
    }
    let forged = encode_record(tag, &cipher);
    let layout = Layout::standard();
    let start = layout.record_offset(index);
    let mut out = serialized.to_string();
    out.replace_range(start..start + layout.record_chars, &forged);
    Ok(out)
}

impl XorDocument {
    /// Public wrapper for the forgery helper — exposed so examples and
    /// benchmarks can demonstrate the attack.
    ///
    /// # Errors
    ///
    /// As for the underlying forgery helper.
    pub fn forge_without_key(
        serialized: &str,
        record_index: usize,
        known_plaintext: &[u8],
        new_text: &[u8],
    ) -> Result<String, CoreError> {
        forge_block(serialized, record_index, known_plaintext, new_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_crypto::CtrDrbg;

    fn key() -> DocumentKey {
        DocumentKey::derive("xor", &[7u8; 16], 100)
    }

    fn doc(text: &[u8], seed: u64) -> XorDocument {
        XorDocument::create(&key(), SchemeParams::recb(8), text, CtrDrbg::from_seed(seed))
            .unwrap()
    }

    #[test]
    fn roundtrip_and_edits() {
        let mut d = doc(b"pay alice $100 tomorrow", 1);
        assert_eq!(d.decrypt().unwrap(), b"pay alice $100 tomorrow");
        d.apply(&EditOp::delete(4, 6)).unwrap();
        assert_eq!(d.decrypt().unwrap(), b"pay $100 tomorrow");
    }

    #[test]
    fn serialize_open_roundtrip() {
        let d = doc(b"xor scheme contents", 2);
        let wire = d.serialize();
        let reopened = XorDocument::open(&key(), &wire, CtrDrbg::from_seed(5)).unwrap();
        assert_eq!(reopened.decrypt().unwrap(), b"xor scheme contents");
    }

    #[test]
    fn known_plaintext_forgery_succeeds_without_key() {
        // Attacker knows block 0 holds "pay $100" and rewrites it.
        let d = doc(b"pay $100", 3);
        let wire = d.serialize();
        let forged =
            XorDocument::forge_without_key(&wire, 0, b"pay $100", b"pay $999").unwrap();
        let victim = XorDocument::open(&key(), &forged, CtrDrbg::from_seed(0)).unwrap();
        assert_eq!(victim.decrypt().unwrap(), b"pay $999", "malleability attack must work");
    }

    #[test]
    fn substitution_attack_succeeds() {
        let d = doc(b"AAAAAAAABBBBBBBB", 4);
        let wire = d.serialize();
        let layout = Layout::standard();
        let pre = &wire[..layout.preamble_chars];
        let records: Vec<String> =
            split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect();
        let swapped = format!("{pre}{}{}", records[1], records[0]);
        let victim = XorDocument::open(&key(), &swapped, CtrDrbg::from_seed(0)).unwrap();
        assert_eq!(victim.decrypt().unwrap(), b"BBBBBBBBAAAAAAAA");
    }

    #[test]
    fn forgery_requires_equal_length() {
        let d = doc(b"pay $100", 5);
        let wire = d.serialize();
        assert!(XorDocument::forge_without_key(&wire, 0, b"pay $100", b"pay $1000").is_err());
    }
}
