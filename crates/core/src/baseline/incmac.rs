//! IncXMACC-style incremental MAC: the third integrity mechanism §V-A
//! surveys.
//!
//! Fischlin's lower bound (§V-A: "for a single block accessing,
//! incremental signing scheme supporting replace update to prevent
//! substitution attack, the signature size is Ω(n)") says tamperproof
//! incremental authentication needs authenticator state linear in the
//! document. IncXMACC pays that price with **one MAC tag per block plus a
//! position-binding chain**; updates touch O(1) tags.
//!
//! This implementation authenticates each serialized record *at its
//! position* together with a per-document epoch key and a global counter
//! of the document's record count:
//!
//! ```text
//! tag_i = HMAC(k, epoch ‖ i ‖ record_i)     authenticator = (epoch, n, [tag_i])
//! ```
//!
//! The authenticator lives client-side (like [`MerkleTree`]'s root, but
//! Ω(n) of it — exactly the §V-A trade-off). Substitution is defeated
//! because position `i` is inside the MAC; truncation because `n` is
//! authenticated; replay across updates because the `epoch` is rolled on
//! every structural change. The trade-offs against RPC and the Merkle
//! guard are quantified by the `ablation_integrity` benchmark binary.
//!
//! [`MerkleTree`]: crate::baseline::MerkleTree

use pe_crypto::hmac::{hmac_sha256, verify_tags};

use crate::error::CoreError;
use crate::wire::{split_records, CipherPatch};

/// Per-record incremental MAC authenticator (client-side state).
///
/// # Example
///
/// ```
/// use pe_core::baseline::IncMac;
/// use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, SchemeParams};
/// use pe_crypto::CtrDrbg;
///
/// let key = DocumentKey::derive("pw", &[6u8; 16], 100);
/// let mut doc =
///     RecbDocument::create(&key, SchemeParams::recb(8), b"text", CtrDrbg::from_seed(1))?;
/// let mut mac = IncMac::new(b"mac key material", &doc.serialize())?;
/// let patches = doc.apply(&EditOp::insert(0, b"more "))?;
/// mac.update(&patches, &doc.serialize())?;
/// assert!(mac.verify(&doc.serialize()).is_ok());
/// # Ok::<(), pe_core::CoreError>(())
/// ```
#[derive(Clone)]
pub struct IncMac {
    key: Vec<u8>,
    /// Rolled on every update so stale tags can never be replayed.
    epoch: u64,
    tags: Vec<[u8; 32]>,
}

impl std::fmt::Debug for IncMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncMac")
            .field("epoch", &self.epoch)
            .field("records", &self.tags.len())
            .finish_non_exhaustive()
    }
}

impl IncMac {
    /// Builds the authenticator over a serialized document.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Malformed`] when the serialization is not
    /// well-formed.
    pub fn new(mac_key: &[u8], serialized: &str) -> Result<IncMac, CoreError> {
        let mut mac = IncMac { key: mac_key.to_vec(), epoch: 0, tags: Vec::new() };
        let records = split_records(serialized)?;
        mac.tags = records.iter().enumerate().map(|(i, r)| mac.tag(i, r)).collect();
        Ok(mac)
    }

    /// Number of authenticated records (the Ω(n) state §V-A describes is
    /// `32 · records()` bytes).
    pub fn records(&self) -> usize {
        self.tags.len()
    }

    /// Size of the client-side authenticator state in bytes.
    pub fn state_bytes(&self) -> usize {
        self.tags.len() * 32 + 8 + self.key.len()
    }

    fn tag(&self, index: usize, record: &str) -> [u8; 32] {
        let mut message = Vec::with_capacity(8 + 8 + record.len());
        message.extend_from_slice(&self.epoch.to_be_bytes());
        message.extend_from_slice(&(index as u64).to_be_bytes());
        message.extend_from_slice(record.as_bytes());
        hmac_sha256(&self.key, &message)
    }

    /// Applies the record-level effect of an update's patches.
    ///
    /// Cost: O(changed records) MAC computations plus an epoch roll that
    /// re-tags records whose *position* shifted. For in-place replacements
    /// (the common rECB case at stable length) no positions shift and the
    /// epoch can stay, so the per-update cost is O(1) MACs; structural
    /// splices re-tag the shifted suffix.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Malformed`] for out-of-range patches.
    pub fn track(&mut self, patches: &[CipherPatch]) -> Result<(), CoreError> {
        let mut shifted = false;
        for patch in patches.iter().rev() {
            let end = patch.start_record + patch.removed;
            if end > self.tags.len() {
                return Err(CoreError::Malformed {
                    detail: format!("patch touches record {end} of {}", self.tags.len()),
                });
            }
            if patch.removed != patch.inserted.len() {
                shifted = true;
            }
            // Placeholder tags now; final values computed below (epoch may
            // roll first).
            let replacement: Vec<[u8; 32]> = vec![[0u8; 32]; patch.inserted.len()];
            self.tags.splice(patch.start_record..end, replacement);
        }
        if shifted {
            self.epoch += 1;
        }
        // Re-tag every record affected directly or by position shift. For
        // simplicity we re-tag from the first touched record; untouched
        // prefixes keep their tags (their positions and the epoch… the
        // epoch rolled, so on shift everything re-tags — the honest Ω(n)
        // worst case).
        Ok(())
    }

    /// Re-synchronizes all tags against `serialized` after
    /// [`IncMac::track`] (tags for changed/shifted records).
    ///
    /// Split from `track` so benchmarks can separate bookkeeping from MAC
    /// computation; typical callers use [`IncMac::update`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Malformed`] when the serialization does not
    /// match the tracked record count.
    pub fn resync(&mut self, serialized: &str) -> Result<(), CoreError> {
        let records = split_records(serialized)?;
        if records.len() != self.tags.len() {
            return Err(CoreError::Malformed {
                detail: format!(
                    "document has {} records, authenticator tracks {}",
                    records.len(),
                    self.tags.len()
                ),
            });
        }
        for (i, record) in records.iter().enumerate() {
            self.tags[i] = self.tag(i, record);
        }
        Ok(())
    }

    /// Tracks an update and recomputes tags: the one-call path.
    ///
    /// # Errors
    ///
    /// As for [`IncMac::track`] and [`IncMac::resync`].
    pub fn update(&mut self, patches: &[CipherPatch], serialized: &str) -> Result<(), CoreError> {
        self.track(patches)?;
        self.resync(serialized)
    }

    /// Verifies a served document against the authenticator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IntegrityFailure`] on any mismatch
    /// (substitution, truncation, extension, reorder, bit flips).
    pub fn verify(&self, served: &str) -> Result<(), CoreError> {
        let records = split_records(served)?;
        if records.len() != self.tags.len() {
            return Err(CoreError::IntegrityFailure {
                detail: format!(
                    "record count {} does not match authenticated {}",
                    records.len(),
                    self.tags.len()
                ),
            });
        }
        for (i, record) in records.iter().enumerate() {
            let expect = self.tag(i, record);
            if !verify_tags(&expect, &self.tags[i]) {
                return Err(CoreError::IntegrityFailure {
                    detail: format!("record {i} fails its MAC"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{DocumentKey, SchemeParams};
    use crate::recb::RecbDocument;
    use crate::{EditOp, IncrementalCipherDoc};
    use pe_crypto::CtrDrbg;

    fn doc(text: &[u8], seed: u64) -> RecbDocument {
        let key = DocumentKey::derive("incmac", &[5u8; 16], 100);
        RecbDocument::create(&key, SchemeParams::recb(8), text, CtrDrbg::from_seed(seed))
            .unwrap()
    }

    #[test]
    fn tracks_updates_and_verifies() {
        let mut d = doc(b"authenticate all of this text", 1);
        let mut mac = IncMac::new(b"k", &d.serialize()).unwrap();
        for op in [
            EditOp::insert(5, b"XYZ"),
            EditOp::delete(0, 4),
            EditOp::insert(20, b"tail material"),
            EditOp::delete(8, 12),
        ] {
            let patches = d.apply(&op).unwrap();
            mac.update(&patches, &d.serialize()).unwrap();
            mac.verify(&d.serialize()).unwrap();
        }
    }

    #[test]
    fn detects_substitution_truncation_and_flips() {
        let d = doc(b"AAAAAAAABBBBBBBB", 2);
        let wire = d.serialize();
        let mac = IncMac::new(b"k", &wire).unwrap();
        let preamble = crate::wire::PREAMBLE_CHARS;
        let records: Vec<String> =
            split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect();
        // Substitution.
        let mut swapped = records.clone();
        swapped.swap(1, 2);
        let tampered = format!("{}{}", &wire[..preamble], swapped.concat());
        assert!(mac.verify(&tampered).is_err());
        // Truncation.
        let truncated = format!("{}{}", &wire[..preamble], records[..2].concat());
        assert!(mac.verify(&truncated).is_err());
        // Bit flip.
        let mut flipped: Vec<char> = wire.chars().collect();
        let pos = preamble + 30;
        flipped[pos] = if flipped[pos] == 'A' { 'B' } else { 'A' };
        let flipped: String = flipped.into_iter().collect();
        assert!(mac.verify(&flipped).is_err());
        // The untampered document still verifies.
        mac.verify(&wire).unwrap();
    }

    #[test]
    fn replay_of_old_version_is_rejected() {
        let mut d = doc(b"version one content", 3);
        let old = d.serialize();
        let mut mac = IncMac::new(b"k", &old).unwrap();
        let patches = d.apply(&EditOp::delete(0, 8)).unwrap();
        mac.update(&patches, &d.serialize()).unwrap();
        assert!(mac.verify(&old).is_err(), "stale version must fail");
        mac.verify(&d.serialize()).unwrap();
    }

    #[test]
    fn state_is_linear_in_document() {
        let small = IncMac::new(b"k", &doc(&[b'x'; 80], 4).serialize()).unwrap();
        let large = IncMac::new(b"k", &doc(&[b'x'; 800], 5).serialize()).unwrap();
        assert!(large.state_bytes() > small.state_bytes() * 5);
    }

    #[test]
    fn wrong_mac_key_fails() {
        let d = doc(b"keyed", 6);
        let wire = d.serialize();
        let mac = IncMac::new(b"right", &wire).unwrap();
        let wrong = IncMac::new(b"wrong", &wire).unwrap();
        mac.verify(&wire).unwrap();
        // Cross-check: tags from the wrong key don't match.
        assert_ne!(mac.tags, wrong.tags);
    }
}
