//! Merkle hash tree: the integrity mechanism §V-A contrasts with RPC.
//!
//! The paper notes that hash-tree schemes "achieve true tamperproofing but
//! at the cost of O(n) size of signature, and O(log(n)) time complexity".
//! This module provides a Merkle tree over ciphertext records so the
//! ablation benchmarks can compare RPC's chained-nonce integrity (O(1)
//! extra blocks, re-verified on load in O(n)) against an external hash
//! tree kept client-side.
//!
//! Leaf replacement updates `O(log n)` hashes; leaf insertion/removal
//! rebuilds the tree (`O(n)`), which is the honest cost for the
//! array-backed complete-tree representation used here.

use pe_crypto::sha256::Sha256;

/// Domain-separation prefixes guard against second-preimage confusion
/// between leaves and interior nodes.
const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// An inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes from leaf level up to (excluding) the root.
    pub siblings: Vec<[u8; 32]>,
}

/// A Merkle tree over opaque leaf byte strings (serialized ciphertext
/// records).
///
/// # Example
///
/// ```
/// use pe_core::baseline::MerkleTree;
///
/// let mut tree = MerkleTree::build([b"rec0".as_slice(), b"rec1", b"rec2"]);
/// let root = tree.root();
/// tree.replace(1, b"rec1-modified");
/// assert_ne!(tree.root(), root);
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// Number of real leaves.
    leaves: usize,
    /// Leaf count padded to a power of two.
    width: usize,
    /// Heap-style array: `nodes[1]` is the root, leaf `i` lives at
    /// `width + i`.
    nodes: Vec<[u8; 32]>,
}

fn leaf_hash(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(&[LEAF_PREFIX]);
    hasher.update(data);
    hasher.finalize()
}

fn node_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(&[NODE_PREFIX]);
    hasher.update(left);
    hasher.update(right);
    hasher.finalize()
}

impl MerkleTree {
    /// Builds a tree over the given leaves. An empty iterator produces a
    /// tree whose root is the hash of an empty leaf.
    pub fn build<'a, I>(leaves: I) -> MerkleTree
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let hashes: Vec<[u8; 32]> = leaves.into_iter().map(leaf_hash).collect();
        Self::from_leaf_hashes(hashes)
    }

    fn from_leaf_hashes(hashes: Vec<[u8; 32]>) -> MerkleTree {
        let leaves = hashes.len();
        let width = leaves.max(1).next_power_of_two();
        let mut nodes = vec![[0u8; 32]; 2 * width];
        // Empty slots hash as empty leaves so the shape is total.
        let empty = leaf_hash(b"");
        for i in 0..width {
            nodes[width + i] = if i < leaves { hashes[i] } else { empty };
        }
        for i in (1..width).rev() {
            nodes[i] = node_hash(&nodes[2 * i], &nodes[2 * i + 1]);
        }
        MerkleTree { leaves, width, nodes }
    }

    /// Number of real leaves.
    pub fn len(&self) -> usize {
        self.leaves
    }

    /// True when no leaves are stored.
    pub fn is_empty(&self) -> bool {
        self.leaves == 0
    }

    /// The root commitment.
    pub fn root(&self) -> [u8; 32] {
        self.nodes[1]
    }

    /// Replaces leaf `index`, updating `O(log n)` interior hashes.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn replace(&mut self, index: usize, data: &[u8]) {
        assert!(index < self.leaves, "leaf {index} out of range");
        let mut pos = self.width + index;
        self.nodes[pos] = leaf_hash(data);
        while pos > 1 {
            pos /= 2;
            self.nodes[pos] = node_hash(&self.nodes[2 * pos], &self.nodes[2 * pos + 1]);
        }
    }

    /// Inserts a leaf at `index`, rebuilding the tree (`O(n)`).
    ///
    /// # Panics
    ///
    /// Panics if `index > len()`.
    pub fn insert(&mut self, index: usize, data: &[u8]) {
        assert!(index <= self.leaves, "leaf {index} out of range");
        let mut hashes: Vec<[u8; 32]> =
            (0..self.leaves).map(|i| self.nodes[self.width + i]).collect();
        hashes.insert(index, leaf_hash(data));
        *self = Self::from_leaf_hashes(hashes);
    }

    /// Removes the leaf at `index`, rebuilding the tree (`O(n)`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn remove(&mut self, index: usize) {
        assert!(index < self.leaves, "leaf {index} out of range");
        let mut hashes: Vec<[u8; 32]> =
            (0..self.leaves).map(|i| self.nodes[self.width + i]).collect();
        hashes.remove(index);
        *self = Self::from_leaf_hashes(hashes);
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.leaves, "leaf {index} out of range");
        let mut siblings = Vec::new();
        let mut pos = self.width + index;
        while pos > 1 {
            siblings.push(self.nodes[pos ^ 1]);
            pos /= 2;
        }
        MerkleProof { index, siblings }
    }

    /// Verifies an inclusion proof against a root commitment.
    pub fn verify(root: &[u8; 32], data: &[u8], proof: &MerkleProof) -> bool {
        let mut hash = leaf_hash(data);
        let mut index = proof.index;
        for sibling in &proof.siblings {
            hash = if index.is_multiple_of(2) {
                node_hash(&hash, sibling)
            } else {
                node_hash(sibling, &hash)
            };
            index /= 2;
        }
        hash == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("record-{i}").into_bytes()).collect()
    }

    fn tree(n: usize) -> MerkleTree {
        let data = leaves(n);
        MerkleTree::build(data.iter().map(Vec::as_slice))
    }

    #[test]
    fn roots_differ_for_different_content() {
        assert_ne!(tree(3).root(), tree(4).root());
        let mut other = leaves(3);
        other[1][0] ^= 1;
        let changed = MerkleTree::build(other.iter().map(Vec::as_slice));
        assert_ne!(tree(3).root(), changed.root());
    }

    #[test]
    fn replace_updates_root_consistently() {
        let mut t = tree(5);
        t.replace(2, b"new content");
        // A rebuilt tree over the same leaves must agree.
        let mut data = leaves(5);
        data[2] = b"new content".to_vec();
        let rebuilt = MerkleTree::build(data.iter().map(Vec::as_slice));
        assert_eq!(t.root(), rebuilt.root());
    }

    #[test]
    fn insert_and_remove_match_rebuilds() {
        let mut t = tree(4);
        t.insert(2, b"inserted");
        let mut data = leaves(4);
        data.insert(2, b"inserted".to_vec());
        let rebuilt = MerkleTree::build(data.iter().map(Vec::as_slice));
        assert_eq!(t.root(), rebuilt.root());
        t.remove(0);
        data.remove(0);
        let rebuilt = MerkleTree::build(data.iter().map(Vec::as_slice));
        assert_eq!(t.root(), rebuilt.root());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn proofs_verify_and_reject_tampering() {
        let data = leaves(7);
        let t = MerkleTree::build(data.iter().map(Vec::as_slice));
        let root = t.root();
        for (i, leaf) in data.iter().enumerate() {
            let proof = t.prove(i);
            assert!(MerkleTree::verify(&root, leaf, &proof), "leaf {i}");
            assert!(!MerkleTree::verify(&root, b"forged", &proof));
            // A proof for one index must not verify another leaf.
            if i > 0 {
                assert!(!MerkleTree::verify(&root, &data[i - 1], &proof));
            }
        }
    }

    #[test]
    fn single_and_empty_trees() {
        let empty = MerkleTree::build(std::iter::empty::<&[u8]>());
        assert!(empty.is_empty());
        let single = MerkleTree::build([b"only".as_slice()]);
        assert_eq!(single.len(), 1);
        let proof = single.prove(0);
        assert!(MerkleTree::verify(&single.root(), b"only", &proof));
    }

    #[test]
    fn domain_separation_prevents_leaf_node_confusion() {
        // A leaf equal to the concatenation of two hashes must not produce
        // the parent hash.
        let t = tree(2);
        let mut concat = Vec::new();
        concat.push(NODE_PREFIX);
        concat.extend_from_slice(&t.nodes[2]);
        concat.extend_from_slice(&t.nodes[3]);
        assert_ne!(leaf_hash(&concat), t.root());
    }
}
