//! The CoClo baseline: full re-encryption on every update.
//!
//! CoClo ("Content Cloaking") preserved privacy in Google Docs by
//! encrypting the document, but every save re-encrypted and retransmitted
//! the whole document. This implementation wraps [`RecbDocument`]'s wire
//! format (so servers cannot distinguish the schemes) while exhibiting
//! CoClo's cost profile: `apply` is `O(document)` in both time and patch
//! size.

use pe_crypto::drbg::NonceSource;
use pe_crypto::CtrDrbg;

use crate::error::CoreError;
use crate::keys::{DocumentKey, SchemeParams};
use crate::recb::RecbDocument;
use crate::wire::{split_records, CipherPatch, Layout};
use crate::{EditOp, IncrementalCipherDoc};

/// A full-re-encryption encrypted document (the CoClo cost model).
///
/// # Example
///
/// ```
/// use pe_core::baseline::CoCloDocument;
/// use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, SchemeParams};
/// use pe_crypto::CtrDrbg;
///
/// let key = DocumentKey::derive("pw", &[4u8; 16], 100);
/// let mut doc = CoCloDocument::create(&key, SchemeParams::recb(8), b"abc", CtrDrbg::from_seed(1))?;
/// let patches = doc.apply(&EditOp::insert(3, b"def"))?;
/// // Every update replaces the whole document.
/// assert_eq!(patches.len(), 1);
/// assert_eq!(patches[0].start_record, 0);
/// # Ok::<(), pe_core::CoreError>(())
/// ```
pub struct CoCloDocument {
    key: DocumentKey,
    params: SchemeParams,
    plaintext: Vec<u8>,
    inner: RecbDocument,
    rng: Box<dyn NonceSource + Send>,
}

impl std::fmt::Debug for CoCloDocument {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoCloDocument")
            .field("len", &self.plaintext.len())
            .finish_non_exhaustive()
    }
}

impl CoCloDocument {
    /// Encrypts `plaintext` into a fresh document.
    ///
    /// # Errors
    ///
    /// As for [`RecbDocument::create`].
    pub fn create<R>(
        key: &DocumentKey,
        params: SchemeParams,
        plaintext: &[u8],
        rng: R,
    ) -> Result<CoCloDocument, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        let mut rng: Box<dyn NonceSource + Send> = Box::new(rng);
        let inner = RecbDocument::create(key, params, plaintext, Self::fork(&mut rng))?;
        Ok(CoCloDocument { key: key.clone(), params, plaintext: plaintext.to_vec(), inner, rng })
    }

    /// Derives an owned child generator from the document's generator (the
    /// inner document is rebuilt on every update and consumes its own
    /// nonce source).
    fn fork(rng: &mut Box<dyn NonceSource + Send>) -> CtrDrbg {
        let mut seed = [0u8; 16];
        rng.fill_bytes(&mut seed);
        CtrDrbg::new(seed)
    }

    /// The number of serialized records.
    pub fn record_count(&self) -> usize {
        self.inner.record_count()
    }
}

impl IncrementalCipherDoc for CoCloDocument {
    fn len(&self) -> usize {
        self.plaintext.len()
    }

    fn decrypt(&self) -> Result<Vec<u8>, CoreError> {
        self.inner.decrypt()
    }

    fn apply(&mut self, op: &EditOp) -> Result<Vec<CipherPatch>, CoreError> {
        let len = self.plaintext.len();
        match op {
            EditOp::Insert { at, text } => {
                if *at > len {
                    return Err(CoreError::OutOfBounds { at: *at, len });
                }
                self.plaintext.splice(at..at, text.iter().copied());
            }
            EditOp::Delete { at, len: dlen } => {
                let end = at.checked_add(*dlen).filter(|&e| e <= len);
                let Some(end) = end else {
                    return Err(CoreError::OutOfBounds { at: at + dlen, len });
                };
                self.plaintext.drain(*at..end);
            }
        }
        let old_records = self.inner.record_count();
        // CoClo: re-encrypt everything with fresh randomness.
        let fork = Self::fork(&mut self.rng);
        self.inner = RecbDocument::create(&self.key, self.params, &self.plaintext, fork)?;
        let wire = self.inner.serialize();
        let inserted =
            split_records(&wire)?.into_iter().map(str::to_string).collect::<Vec<_>>();
        Ok(vec![CipherPatch::splice(0, old_records, inserted)])
    }

    fn serialize(&self) -> String {
        self.inner.serialize()
    }

    fn layout(&self) -> Layout {
        self.inner.layout()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::apply_patches;

    fn key() -> DocumentKey {
        DocumentKey::derive("coclo", &[6u8; 16], 100)
    }

    fn doc(text: &[u8], seed: u64) -> CoCloDocument {
        CoCloDocument::create(&key(), SchemeParams::recb(8), text, CtrDrbg::from_seed(seed))
            .unwrap()
    }

    #[test]
    fn roundtrip_and_edits() {
        let mut d = doc(b"hello world", 1);
        d.apply(&EditOp::delete(0, 6)).unwrap();
        d.apply(&EditOp::insert(5, b"!")).unwrap();
        assert_eq!(d.decrypt().unwrap(), b"world!");
    }

    #[test]
    fn every_update_replaces_everything() {
        let mut d = doc(&[b'x'; 100], 2);
        let before = d.serialize();
        let patches = d.apply(&EditOp::insert(50, b"y")).unwrap();
        assert_eq!(patches.len(), 1);
        assert_eq!(patches[0].start_record, 0);
        // All records replaced: patch size ~ document size.
        assert_eq!(patches[0].removed, split_records(&before).unwrap().len());
        let after = apply_patches(&before, d.layout(), &patches).unwrap();
        assert_eq!(after, d.serialize());
    }

    #[test]
    fn reencryption_refreshes_all_nonces() {
        let mut d = doc(b"static text that never changes much", 3);
        let before: Vec<String> = split_records(&d.serialize())
            .unwrap()
            .iter()
            .map(|r| r.to_string())
            .collect();
        d.apply(&EditOp::insert(0, b"z")).unwrap();
        let after: Vec<String> =
            split_records(&d.serialize()).unwrap().iter().map(|r| r.to_string()).collect();
        // No record survives a CoClo update.
        for record in &after {
            assert!(!before.contains(record));
        }
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut d = doc(b"abc", 4);
        assert!(d.apply(&EditOp::insert(9, b"x")).is_err());
        assert!(d.apply(&EditOp::delete(1, 9)).is_err());
    }
}
