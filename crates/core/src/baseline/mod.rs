//! Baseline schemes the paper compares against or discusses.
//!
//! * [`CoCloDocument`] — the CoClo comparator (D'Angelo, Vitali,
//!   Zacchiroli, SAC 2010): correct and private, but it "requires
//!   reencrypting and transmitting the entire document for every update".
//!   Implemented so the benchmark harness can regenerate the incremental
//!   vs full-re-encryption crossover that motivates the paper.
//! * [`XorDocument`] — the XOR incremental scheme (§V-A cites
//!   Bellare–Goldreich–Goldwasser's virus-protection paper): ideal update
//!   cost, but malleable and subject to substitution attacks. Implemented
//!   as a *negative control*: the attack tests demonstrate forgery
//!   succeeding here and failing against RPC.
//! * [`MerkleTree`] — the hash-tree integrity mechanism §V-A discusses
//!   ("true tamperproofing but at the cost of … O(log(n)) time
//!   complexity"): an external integrity layer that can be combined with
//!   rECB, used in the ablation benchmarks.
//! * [`IncMac`] — the IncXMACC-style per-block MAC §V-A cites, paying
//!   Fischlin's Ω(n) authenticator-size lower bound for O(1)-MAC
//!   replace-updates.

mod coclo;
mod hashtree;
mod incmac;
mod xor;

pub use coclo::CoCloDocument;
pub use hashtree::{MerkleProof, MerkleTree};
pub use incmac::IncMac;
pub use xor::XorDocument;
