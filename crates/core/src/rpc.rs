//! The RPC (randomized plaintext chaining) incremental encryption mode
//! with the Wang–Kao–Yeh length amendment (§V-B).
//!
//! Ciphertext of a document `d₁ … dₙ`:
//!
//! ```text
//! F(r0, α, r1), F(r1, d1, r2), F(r2, d2, r3), …, F(rn, dn, r0),
//! F(r0 ⊕ ⊕rᵢ, ⊕dᵢ, |d|)
//! ```
//!
//! Neighbouring blocks are chained through random nonces: block `i`
//! carries its own nonce `rᵢ` and its successor's `rᵢ₊₁`, with the chain
//! closing circularly back to the header's `r0`. A final checksum block
//! seals the XOR of all nonces and payloads, **plus the document length**
//! — the amendment of Wang, Kao and Yeh ("Forgery Attack on the RPC
//! Incremental Unforgeable Encryption Scheme", ASIACCS 2006) that defeats
//! block-deletion forgeries the original RPC admits.
//!
//! # Block geometry
//!
//! An AES block is 16 bytes: 4-byte chain-in nonce, 1-byte character
//! count, 7-byte payload, 4-byte chain-out nonce. The count lives *inside*
//! the encryption (unlike rECB, where the public record tag is
//! authoritative) because an integrity-providing scheme must not let the
//! server silently rewrite block lengths. Consequently RPC blocks hold at
//! most **7** characters; `SchemeParams::rpc` with `max_block == 8` is
//! rejected. This deviation from the paper's "8 characters" is recorded in
//! DESIGN.md.
//!
//! Any block substitution, reordering, truncation, or replay breaks
//! either the nonce chain or the checksum and is reported as
//! [`CoreError::IntegrityFailure`].

use pe_crypto::aes::Aes128;
use pe_crypto::drbg::NonceSource;
use pe_crypto::BlockCipher;
use pe_indexlist::{BlockSeq, IndexedSkipList};

use crate::batch::{self, Direction};
use crate::error::CoreError;
use crate::keys::{DocumentKey, Mode, SchemeParams};
use crate::pack::{chunk_count, chunks, SealScratch, SealedBlock};
use crate::splice::{plan, SplicePlan};
use crate::wire::{
    decode_record, encode_record, split_records, CipherPatch, Layout, Preamble,
};
use crate::{EditOp, IncrementalCipherDoc};

/// Header magic (the paper's α marker).
const HEADER_MAGIC: [u8; 8] = *b"PE1.RPC_";

/// Maximum characters per RPC block (one payload byte holds the count).
pub const RPC_MAX_BLOCK: usize = 7;

/// The plaintext content of one opened data block.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OpenBlock {
    r_in: u32,
    data: Vec<u8>,
    r_out: u32,
    /// The 8 middle bytes (count byte ‖ padded payload) as one integer —
    /// the per-block contribution to the checksum aggregate.
    mid: u64,
}

/// A confidentiality-and-integrity encrypted document using RPC mode.
///
/// # Example
///
/// ```
/// use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RpcDocument, SchemeParams};
/// use pe_crypto::CtrDrbg;
///
/// let key = DocumentKey::derive("pw", &[2u8; 16], 100);
/// let mut doc = RpcDocument::create(
///     &key,
///     SchemeParams::rpc(7),
///     b"meet at noon",
///     CtrDrbg::from_seed(4),
/// )?;
/// doc.apply(&EditOp::insert(8, b"high "))?;
/// assert_eq!(doc.decrypt()?, b"meet at high noon");
/// # Ok::<(), pe_core::CoreError>(())
/// ```
pub struct RpcDocument {
    cipher: Aes128,
    salt: [u8; 16],
    params: SchemeParams,
    r0: u32,
    header_cipher: [u8; 16],
    checksum_cipher: [u8; 16],
    blocks: IndexedSkipList<SealedBlock>,
    /// XOR of the chain-in nonces of all data blocks.
    xor_r: u32,
    /// XOR of the middle 8 bytes of all data blocks.
    xor_mid: u64,
    rng: Box<dyn NonceSource + Send>,
    /// Reused batch-seal buffers; see [`SealScratch`].
    scratch: SealScratch,
}

impl std::fmt::Debug for RpcDocument {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpcDocument")
            .field("mode", &Mode::Rpc)
            .field("max_block", &self.params.max_block)
            .field("blocks", &self.blocks.len_blocks())
            .field("len", &self.blocks.total_weight())
            .finish_non_exhaustive()
    }
}

impl RpcDocument {
    /// Encrypts `plaintext` into a fresh document (the scheme's `Enc`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadParams`] when `params` are invalid, not
    /// RPC-mode, or `max_block > 7`.
    pub fn create<R>(
        key: &DocumentKey,
        params: SchemeParams,
        plaintext: &[u8],
        rng: R,
    ) -> Result<RpcDocument, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        params.validate()?;
        if params.mode != Mode::Rpc {
            return Err(CoreError::BadParams { detail: "params.mode must be Rpc".into() });
        }
        if params.max_block > RPC_MAX_BLOCK {
            return Err(CoreError::BadParams {
                detail: format!("RPC blocks hold at most {RPC_MAX_BLOCK} characters"),
            });
        }
        let mut rng: Box<dyn NonceSource + Send> = Box::new(rng);
        let r0 = rng.next_u32();
        let mut doc = RpcDocument {
            cipher: key.cipher(),
            salt: *key.salt(),
            params,
            r0,
            header_cipher: [0u8; 16],
            checksum_cipher: [0u8; 16],
            blocks: IndexedSkipList::new(),
            xor_r: 0,
            xor_mid: 0,
            rng,
            scratch: SealScratch::default(),
        };
        let n = chunk_count(plaintext.len(), params.max_block);
        // Draw chain nonces: r1 … rn, closing back to r0.
        let r_in = if n == 0 { r0 } else { doc.rng.next_u32() };
        doc.reseal_header(r_in);
        let workers = batch::auto_workers(n);
        let mut sealed = Vec::new();
        doc.seal_all(plaintext, r_in, r0, workers, &mut sealed);
        doc.blocks.extend_back(sealed);
        doc.reseal_checksum();
        Ok(doc)
    }

    /// Loads and **fully verifies** a document from its serialized
    /// ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Malformed`] for structural problems,
    /// [`CoreError::BadParams`] for a salt mismatch, and
    /// [`CoreError::IntegrityFailure`] when the password is wrong or the
    /// ciphertext fails chain/checksum verification.
    pub fn open<R>(key: &DocumentKey, serialized: &str, rng: R) -> Result<RpcDocument, CoreError>
    where
        R: NonceSource + Send + 'static,
    {
        let preamble = Preamble::parse(serialized)?;
        if preamble.mode != Mode::Rpc {
            return Err(CoreError::Malformed { detail: "not an RPC document".into() });
        }
        if &preamble.salt != key.salt() {
            return Err(CoreError::BadParams {
                detail: "key salt does not match document preamble".into(),
            });
        }
        if preamble.max_block > RPC_MAX_BLOCK {
            return Err(CoreError::Malformed {
                detail: format!("RPC block size {} exceeds {RPC_MAX_BLOCK}", preamble.max_block),
            });
        }
        let records = split_records(serialized)?;
        if records.len() < 2 {
            return Err(CoreError::Malformed {
                detail: "RPC document needs header and checksum records".into(),
            });
        }
        let cipher = key.cipher();
        let (htag, header_cipher) = decode_record(records[0])?;
        if htag != '0' {
            return Err(CoreError::Malformed { detail: "first record is not a header".into() });
        }
        let (ctag, checksum_cipher) = decode_record(records[records.len() - 1])?;
        if ctag != '9' {
            return Err(CoreError::Malformed { detail: "last record is not a checksum".into() });
        }
        let mut parsed = Vec::with_capacity(records.len() - 2);
        for record in &records[1..records.len() - 1] {
            let (tag, block_cipher) = decode_record(record)?;
            let len = tag
                .to_digit(10)
                .filter(|d| (1..=RPC_MAX_BLOCK as u32).contains(d))
                .ok_or_else(|| CoreError::Malformed {
                    detail: format!("invalid data record tag {tag:?}"),
                })? as u8;
            parsed.push(SealedBlock { len, cipher: block_cipher });
        }
        let mut blocks = IndexedSkipList::new();
        blocks.extend_back(parsed);
        let mut doc = RpcDocument {
            cipher,
            salt: preamble.salt,
            params: SchemeParams::rpc(preamble.max_block),
            r0: 0, // set by verify below
            header_cipher,
            checksum_cipher,
            blocks,
            xor_r: 0,
            xor_mid: 0,
            rng: Box::new(rng),
            scratch: SealScratch::default(),
        };
        // Full verification also recovers r0 and the aggregates.
        let (r0, xor_r, xor_mid, _plaintext) = doc.verify()?;
        doc.r0 = r0;
        doc.xor_r = xor_r;
        doc.xor_mid = xor_mid;
        Ok(doc)
    }

    /// The scheme parameters this document was created with.
    pub fn params(&self) -> SchemeParams {
        self.params
    }

    /// Number of serialized records (header + data blocks + checksum).
    pub fn record_count(&self) -> usize {
        2 + self.blocks.len_blocks()
    }

    /// Seals one data block.
    fn seal(&mut self, r_in: u32, data: &[u8], r_out: u32) -> SealedBlock {
        debug_assert!((1..=self.params.max_block).contains(&data.len()));
        let mut block = [0u8; 16];
        block[..4].copy_from_slice(&r_in.to_be_bytes());
        block[4] = data.len() as u8;
        block[5..5 + data.len()].copy_from_slice(data);
        let mid = u64::from_be_bytes(block[4..12].try_into().expect("8 bytes"));
        block[12..].copy_from_slice(&r_out.to_be_bytes());
        self.cipher.encrypt_block(&mut block);
        self.xor_r ^= r_in;
        self.xor_mid ^= mid;
        pe_observe::static_counter!("core.blocks_sealed.rpc").inc();
        SealedBlock { len: data.len() as u8, cipher: block }
    }

    /// Seals a whole run of text as one batch: packs every chunk with its
    /// chain nonces (draws stay strictly sequential, so the ciphertext is
    /// byte-identical to sealing block by block with [`Self::seal`]), then
    /// encrypts all blocks in one [`batch::apply_cipher`] call.
    ///
    /// The first block's chain-in is `r_in_first`; the last block's
    /// chain-out is `r_out_last`; intermediate nonces come from the
    /// document DRBG in chunk order.
    fn seal_all(
        &mut self,
        text: &[u8],
        r_in_first: u32,
        r_out_last: u32,
        workers: usize,
        out: &mut Vec<SealedBlock>,
    ) {
        let n = chunk_count(text.len(), self.params.max_block);
        // One bulk draw for the n-1 intermediate chain nonces: a
        // NonceSource is a byte stream, so the little-endian words below
        // are exactly what n-1 sequential `next_u32` calls would return.
        // Packing and nonce buffers are the document's reused
        // [`SealScratch`], so repeated saves do not allocate.
        self.scratch.reset(n, n.saturating_sub(1) * 4);
        self.rng.fill_bytes(&mut self.scratch.nonces);
        let mut r_in = r_in_first;
        for (i, piece) in chunks(text, self.params.max_block).enumerate() {
            let r_out = if i + 1 == n {
                r_out_last
            } else {
                u32::from_le_bytes(
                    self.scratch.nonces[4 * i..4 * i + 4].try_into().expect("4 bytes"),
                )
            };
            let mut block = [0u8; 16];
            block[..4].copy_from_slice(&r_in.to_be_bytes());
            block[4] = piece.len() as u8;
            block[5..5 + piece.len()].copy_from_slice(piece);
            let mid = u64::from_be_bytes(block[4..12].try_into().expect("8 bytes"));
            block[12..].copy_from_slice(&r_out.to_be_bytes());
            self.xor_r ^= r_in;
            self.xor_mid ^= mid;
            self.scratch.bufs.push(block);
            self.scratch.lens.push(piece.len() as u8);
            r_in = r_out;
        }
        batch::apply_cipher(&self.cipher, &mut self.scratch.bufs, Direction::Encrypt, workers);
        pe_observe::static_counter!("core.blocks_sealed.rpc").add(n as u64);
        out.reserve(n);
        out.extend(
            self.scratch
                .bufs
                .iter()
                .zip(&self.scratch.lens)
                .map(|(cipher, &len)| SealedBlock { len, cipher: *cipher }),
        );
    }

    /// Opens the data block at `ordinal` without verifying its position
    /// in the chain (chain checks happen in [`Self::verify`]).
    ///
    /// Infallible because every in-memory block was either sealed by this
    /// document or already passed [`Self::verify`] during `open`.
    fn open_block(&self, ordinal: usize) -> OpenBlock {
        let sealed = self.blocks.get(ordinal).expect("ordinal in range");
        Self::open_cipher(&self.cipher, &sealed.cipher)
            .expect("in-memory block passed verification")
    }

    fn open_cipher(cipher: &Aes128, sealed: &[u8; 16]) -> Result<OpenBlock, CoreError> {
        let mut block = *sealed;
        cipher.decrypt_block(&mut block);
        let r_in = u32::from_be_bytes(block[..4].try_into().expect("4 bytes"));
        let r_out = u32::from_be_bytes(block[12..].try_into().expect("4 bytes"));
        let mid = u64::from_be_bytes(block[4..12].try_into().expect("8 bytes"));
        // The in-block count byte is covered by the encryption; a value
        // outside 1..=RPC_MAX_BLOCK can only mean tampering (or a wrong
        // key) and must surface as an integrity failure, never be
        // clamped into range.
        let len = block[4] as usize;
        if !(1..=RPC_MAX_BLOCK).contains(&len) {
            pe_observe::static_counter!("core.integrity_failures.rpc").inc();
            return Err(CoreError::IntegrityFailure {
                detail: format!("sealed block count byte {len} outside 1..={RPC_MAX_BLOCK}"),
            });
        }
        let data = block[5..5 + len].to_vec();
        pe_observe::static_counter!("core.blocks_opened.rpc").inc();
        Ok(OpenBlock { r_in, data, r_out, mid })
    }

    /// Removes a block's contribution from the running aggregates.
    fn retire(&mut self, opened: &OpenBlock) {
        self.xor_r ^= opened.r_in;
        self.xor_mid ^= opened.mid;
    }

    fn reseal_header(&mut self, r_first: u32) {
        let mut block = [0u8; 16];
        block[..4].copy_from_slice(&self.r0.to_be_bytes());
        block[4..12].copy_from_slice(&HEADER_MAGIC);
        block[12..].copy_from_slice(&r_first.to_be_bytes());
        self.cipher.encrypt_block(&mut block);
        self.header_cipher = block;
    }

    fn reseal_checksum(&mut self) {
        let mut block = [0u8; 16];
        block[..4].copy_from_slice(&(self.r0 ^ self.xor_r).to_be_bytes());
        block[4..12].copy_from_slice(&self.xor_mid.to_be_bytes());
        block[12..].copy_from_slice(&(self.blocks.total_weight() as u32).to_be_bytes());
        self.cipher.encrypt_block(&mut block);
        self.checksum_cipher = block;
    }

    /// Verifies the header magic, the full nonce chain, the per-block
    /// length counters, and the checksum block (including the length
    /// amendment). Returns `(r0, xor_r, xor_mid, plaintext)`.
    fn verify(&self) -> Result<(u32, u32, u64, Vec<u8>), CoreError> {
        let fail = |detail: String| {
            pe_observe::static_counter!("core.integrity_failures.rpc").inc();
            Err(CoreError::IntegrityFailure { detail })
        };
        let mut header = self.header_cipher;
        self.cipher.decrypt_block(&mut header);
        if header[4..12] != HEADER_MAGIC {
            return fail("wrong password or corrupted header".into());
        }
        let r0 = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
        let mut expected = u32::from_be_bytes(header[12..].try_into().expect("4 bytes"));
        // Batch-decrypt every data block in one pass, then walk the
        // decrypted buffers in order checking the chain. The chain checks
        // are pure reads, so decryption order does not matter and the
        // batch (possibly parallel) pass is safe.
        let n = self.blocks.len_blocks();
        let mut bufs: Vec<[u8; 16]> = Vec::with_capacity(n);
        let mut tags: Vec<u8> = Vec::with_capacity(n);
        for sealed in self.blocks.iter() {
            bufs.push(sealed.cipher);
            tags.push(sealed.len);
        }
        batch::apply_cipher(&self.cipher, &mut bufs, Direction::Decrypt, batch::auto_workers(n));
        let mut xor_r = 0u32;
        let mut xor_mid = 0u64;
        let mut plaintext = Vec::with_capacity(self.blocks.total_weight());
        for (i, block) in bufs.iter().enumerate() {
            let r_in = u32::from_be_bytes(block[..4].try_into().expect("4 bytes"));
            let r_out = u32::from_be_bytes(block[12..].try_into().expect("4 bytes"));
            let mid = u64::from_be_bytes(block[4..12].try_into().expect("8 bytes"));
            // The in-block count byte is covered by the encryption; a
            // value outside 1..=RPC_MAX_BLOCK can only mean tampering (or
            // a wrong key) and must surface as an integrity failure.
            let len = block[4] as usize;
            if !(1..=RPC_MAX_BLOCK).contains(&len) {
                return fail(format!("block {i} sealed count byte out of range"));
            }
            if r_in != expected {
                return fail(format!("nonce chain broken entering block {i}"));
            }
            if len != tags[i] as usize {
                return fail(format!(
                    "block {i} length counter mismatch: tag {} vs sealed {len}",
                    tags[i],
                ));
            }
            xor_r ^= r_in;
            xor_mid ^= mid;
            plaintext.extend_from_slice(&block[5..5 + len]);
            expected = r_out;
        }
        pe_observe::static_counter!("core.blocks_opened.rpc").add(n as u64);
        if expected != r0 {
            return fail("nonce chain does not close back to the header".into());
        }
        let mut checksum = self.checksum_cipher;
        self.cipher.decrypt_block(&mut checksum);
        let want_r = u32::from_be_bytes(checksum[..4].try_into().expect("4 bytes"));
        let want_mid = u64::from_be_bytes(checksum[4..12].try_into().expect("8 bytes"));
        let want_len = u32::from_be_bytes(checksum[12..].try_into().expect("4 bytes"));
        if want_r != r0 ^ xor_r {
            return fail("checksum nonce aggregate mismatch".into());
        }
        if want_mid != xor_mid {
            return fail("checksum payload aggregate mismatch".into());
        }
        if want_len as usize != plaintext.len() {
            return fail(format!(
                "document length mismatch: checksum says {want_len}, blocks hold {}",
                plaintext.len()
            ));
        }
        Ok((r0, xor_r, xor_mid, plaintext))
    }
}

impl IncrementalCipherDoc for RpcDocument {
    fn len(&self) -> usize {
        self.blocks.total_weight()
    }

    fn decrypt(&self) -> Result<Vec<u8>, CoreError> {
        let (_, _, _, plaintext) = self.verify()?;
        Ok(plaintext)
    }

    fn apply(&mut self, op: &EditOp) -> Result<Vec<CipherPatch>, CoreError> {
        let old_records = self.record_count();
        let plan = plan(&self.blocks, op, |ordinal| self.open_block(ordinal).data)?;
        let SplicePlan::Splice { start_block, removed, content } = plan else {
            return Ok(Vec::new());
        };
        // Chain nonces at the boundaries of the affected region.
        let (chain_in, chain_out) = if removed > 0 {
            let first = self.open_block(start_block);
            let last = if removed == 1 {
                first.clone()
            } else {
                self.open_block(start_block + removed - 1)
            };
            (first.r_in, last.r_out)
        } else {
            // Only possible when inserting into an empty document.
            (self.rng.next_u32(), self.r0)
        };
        // Retire the removed blocks from the aggregates and the list.
        for _ in 0..removed {
            let opened = self.open_block(start_block);
            self.retire(&opened);
            self.blocks.remove(start_block);
        }
        let n = chunk_count(content.len(), self.params.max_block);
        let mut data_patch;
        if n == 0 {
            // Pure deletion: the predecessor's chain-out must skip to
            // `chain_out`.
            if start_block == 0 {
                self.reseal_header(chain_out);
                data_patch = CipherPatch::splice(
                    0,
                    1 + removed,
                    vec![encode_record('0', &self.header_cipher)],
                );
            } else {
                let pred = start_block - 1;
                let opened = self.open_block(pred);
                self.retire(&opened);
                let resealed = self.seal(opened.r_in, &opened.data, chain_out);
                let record = encode_record(resealed.tag(), &resealed.cipher);
                self.blocks.replace(pred, resealed);
                data_patch = CipherPatch::splice(1 + pred, 1 + removed, vec![record]);
            }
        } else {
            let workers = batch::auto_workers(n);
            let mut sealed_run = Vec::new();
            self.seal_all(&content, chain_in, chain_out, workers, &mut sealed_run);
            let mut inserted = Vec::with_capacity(n);
            for (i, sealed) in sealed_run.into_iter().enumerate() {
                inserted.push(encode_record(sealed.tag(), &sealed.cipher));
                self.blocks.insert(start_block + i, sealed);
            }
            data_patch = CipherPatch::splice(1 + start_block, removed, inserted);
            if removed == 0 {
                // Empty-document insertion: the header must point at the
                // fresh chain head; merge it into the (contiguous) patch.
                debug_assert_eq!(start_block, 0);
                self.reseal_header(chain_in);
                let mut records = vec![encode_record('0', &self.header_cipher)];
                records.extend(data_patch.inserted);
                data_patch = CipherPatch::splice(0, 1, records);
            }
        }
        self.reseal_checksum();
        let checksum_patch = CipherPatch::splice(
            old_records - 1,
            1,
            vec![encode_record('9', &self.checksum_cipher)],
        );
        Ok(vec![data_patch, checksum_patch])
    }

    fn replace_all(&mut self, plaintext: &[u8]) -> Result<(), CoreError> {
        let n = chunk_count(plaintext.len(), self.params.max_block);
        self.blocks = IndexedSkipList::new();
        self.xor_r = 0;
        self.xor_mid = 0;
        // Fresh chain under the unchanged document nonce r0.
        let r_in = if n == 0 { self.r0 } else { self.rng.next_u32() };
        self.reseal_header(r_in);
        let workers = batch::auto_workers(n);
        let mut sealed = Vec::new();
        self.seal_all(plaintext, r_in, self.r0, workers, &mut sealed);
        self.blocks.extend_back(sealed);
        self.reseal_checksum();
        Ok(())
    }

    fn serialize(&self) -> String {
        let mut out = Preamble::new(&self.params, self.salt).encode();
        out.push_str(&encode_record('0', &self.header_cipher));
        for block in self.blocks.iter() {
            out.push_str(&encode_record(block.tag(), &block.cipher));
        }
        out.push_str(&encode_record('9', &self.checksum_cipher));
        out
    }

    fn layout(&self) -> Layout {
        Layout::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::apply_patches;
    use pe_crypto::CtrDrbg;

    fn key() -> DocumentKey {
        DocumentKey::derive("rpc-password", &[5u8; 16], 100)
    }

    fn doc(plaintext: &[u8], b: usize, seed: u64) -> RpcDocument {
        RpcDocument::create(&key(), SchemeParams::rpc(b), plaintext, CtrDrbg::from_seed(seed))
            .unwrap()
    }

    #[test]
    fn roundtrip_simple() {
        let d = doc(b"hello rpc world", 7, 1);
        assert_eq!(d.decrypt().unwrap(), b"hello rpc world");
    }

    #[test]
    fn roundtrip_every_block_size() {
        let text = b"integrity is not optional in hostile clouds";
        for b in 1..=7 {
            let d = doc(text, b, b as u64);
            assert_eq!(d.decrypt().unwrap(), text, "block size {b}");
        }
    }

    #[test]
    fn block_size_8_rejected() {
        let err =
            RpcDocument::create(&key(), SchemeParams::rpc(8), b"x", CtrDrbg::from_seed(1))
                .unwrap_err();
        assert!(matches!(err, CoreError::BadParams { .. }));
    }

    #[test]
    fn empty_document() {
        let d = doc(b"", 7, 2);
        assert_eq!(d.decrypt().unwrap(), b"");
        assert_eq!(d.record_count(), 2);
    }

    #[test]
    fn serialize_open_roundtrip() {
        let d = doc(b"chained secrets", 5, 3);
        let wire = d.serialize();
        let reopened = RpcDocument::open(&key(), &wire, CtrDrbg::from_seed(9)).unwrap();
        assert_eq!(reopened.decrypt().unwrap(), b"chained secrets");
        assert_eq!(reopened.serialize(), wire);
    }

    #[test]
    fn wrong_password_detected() {
        let d = doc(b"secret", 7, 4);
        let wire = d.serialize();
        let wrong = DocumentKey::derive("bad", &[5u8; 16], 100);
        assert!(matches!(
            RpcDocument::open(&wrong, &wire, CtrDrbg::from_seed(0)),
            Err(CoreError::IntegrityFailure { .. })
        ));
    }

    #[test]
    fn edit_script_roundtrip_with_patches() {
        let mut d = doc(b"The quick brown fox jumps over the lazy dog", 7, 5);
        let mut server = d.serialize();
        let mut model: Vec<u8> = b"The quick brown fox jumps over the lazy dog".to_vec();
        let script = [
            EditOp::insert(0, b"<<"),
            EditOp::insert(22, b" INSERT"),
            EditOp::delete(5, 10),
            EditOp::delete(0, 2),
            EditOp::insert(33, b"!"),
            EditOp::delete(10, 24),
        ];
        for op in &script {
            let patches = d.apply(op).unwrap();
            server = apply_patches(&server, d.layout(), &patches).unwrap();
            assert_eq!(server, d.serialize());
            match op {
                EditOp::Insert { at, text } => {
                    model.splice(at..at, text.iter().copied());
                }
                EditOp::Delete { at, len } => {
                    model.drain(*at..*at + *len);
                }
            }
            assert_eq!(d.decrypt().unwrap(), model, "after {op:?}");
        }
        // The server-side string must reopen and verify cleanly.
        let reopened = RpcDocument::open(&key(), &server, CtrDrbg::from_seed(77)).unwrap();
        assert_eq!(reopened.decrypt().unwrap(), model);
    }

    #[test]
    fn delete_everything_then_rebuild() {
        let mut d = doc(b"ephemeral", 7, 6);
        let mut server = d.serialize();
        for patches in [
            d.apply(&EditOp::delete(0, 9)).unwrap(),
            d.apply(&EditOp::insert(0, b"reborn")).unwrap(),
        ] {
            server = apply_patches(&server, d.layout(), &patches).unwrap();
        }
        assert_eq!(server, d.serialize());
        assert_eq!(d.decrypt().unwrap(), b"reborn");
        assert!(RpcDocument::open(&key(), &server, CtrDrbg::from_seed(0)).is_ok());
    }

    /// Tamper helper: swap two records in a serialized document.
    fn swap_records(wire: &str, a: usize, b: usize) -> String {
        let pre = &wire[..Layout::standard().preamble_chars];
        let mut records: Vec<String> =
            split_records(wire).unwrap().iter().map(|r| r.to_string()).collect();
        records.swap(a, b);
        format!("{pre}{}", records.concat())
    }

    #[test]
    fn block_swap_detected() {
        let d = doc(b"AAAAAAABBBBBBB", 7, 7);
        let wire = d.serialize();
        // Records: header, A-block, B-block, checksum. Swap the data blocks.
        let tampered = swap_records(&wire, 1, 2);
        assert!(matches!(
            RpcDocument::open(&key(), &tampered, CtrDrbg::from_seed(0)),
            Err(CoreError::IntegrityFailure { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let d = doc(b"do not shorten this document", 7, 8);
        let wire = d.serialize();
        let pre = Layout::standard().preamble_chars;
        let records: Vec<String> =
            split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect();
        // Drop one data block but keep header and checksum.
        let mut kept = records.clone();
        kept.remove(2);
        let tampered = format!("{}{}", &wire[..pre], kept.concat());
        assert!(matches!(
            RpcDocument::open(&key(), &tampered, CtrDrbg::from_seed(0)),
            Err(CoreError::IntegrityFailure { .. })
        ));
    }

    #[test]
    fn block_replay_detected() {
        // Replace a block with an older sealed version of the same
        // position (captured before an edit).
        let mut d = doc(b"version one of text", 7, 9);
        let old_wire = d.serialize();
        let old_records: Vec<String> =
            split_records(&old_wire).unwrap().iter().map(|r| r.to_string()).collect();
        d.apply(&EditOp::delete(0, 7)).unwrap();
        let new_wire = d.serialize();
        let pre = Layout::standard().preamble_chars;
        let mut records: Vec<String> =
            split_records(&new_wire).unwrap().iter().map(|r| r.to_string()).collect();
        records[1] = old_records[1].clone();
        let tampered = format!("{}{}", &new_wire[..pre], records.concat());
        assert!(matches!(
            RpcDocument::open(&key(), &tampered, CtrDrbg::from_seed(0)),
            Err(CoreError::IntegrityFailure { .. })
        ));
    }

    #[test]
    fn tag_rewrite_detected() {
        // Flip a public length tag; the sealed count must win.
        let d = doc(b"sevensevens", 7, 10);
        let wire = d.serialize();
        let pre = Layout::standard().preamble_chars;
        let mut records: Vec<String> =
            split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect();
        let mut chars: Vec<char> = records[1].chars().collect();
        chars[0] = if chars[0] == '7' { '4' } else { '7' };
        records[1] = chars.into_iter().collect();
        let tampered = format!("{}{}", &wire[..pre], records.concat());
        assert!(matches!(
            RpcDocument::open(&key(), &tampered, CtrDrbg::from_seed(0)),
            Err(CoreError::IntegrityFailure { .. })
        ));
    }

    #[test]
    fn tampered_count_byte_detected() {
        // Regression: the sealed in-block count byte used to be clamped
        // with `.min(RPC_MAX_BLOCK)`, silently truncating tampered
        // blocks. Forge a block whose decrypted count byte is 200 (valid
        // public tag, valid AES block under the right key) and check it
        // surfaces as an integrity failure, not a 7-character block.
        let d = doc(b"AAAAAAABBBBBBB", 7, 13);
        let wire = d.serialize();
        let pre = Layout::standard().preamble_chars;
        let mut records: Vec<String> =
            split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect();
        let mut forged = [0u8; 16];
        forged[4] = 200; // count byte far outside 1..=RPC_MAX_BLOCK
        key().cipher().encrypt_block(&mut forged);
        records[1] = encode_record('7', &forged);
        let tampered = format!("{}{}", &wire[..pre], records.concat());
        match RpcDocument::open(&key(), &tampered, CtrDrbg::from_seed(0)) {
            Err(CoreError::IntegrityFailure { detail }) => {
                assert!(detail.contains("count byte"), "unexpected detail: {detail}");
            }
            other => panic!("expected IntegrityFailure, got {other:?}"),
        }
    }

    #[test]
    fn forced_parallel_seal_is_byte_identical_to_serial() {
        // Same-seed empty documents share r0 and DRBG state; sealing the
        // same text with different worker counts must give identical
        // blocks and identical checksum aggregates.
        let text: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        let mut serial = doc(b"", 7, 42);
        let mut parallel = doc(b"", 7, 42);
        let r_in_s = serial.rng.next_u32();
        let r_in_p = parallel.rng.next_u32();
        assert_eq!(r_in_s, r_in_p);
        let mut a = Vec::new();
        let r0_s = serial.r0;
        serial.seal_all(&text, r_in_s, r0_s, 1, &mut a);
        let mut b = Vec::new();
        let r0_p = parallel.r0;
        parallel.seal_all(&text, r_in_p, r0_p, 4, &mut b);
        assert_eq!(a, b, "worker count must not change the ciphertext");
        assert_eq!(serial.xor_r, parallel.xor_r);
        assert_eq!(serial.xor_mid, parallel.xor_mid);
    }

    #[test]
    fn replace_all_matches_fresh_create_byte_for_byte() {
        // From an empty document, replace_all consumes the DRBG exactly
        // like create does (fresh chain head, then one chain-out per
        // block), so the wire output must match a fresh same-seed
        // document — and still verify on reopen.
        let text: Vec<u8> = (0..9_000u32).map(|i| (i.wrapping_mul(37) % 256) as u8).collect();
        let mut grown = doc(b"", 7, 57);
        grown.replace_all(&text).unwrap();
        let fresh = doc(&text, 7, 57);
        assert_eq!(grown.serialize(), fresh.serialize());
        let reopened =
            RpcDocument::open(&key(), &grown.serialize(), CtrDrbg::from_seed(0)).unwrap();
        assert_eq!(reopened.decrypt().unwrap(), text);
    }

    #[test]
    fn replace_all_of_nonempty_document_reverifies() {
        let mut d = doc(b"old contents that will be wholly replaced", 7, 31);
        d.replace_all(b"brand new").unwrap();
        assert_eq!(d.decrypt().unwrap(), b"brand new");
        let reopened =
            RpcDocument::open(&key(), &d.serialize(), CtrDrbg::from_seed(0)).unwrap();
        assert_eq!(reopened.decrypt().unwrap(), b"brand new");
    }

    #[test]
    fn checksum_patch_targets_last_record() {
        let mut d = doc(b"abcdefghij", 7, 11);
        let old_records = d.record_count();
        let patches = d.apply(&EditOp::insert(3, b"Q")).unwrap();
        assert_eq!(patches.len(), 2);
        assert_eq!(patches[1].start_record, old_records - 1);
        assert_eq!(patches[1].removed, 1);
        assert_eq!(patches[1].inserted.len(), 1);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut d = doc(b"abc", 7, 12);
        assert!(d.apply(&EditOp::insert(9, b"x")).is_err());
        assert!(d.apply(&EditOp::delete(0, 9)).is_err());
    }
}
