//! Incremental encryption for private editing on untrusted cloud services.
//!
//! This crate is the primary contribution of the reproduced paper
//! ("Private Editing Using Untrusted Cloud Services", Huang & Evans,
//! 2011): encryption schemes whose ciphertext can be **updated
//! incrementally** as the user edits, so that a client-side mediator can
//! keep only ciphertext on the cloud server while paying sub-linear cost
//! per edit.
//!
//! # Schemes
//!
//! * [`RecbDocument`] — the *randomized ECB* (rECB) mode of
//!   Buonanno–Katz–Yung: confidentiality only. Every plaintext block is
//!   XORed with a fresh nonce and sealed together with `r0 ⊕ rᵢ` in one
//!   AES block, so blocks are independent given the document nonce `r0`
//!   and each edit touches O(1) ciphertext blocks.
//! * [`RpcDocument`] — the *RPC* mode (confidentiality **and**
//!   integrity): blocks are circularly chained through random nonces and
//!   a final checksum block seals the XOR aggregates. The Wang–Kao–Yeh
//!   amendment is applied: the document length is bound into the checksum
//!   block, defeating truncation/forgery attacks.
//! * Baselines in [`baseline`]: [`baseline::CoCloDocument`] re-encrypts
//!   the whole document on every update (the CoClo comparator the paper
//!   measures against), and [`baseline::XorDocument`] is the XOR scheme
//!   §V-A cites as vulnerable to substitution attacks — implemented so the
//!   attack can be demonstrated.
//!
//! # Variable-length blocks
//!
//! Plaintext is grouped into blocks of up to `b` characters
//! (`1 ≤ b ≤ 8`, §V-C). Blocks are managed by the
//! [`IndexedSkipList`](pe_indexlist::IndexedSkipList), giving expected
//! `O(log n)` location of the blocks an edit touches. Because splits and
//! merges leave blocks partially filled, ciphertext size shows the
//! fragmentation the paper reports in Figure 7.
//!
//! # Wire format
//!
//! The server stores a plain text string: a short cleartext preamble
//! (scheme id, block size, KDF salt) followed by fixed-width Base32
//! records, one per ciphertext block (see [`wire`]). Incremental updates
//! are expressed as ordinary [`pe_delta::Delta`] values over that string,
//! so the server never needs to know encryption is in use.
//!
//! # Example
//!
//! ```
//! use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, SchemeParams};
//! use pe_crypto::CtrDrbg;
//!
//! let key = DocumentKey::derive("password", &[7u8; 16], 100);
//! let params = SchemeParams::recb(8);
//! let mut doc = RecbDocument::create(&key, params, b"hello world", CtrDrbg::from_seed(1))?;
//! doc.apply(&EditOp::insert(5, b", dear"))?;
//! assert_eq!(doc.decrypt()?, b"hello, dear world");
//! # Ok::<(), pe_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod batch;
mod error;
pub mod guard;
mod keys;
mod pack;
pub mod presence;
mod recb;
mod rpc;
mod splice;
mod transform;
pub mod wire;

pub use error::CoreError;
pub use guard::MerkleGuard;
pub use keys::{DocumentKey, Mode, SchemeParams};
pub use pack::SealedBlock;
pub use presence::{Presence, PresenceSealer};
pub use recb::RecbDocument;
pub use rpc::RpcDocument;
pub use transform::{patches_to_delta, update_wire_len, DeltaTransformer};
pub use wire::{CipherPatch, Layout};

/// A byte-level edit operation against the plaintext document.
///
/// The mediator translates the client's character-based
/// [`Delta`](pe_delta::Delta) operations into these (UTF-8 byte indexed)
/// operations before handing them to an encrypted document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Insert `text` so that it starts at byte offset `at`.
    Insert {
        /// Byte offset at which the insertion starts (0 ≤ at ≤ len).
        at: usize,
        /// Bytes to insert.
        text: Vec<u8>,
    },
    /// Delete `len` bytes starting at byte offset `at`.
    Delete {
        /// Byte offset of the first deleted byte.
        at: usize,
        /// Number of bytes to delete.
        len: usize,
    },
}

impl EditOp {
    /// Convenience constructor for an insertion.
    pub fn insert(at: usize, text: &[u8]) -> EditOp {
        EditOp::Insert { at, text: text.to_vec() }
    }

    /// Convenience constructor for a deletion.
    pub fn delete(at: usize, len: usize) -> EditOp {
        EditOp::Delete { at, len }
    }
}

/// The common surface of every encrypted-document implementation: the
/// paper's 4-tuple `(K, Enc, Dec, IncE)` with `K` factored into
/// [`DocumentKey`] and `IncE` exposed as [`apply`](Self::apply).
///
/// Implemented by [`RecbDocument`], [`RpcDocument`], and
/// [`baseline::CoCloDocument`]; the mediator works against this trait so
/// the scheme is a runtime choice.
pub trait IncrementalCipherDoc {
    /// Current plaintext length in bytes.
    fn len(&self) -> usize;

    /// True when the document is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decrypts and returns the full plaintext (`Dec`).
    ///
    /// # Errors
    ///
    /// Fails when integrity verification fails (integrity-providing
    /// schemes) or the internal state is malformed.
    fn decrypt(&self) -> Result<Vec<u8>, CoreError>;

    /// Applies one edit, returning the ciphertext patches that transform
    /// the previous serialized ciphertext into the new one (`IncE`).
    ///
    /// Patches are sorted by record index and non-overlapping; see
    /// [`CipherPatch`].
    ///
    /// # Errors
    ///
    /// Fails when the edit is out of bounds.
    fn apply(&mut self, op: &EditOp) -> Result<Vec<CipherPatch>, CoreError>;

    /// Replaces the entire document contents (the protocol's full
    /// `docContents` save, which re-encrypts everything).
    ///
    /// Unlike [`apply`](Self::apply) this returns no patches: a full save
    /// ships the whole serialized ciphertext, so callers reserialize via
    /// [`serialize`](Self::serialize). The provided implementation edits
    /// the document in two splices; [`RecbDocument`] and [`RpcDocument`]
    /// override it with a batch seal path that packs and encrypts all
    /// blocks in one (possibly parallel) pass.
    ///
    /// # Errors
    ///
    /// Fails only if the underlying edits fail (not expected for a full
    /// replacement).
    fn replace_all(&mut self, plaintext: &[u8]) -> Result<(), CoreError> {
        let len = self.len();
        if len > 0 {
            self.apply(&EditOp::delete(0, len))?;
        }
        if !plaintext.is_empty() {
            self.apply(&EditOp::insert(0, plaintext))?;
        }
        Ok(())
    }

    /// Serializes the full ciphertext document (the string the server
    /// stores).
    fn serialize(&self) -> String;

    /// The layout of the serialized form (preamble length, record width),
    /// needed to express patches as character-level deltas.
    fn layout(&self) -> Layout;
}

impl<T: IncrementalCipherDoc + ?Sized> IncrementalCipherDoc for Box<T> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn decrypt(&self) -> Result<Vec<u8>, CoreError> {
        (**self).decrypt()
    }

    fn apply(&mut self, op: &EditOp) -> Result<Vec<CipherPatch>, CoreError> {
        (**self).apply(op)
    }

    fn replace_all(&mut self, plaintext: &[u8]) -> Result<(), CoreError> {
        (**self).replace_all(plaintext)
    }

    fn serialize(&self) -> String {
        (**self).serialize()
    }

    fn layout(&self) -> Layout {
        (**self).layout()
    }
}
