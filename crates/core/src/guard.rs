//! Client-side integrity guard for confidentiality-only documents.
//!
//! §V-A of the paper observes: "integrity can be obtained at marginal
//! cost if it is added onto a confidentiality-only service". This module
//! realizes that remark: [`MerkleGuard`] wraps any
//! [`IncrementalCipherDoc`] (in practice the rECB document) and maintains
//! a client-side [`MerkleTree`] over the serialized ciphertext records.
//! The 32-byte root is the only extra state the client must keep; every
//! incremental update adjusts the tree from the same
//! [`CipherPatch`]es the scheme already produces, and
//! [`MerkleGuard::verify_served`] authenticates a document fetched from
//! the server against the root.
//!
//! Cost model (the trade §V-A describes): replace-updates cost
//! `O(log n)` hashes; insert/delete rebuild the affected tree in `O(n)`
//! hash operations — cheaper in constants than RPC's re-encryption but
//! asymptotically worse for inserts, and requiring client-side state that
//! RPC does not need. The ablation benchmarks quantify this.

use pe_crypto::sha256::Sha256;

use crate::baseline::MerkleTree;
use crate::error::CoreError;
use crate::wire::{split_records, CipherPatch, Layout};
use crate::{EditOp, IncrementalCipherDoc};

/// A confidentiality-only document wrapped with client-side Merkle
/// integrity.
///
/// # Example
///
/// ```
/// use pe_core::guard::MerkleGuard;
/// use pe_core::{DocumentKey, EditOp, IncrementalCipherDoc, RecbDocument, SchemeParams};
/// use pe_crypto::CtrDrbg;
///
/// let key = DocumentKey::derive("pw", &[3u8; 16], 100);
/// let doc = RecbDocument::create(&key, SchemeParams::recb(8), b"text", CtrDrbg::from_seed(1))?;
/// let mut guarded = MerkleGuard::new(doc);
/// guarded.apply(&EditOp::insert(4, b" more"))?;
/// // The root commitment authenticates the server's copy:
/// let served = guarded.serialize();
/// assert!(guarded.verify_served(&served).is_ok());
/// # Ok::<(), pe_core::CoreError>(())
/// ```
pub struct MerkleGuard<D> {
    inner: D,
    tree: MerkleTree,
}

impl<D: std::fmt::Debug> std::fmt::Debug for MerkleGuard<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MerkleGuard")
            .field("inner", &self.inner)
            .field("records", &self.tree.len())
            .finish()
    }
}

impl<D: IncrementalCipherDoc> MerkleGuard<D> {
    /// Wraps a document, committing to its current serialized records.
    pub fn new(inner: D) -> MerkleGuard<D> {
        let wire = inner.serialize();
        let records = split_records(&wire).expect("own serialization is well-formed");
        let tree = MerkleTree::build(records.iter().map(|r| r.as_bytes()));
        MerkleGuard { inner, tree }
    }

    /// The wrapped document.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The 32-byte root commitment — the only state a client must keep
    /// (out of the server's reach) to detect tampering.
    pub fn root(&self) -> [u8; 32] {
        self.tree.root()
    }

    /// A compact fingerprint combining the root with the record count
    /// (handy for logs and cross-device comparison).
    pub fn fingerprint(&self) -> String {
        let mut hasher = Sha256::new();
        hasher.update(&self.tree.root());
        hasher.update(&(self.tree.len() as u64).to_be_bytes());
        pe_crypto::hex::encode(&hasher.finalize()[..8])
    }

    /// Verifies a document serialization fetched from the server against
    /// the root commitment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IntegrityFailure`] when the served records do
    /// not hash to the committed root, [`CoreError::Malformed`] when the
    /// serialization is structurally invalid.
    pub fn verify_served(&self, served: &str) -> Result<(), CoreError> {
        let records = split_records(served)?;
        let tree = MerkleTree::build(records.iter().map(|r| r.as_bytes()));
        if tree.root() != self.tree.root() {
            return Err(CoreError::IntegrityFailure {
                detail: "served document does not match the Merkle root commitment".into(),
            });
        }
        Ok(())
    }

    /// Applies the record-level effect of `patches` to the tree.
    fn track(&mut self, patches: &[CipherPatch]) {
        // Patches index the PRE-update records; apply right-to-left so
        // earlier indices stay valid.
        for patch in patches.iter().rev() {
            for _ in 0..patch.removed {
                self.tree.remove(patch.start_record);
            }
            for (i, record) in patch.inserted.iter().enumerate() {
                self.tree.insert(patch.start_record + i, record.as_bytes());
            }
        }
    }
}

impl<D: IncrementalCipherDoc> IncrementalCipherDoc for MerkleGuard<D> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn decrypt(&self) -> Result<Vec<u8>, CoreError> {
        self.inner.decrypt()
    }

    fn apply(&mut self, op: &EditOp) -> Result<Vec<CipherPatch>, CoreError> {
        let patches = self.inner.apply(op)?;
        self.track(&patches);
        debug_assert_eq!(
            self.tree.root(),
            MerkleGuard::new_root_of(&self.inner),
            "tracked tree must match a rebuild"
        );
        Ok(patches)
    }

    fn serialize(&self) -> String {
        self.inner.serialize()
    }

    fn layout(&self) -> Layout {
        self.inner.layout()
    }
}

impl<D: IncrementalCipherDoc> MerkleGuard<D> {
    /// Root a fresh build over `doc`'s records would have (debug checks).
    fn new_root_of(doc: &D) -> [u8; 32] {
        let wire = doc.serialize();
        let records = split_records(&wire).expect("own serialization is well-formed");
        MerkleTree::build(records.iter().map(|r| r.as_bytes())).root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{DocumentKey, SchemeParams};
    use crate::recb::RecbDocument;
    use pe_crypto::CtrDrbg;

    fn guarded(text: &[u8], seed: u64) -> MerkleGuard<RecbDocument> {
        let key = DocumentKey::derive("guard", &[4u8; 16], 100);
        MerkleGuard::new(
            RecbDocument::create(&key, SchemeParams::recb(8), text, CtrDrbg::from_seed(seed))
                .unwrap(),
        )
    }

    #[test]
    fn tracks_edits_and_verifies_honest_server() {
        let mut doc = guarded(b"guard this content carefully", 1);
        for op in [
            EditOp::insert(5, b" extra"),
            EditOp::delete(0, 3),
            EditOp::insert(0, b"new start: "),
            EditOp::delete(10, 8),
        ] {
            doc.apply(&op).unwrap();
            let served = doc.serialize();
            doc.verify_served(&served).unwrap();
        }
    }

    #[test]
    fn detects_substitution_that_recb_accepts() {
        let doc = guarded(b"AAAAAAAABBBBBBBB", 2);
        let wire = doc.serialize();
        let records: Vec<String> =
            split_records(&wire).unwrap().iter().map(|r| r.to_string()).collect();
        let preamble = crate::wire::PREAMBLE_CHARS;
        let mut swapped = records.clone();
        swapped.swap(1, 2);
        let tampered = format!("{}{}", &wire[..preamble], swapped.concat());
        // Bare rECB would accept this (see recb tests); the guard refuses.
        assert!(matches!(
            doc.verify_served(&tampered),
            Err(CoreError::IntegrityFailure { .. })
        ));
    }

    #[test]
    fn detects_truncation_and_extension() {
        let doc = guarded(b"do not resize me", 3);
        let wire = doc.serialize();
        let truncated = &wire[..wire.len() - crate::wire::RECORD_CHARS];
        assert!(doc.verify_served(truncated).is_err());
        let extended = format!("{wire}{}", &wire[wire.len() - crate::wire::RECORD_CHARS..]);
        assert!(doc.verify_served(&extended).is_err());
    }

    #[test]
    fn root_changes_with_every_update() {
        let mut doc = guarded(b"rooted", 4);
        let mut roots = vec![doc.root()];
        for i in 0..5 {
            doc.apply(&EditOp::insert(0, &[b'a' + i])).unwrap();
            roots.push(doc.root());
        }
        let unique: std::collections::HashSet<&[u8; 32]> = roots.iter().collect();
        assert_eq!(unique.len(), roots.len());
    }

    #[test]
    fn fingerprint_is_stable_and_short() {
        let doc = guarded(b"fingerprint me", 5);
        assert_eq!(doc.fingerprint(), doc.fingerprint());
        assert_eq!(doc.fingerprint().len(), 16);
    }

    #[test]
    fn decrypt_passes_through() {
        let doc = guarded(b"passthrough", 6);
        assert_eq!(doc.decrypt().unwrap(), b"passthrough");
        assert_eq!(doc.len(), 11);
    }
}
