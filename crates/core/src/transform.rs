//! Transforming plaintext deltas into ciphertext deltas.
//!
//! Figure 1 of the paper: the extension "mediates all client-server
//! traffic, encrypting the document contents and updates as necessary for
//! the server to maintain the ciphertext document". The piece that makes
//! incremental saves work is `transform_delta` (Figure 2): a translation
//! from the client's plaintext delta into a *cdelta* — an equivalent delta
//! over the serialized ciphertext string.
//!
//! The [`DeltaTransformer`] owns the encrypted document plus a mirror of
//! the serialized ciphertext (the paper: the extension "maintains a copy
//! of the state of the ciphertext document which is needed to transform
//! the delta"). For each plaintext operation it applies the corresponding
//! [`EditOp`] to the encrypted document, converts the resulting record
//! [`CipherPatch`]es into a character-level delta, and composes the
//! per-operation deltas into the single cdelta sent to the server.

use pe_delta::{Delta, DeltaOp};

use crate::error::CoreError;
use crate::wire::{self, CipherPatch, Layout};
use crate::IncrementalCipherDoc;
use crate::EditOp;

/// Converts record-level patches into a character-level delta over the
/// serialized ciphertext.
pub fn patches_to_delta(patches: &[CipherPatch], layout: Layout) -> Delta {
    let mut builder = Delta::builder();
    let mut cursor_chars = 0usize;
    for patch in patches {
        let start = layout.record_offset(patch.start_record);
        debug_assert!(start >= cursor_chars, "patches must be sorted");
        builder.retain(start - cursor_chars);
        builder.delete(patch.removed * layout.record_chars);
        for record in &patch.inserted {
            builder.insert(record);
        }
        cursor_chars = start + patch.removed * layout.record_chars;
    }
    builder.build()
}

/// The wire size (in characters) of the ciphertext delta a patch set
/// produces — what an incremental save actually transmits.
pub fn update_wire_len(patches: &[CipherPatch], layout: Layout) -> usize {
    patches_to_delta(patches, layout).serialize().len()
}

/// Owns an encrypted document and translates plaintext deltas into
/// ciphertext deltas.
///
/// # Example
///
/// ```
/// use pe_core::{DeltaTransformer, DocumentKey, RecbDocument, SchemeParams};
/// use pe_crypto::CtrDrbg;
/// use pe_delta::Delta;
///
/// let key = DocumentKey::derive("pw", &[3u8; 16], 100);
/// let doc = RecbDocument::create(&key, SchemeParams::recb(8), b"abcdefg", CtrDrbg::from_seed(5))?;
/// let mut transformer = DeltaTransformer::new(doc);
/// let before = transformer.ciphertext().to_string();
///
/// // The paper's example delta: "=2 -3 +uv =2 +w" turns abcdefg into abuvfgw.
/// let cdelta = transformer.transform(&Delta::parse("=2\t-3\t+uv\t=2\t+w")?)?;
/// assert_eq!(cdelta.apply(&before)?, transformer.ciphertext());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct DeltaTransformer<D> {
    doc: D,
    ciphertext: String,
}

impl<D: IncrementalCipherDoc> DeltaTransformer<D> {
    /// Wraps an encrypted document, snapshotting its serialized form.
    pub fn new(doc: D) -> DeltaTransformer<D> {
        let ciphertext = doc.serialize();
        DeltaTransformer { doc, ciphertext }
    }

    /// The encrypted document.
    pub fn doc(&self) -> &D {
        &self.doc
    }

    /// The mirrored serialized ciphertext (always equal to what the server
    /// should currently store).
    pub fn ciphertext(&self) -> &str {
        &self.ciphertext
    }

    /// Consumes the transformer, returning the document.
    pub fn into_doc(self) -> D {
        self.doc
    }

    /// Translates a plaintext delta into the equivalent ciphertext delta,
    /// updating the encrypted document and the ciphertext mirror.
    ///
    /// Counts in `delta` are interpreted as **bytes** of the plaintext
    /// document (see [`Delta::apply_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OutOfBounds`] (wrapped delta errors) when the
    /// delta does not fit the current document; the document is left in
    /// the state reached before the failing operation.
    pub fn transform(&mut self, delta: &Delta) -> Result<Delta, CoreError> {
        let layout = self.doc.layout();
        let mut combined = Delta::new();
        let mut out_pos = 0usize;
        for op in delta.ops() {
            let edit = match op {
                DeltaOp::Retain(n) => {
                    out_pos += n;
                    continue;
                }
                DeltaOp::Insert(s) => {
                    let edit = EditOp::insert(out_pos, s.as_bytes());
                    out_pos += s.len();
                    edit
                }
                DeltaOp::Delete(n) => EditOp::delete(out_pos, *n),
            };
            let patches = self.doc.apply(&edit)?;
            let cdelta = patches_to_delta(&patches, layout);
            self.ciphertext = wire::apply_patches(&self.ciphertext, layout, &patches)?;
            combined = combined.compose(&cdelta);
        }
        debug_assert_eq!(self.ciphertext, self.doc.serialize());
        Ok(combined)
    }

    /// Encrypts a full replacement of the document contents (the
    /// `docContents` path of the protocol: the first save of a session
    /// carries the whole document).
    ///
    /// Delegates to [`IncrementalCipherDoc::replace_all`], so schemes with
    /// a batch seal path (rECB, RPC) re-encrypt the whole document in one
    /// — possibly parallel — pass instead of two block-by-block splices.
    ///
    /// Returns the new serialized ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates edit errors (none are expected for a full replacement).
    pub fn replace_all(&mut self, plaintext: &[u8]) -> Result<&str, CoreError> {
        self.doc.replace_all(plaintext)?;
        self.ciphertext = self.doc.serialize();
        Ok(&self.ciphertext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{DocumentKey, SchemeParams};
    use crate::recb::RecbDocument;
    use crate::rpc::RpcDocument;
    use pe_crypto::CtrDrbg;

    fn key() -> DocumentKey {
        DocumentKey::derive("pw", &[8u8; 16], 100)
    }

    fn recb(plaintext: &[u8], b: usize, seed: u64) -> DeltaTransformer<RecbDocument> {
        DeltaTransformer::new(
            RecbDocument::create(&key(), SchemeParams::recb(b), plaintext, CtrDrbg::from_seed(seed))
                .unwrap(),
        )
    }

    fn rpc(plaintext: &[u8], b: usize, seed: u64) -> DeltaTransformer<RpcDocument> {
        DeltaTransformer::new(
            RpcDocument::create(&key(), SchemeParams::rpc(b), plaintext, CtrDrbg::from_seed(seed))
                .unwrap(),
        )
    }

    #[test]
    fn paper_delta_examples_transform() {
        let mut t = recb(b"abcdefg", 8, 1);
        let before = t.ciphertext().to_string();
        let cdelta = t.transform(&Delta::parse("=2\t-5").unwrap()).unwrap();
        assert_eq!(t.doc().decrypt().unwrap(), b"ab");
        assert_eq!(cdelta.apply(&before).unwrap(), t.ciphertext());
    }

    #[test]
    fn server_view_tracks_through_session_recb() {
        let mut t = recb(b"The quick brown fox", 4, 2);
        let mut server = t.ciphertext().to_string();
        for wire_delta in ["=4\t+slow and ", "-3\t+A", "=10\t-5", "+>>\t=3\t-1"] {
            let delta = Delta::parse(wire_delta).unwrap();
            let cdelta = t.transform(&delta).unwrap();
            server = cdelta.apply(&server).unwrap();
            assert_eq!(server, t.ciphertext(), "after {wire_delta:?}");
        }
        // Plaintext model must match too.
        let mut model = b"The quick brown fox".to_vec();
        for wire_delta in ["=4\t+slow and ", "-3\t+A", "=10\t-5", "+>>\t=3\t-1"] {
            model = Delta::parse(wire_delta).unwrap().apply_bytes(&model).unwrap();
        }
        assert_eq!(t.doc().decrypt().unwrap(), model);
    }

    #[test]
    fn server_view_tracks_through_session_rpc() {
        let mut t = rpc(b"integrity protected editing session", 7, 3);
        let mut server = t.ciphertext().to_string();
        for wire_delta in ["=9\t-10\t+XYZ", "+prefix ", "=20\t+mid", "-6"] {
            let delta = Delta::parse(wire_delta).unwrap();
            let cdelta = t.transform(&delta).unwrap();
            server = cdelta.apply(&server).unwrap();
            assert_eq!(server, t.ciphertext(), "after {wire_delta:?}");
        }
        // Server-held ciphertext must verify and decrypt.
        let reopened = RpcDocument::open(&key(), &server, CtrDrbg::from_seed(9)).unwrap();
        assert_eq!(reopened.decrypt().unwrap(), t.doc().decrypt().unwrap());
    }

    #[test]
    fn multi_op_delta_composes_into_one_cdelta() {
        let mut t = recb(b"abcdefg", 8, 4);
        let before = t.ciphertext().to_string();
        let cdelta = t.transform(&Delta::parse("=2\t-3\t+uv\t=2\t+w").unwrap()).unwrap();
        assert_eq!(t.doc().decrypt().unwrap(), b"abuvfgw");
        assert_eq!(cdelta.apply(&before).unwrap(), t.ciphertext());
    }

    #[test]
    fn out_of_bounds_delta_rejected() {
        let mut t = recb(b"abc", 8, 5);
        let err = t.transform(&Delta::parse("=10\t+x").unwrap()).unwrap_err();
        assert!(matches!(err, CoreError::OutOfBounds { .. }));
    }

    #[test]
    fn replace_all_resets_contents() {
        let mut t = recb(b"old contents", 8, 6);
        t.replace_all(b"entirely new").unwrap();
        assert_eq!(t.doc().decrypt().unwrap(), b"entirely new");
        assert_eq!(t.ciphertext(), t.doc().serialize());
    }

    #[test]
    fn identity_delta_produces_identity_cdelta() {
        let mut t = recb(b"unchanged", 8, 7);
        let cdelta = t.transform(&Delta::parse("=5").unwrap()).unwrap();
        assert!(cdelta.is_identity());
    }

    #[test]
    fn patches_to_delta_offsets() {
        let layout = Layout::standard();
        let record = "X".repeat(layout.record_chars);
        let patches = vec![
            CipherPatch::splice(1, 1, vec![record.clone()]),
            CipherPatch::splice(3, 0, vec![record.clone()]),
        ];
        let delta = patches_to_delta(&patches, layout);
        let expected_retain = layout.record_offset(1);
        let serialized = delta.serialize();
        assert!(serialized.starts_with(&format!("={expected_retain}")), "{serialized}");
    }
}
