//! Model-based test: random sequences of directory operations checked
//! against an in-memory ACL oracle.
//!
//! Invariants enforced after every step:
//!
//! * `data_key` succeeds exactly for the users the oracle says are
//!   authorized, and every authorized user unwraps the *same* key.
//! * A revoked user can never recover the data key through the
//!   directory again (until re-granted).
//! * Stored document bodies are byte-identical across every grant,
//!   revoke, and passphrase rotation — membership changes never touch
//!   content.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use pe_cloud::docs::DocsServer;
use pe_crypto::CtrDrbg;
use pe_store::DocStore;
use pe_tenant::{ServiceRecords, Session, TenantDirectory, TenantError};

const ITERS: u32 = 16;
const USERS: &[&str] = &["alice", "bob", "carol", "dave"];
const DOCS: &[&str] = &["doc-a", "doc-b", "doc-c"];

#[derive(Debug, Clone)]
enum Op {
    Register(usize),
    Create(usize, usize),
    Grant(usize, usize, usize),
    Revoke(usize, usize, usize),
    Rewrap(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let u = 0..USERS.len();
    let d = 0..DOCS.len();
    prop_oneof![
        u.clone().prop_map(Op::Register),
        (u.clone(), d.clone()).prop_map(|(a, b)| Op::Create(a, b)),
        (u.clone(), d.clone(), 0..USERS.len()).prop_map(|(a, b, c)| Op::Grant(a, b, c)),
        (u.clone(), d, 0..USERS.len()).prop_map(|(a, b, c)| Op::Revoke(a, b, c)),
        u.prop_map(Op::Rewrap),
    ]
}

/// The oracle: who is registered, which docs exist and who owns them,
/// and which (doc, user) pairs currently hold a wrapped key.
#[derive(Default)]
struct Oracle {
    passphrases: BTreeMap<String, String>,
    owners: BTreeMap<String, String>,
    acl: BTreeMap<String, BTreeSet<String>>,
}

fn passphrase(user: &str, generation: u32) -> String {
    format!("pw-{user}-{generation}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn directory_matches_acl_oracle(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let server = DocsServer::new();
        let dir = TenantDirectory::new(ServiceRecords::new(&server));
        let mut rng = CtrDrbg::from_seed(0xace5);

        let mut oracle = Oracle::default();
        let mut sessions: BTreeMap<String, Session> = BTreeMap::new();
        let mut generations: BTreeMap<String, u32> = BTreeMap::new();
        let mut bodies: BTreeMap<String, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Register(u) => {
                    let user = USERS[u];
                    let pw = passphrase(user, 0);
                    let result = dir.register(user, &pw, ITERS, &mut rng);
                    if oracle.passphrases.contains_key(user) {
                        prop_assert!(matches!(result, Err(TenantError::UserExists(_))));
                    } else {
                        let session = result.expect("fresh register succeeds");
                        sessions.insert(user.to_string(), session);
                        generations.insert(user.to_string(), 0);
                        oracle.passphrases.insert(user.to_string(), pw);
                    }
                }
                Op::Create(u, d) => {
                    let (user, doc) = (USERS[u], DOCS[d]);
                    let Some(session) = sessions.get(user) else { continue };
                    let result = dir.create_document(session, doc, &mut rng);
                    if oracle.owners.contains_key(doc) {
                        prop_assert!(matches!(result, Err(TenantError::DocumentExists(_))));
                    } else {
                        result.expect("fresh create succeeds");
                        oracle.owners.insert(doc.to_string(), user.to_string());
                        oracle.acl.entry(doc.to_string()).or_default().insert(user.to_string());
                        // A stand-in ciphertext body whose bytes must
                        // survive every later membership change.
                        let body = format!("sealed-body-of-{doc}").into_bytes();
                        server.store().put_full(doc, &body).expect("store body");
                        bodies.insert(doc.to_string(), body);
                    }
                }
                Op::Grant(o, d, g) => {
                    let (owner, doc, grantee) = (USERS[o], DOCS[d], USERS[g]);
                    let (Some(owner_s), Some(grantee_s)) =
                        (sessions.get(owner), sessions.get(grantee)) else { continue };
                    let result = dir.grant_direct(owner_s, doc, grantee_s, &mut rng);
                    let is_owner = oracle.owners.get(doc).is_some_and(|w| w == owner);
                    if is_owner {
                        result.expect("owner grant succeeds");
                        oracle.acl.entry(doc.to_string()).or_default().insert(grantee.to_string());
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Revoke(o, d, g) => {
                    let (owner, doc, revokee) = (USERS[o], DOCS[d], USERS[g]);
                    let Some(owner_s) = sessions.get(owner) else { continue };
                    let result = dir.revoke(owner_s, doc, revokee);
                    let is_owner = oracle.owners.get(doc).is_some_and(|w| w == owner);
                    if is_owner && owner != revokee {
                        let had = oracle
                            .acl
                            .get_mut(doc)
                            .expect("owned doc has an acl")
                            .remove(revokee);
                        prop_assert_eq!(result.expect("owner revoke succeeds"), had);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
                Op::Rewrap(u) => {
                    let user = USERS[u];
                    let Some(generation) = generations.get(user).copied() else { continue };
                    let old = passphrase(user, generation);
                    let new = passphrase(user, generation + 1);
                    dir.rewrap(user, &old, &new, ITERS, &mut rng).expect("rewrap succeeds");
                    generations.insert(user.to_string(), generation + 1);
                    oracle.passphrases.insert(user.to_string(), new.clone());
                    let session = dir.login(user, &new).expect("login after rewrap");
                    sessions.insert(user.to_string(), session);
                    prop_assert!(matches!(
                        dir.login(user, &old),
                        Err(TenantError::BadPassphrase)
                    ));
                }
            }

            // Invariant sweep after every operation.
            for doc in DOCS {
                if let Some(body) = bodies.get(*doc) {
                    prop_assert_eq!(
                        server.store().content(doc).as_deref(),
                        Some(&body[..]),
                        "stored bytes changed for {}", doc
                    );
                }
                let authorized = oracle.acl.get(*doc);
                let mut key_bytes: Option<[u8; 32]> = None;
                for user in USERS {
                    let Some(session) = sessions.get(*user) else { continue };
                    let allowed = authorized.is_some_and(|s| s.contains(*user));
                    match dir.data_key(session, doc) {
                        Ok(key) => {
                            prop_assert!(allowed, "{} unwrapped {} while revoked", user, doc);
                            match key_bytes {
                                None => key_bytes = Some(*key.bytes()),
                                Some(expected) => prop_assert_eq!(
                                    *key.bytes(), expected,
                                    "divergent data keys for {}", doc
                                ),
                            }
                        }
                        Err(e) => {
                            prop_assert!(!allowed, "{} denied on {}: {}", user, doc, e);
                        }
                    }
                }
            }
        }
    }
}
