//! Directory record layouts and their text codecs.
//!
//! Every record is a single form-encoded line (`k=v&k=v`, the same codec
//! the wire protocol uses), stored under a typed key in the record store:
//!
//! | key              | record                                   |
//! |------------------|------------------------------------------|
//! | `u/<user>`       | [`UserRecord`] — salt, KDF iterations, verifier |
//! | `p/<user>`       | [`UserRecord`] — *pending* credentials during a passphrase rotation |
//! | `d/<doc>`        | [`DocRecord`] — owner                    |
//! | `g/<doc>/<user>` | [`GrantRecord`] — 40-byte wrapped data key |
//! | `i/<doc>/<id>`   | [`InviteRecord`] — pending wrapped key under a one-time invite KEK |
//!
//! User and document names are restricted to `[A-Za-z0-9._-]{1,64}` so
//! the `/`-separated keyspace parses unambiguously. Nothing in a record
//! lets the server derive a usable key: salts and iteration counts are
//! public by design, wrapped keys are AES-KW ciphertext, and the login
//! verifier — while useless for unwrapping — is kept server-side and
//! never served back over the wire (the server *redacts* it from `u/`
//! and `p/` reads, so a network peer cannot mount an offline dictionary
//! attack against it; see the `pe_cloud::tenant` module docs). A
//! [`UserRecord`] read back through such a store therefore decodes with
//! `verifier: None`.

use pe_crypto::{form, hex};

use crate::error::TenantError;
use crate::keys::WRAPPED_KEY_BYTES;

/// Record-key prefix for user records.
pub const USER_PREFIX: &str = "u/";
/// Record-key prefix for pending user records (in-flight passphrase
/// rotations — see [`TenantDirectory::rewrap`](crate::TenantDirectory::rewrap)).
pub const PENDING_PREFIX: &str = "p/";
/// Record-key prefix for document records.
pub const DOC_PREFIX: &str = "d/";
/// Record-key prefix for grant records.
pub const GRANT_PREFIX: &str = "g/";
/// Record-key prefix for pending invite records.
pub const INVITE_PREFIX: &str = "i/";

/// Validates a user or document name for the record keyspace.
///
/// # Errors
///
/// [`TenantError::BadName`] outside `[A-Za-z0-9._-]{1,64}`.
pub fn validate_name(name: &str) -> Result<(), TenantError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(TenantError::BadName(name.to_string()))
    }
}

fn field<'a>(pairs: &'a [(String, String)], key: &str, what: &str) -> Result<&'a str, TenantError> {
    form::first_value(pairs, key)
        .ok_or_else(|| TenantError::Corrupt(format!("{what}: missing {key}")))
}

fn fixed_bytes<const N: usize>(text: &str, what: &str) -> Result<[u8; N], TenantError> {
    let bytes = hex::decode(text).map_err(|e| TenantError::Corrupt(format!("{what}: {e}")))?;
    bytes
        .try_into()
        .map_err(|_| TenantError::Corrupt(format!("{what}: wrong length")))
}

fn parse(line: &str, what: &str) -> Result<Vec<(String, String)>, TenantError> {
    form::parse_pairs(line).map_err(|e| TenantError::Corrupt(format!("{what}: {e}")))
}

/// A registered user: public KDF parameters plus the login verifier.
///
/// The verifier is `None` when the record was read back through a store
/// that redacts it (the untrusted server never serves verifiers); login
/// then checks the passphrase through
/// [`RecordStore::verify`](crate::RecordStore::verify) instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserRecord {
    /// User name (also the record key suffix).
    pub user: String,
    /// Per-user random PBKDF2 salt.
    pub salt: [u8; 16],
    /// PBKDF2 iteration count this user registered with.
    pub iterations: u32,
    /// HKDF-separated login verifier (see `keys` module docs); `None`
    /// when the store redacted it.
    pub verifier: Option<[u8; 16]>,
}

impl UserRecord {
    /// The record-store key for this user.
    pub fn key(user: &str) -> String {
        format!("{USER_PREFIX}{user}")
    }

    /// The record-store key for this user's pending (mid-rotation)
    /// credentials.
    pub fn pending_key(user: &str) -> String {
        format!("{PENDING_PREFIX}{user}")
    }

    /// Serializes to the stored line format.
    pub fn encode(&self) -> String {
        let mut pairs = vec![
            ("user", self.user.clone()),
            ("salt", hex::encode(&self.salt)),
            ("iters", self.iterations.to_string()),
        ];
        if let Some(verifier) = &self.verifier {
            pairs.push(("verifier", hex::encode(verifier)));
        }
        form::encode_pairs(&pairs)
    }

    /// Parses a stored line. A missing verifier is legal (redacted by
    /// the store); everything else must be well-formed.
    ///
    /// # Errors
    ///
    /// [`TenantError::Corrupt`] on any malformed field.
    pub fn decode(line: &str) -> Result<UserRecord, TenantError> {
        let pairs = parse(line, "user record")?;
        let iterations = field(&pairs, "iters", "user record")?
            .parse::<u32>()
            .map_err(|_| TenantError::Corrupt("user record: bad iters".into()))?;
        if iterations == 0 {
            return Err(TenantError::Corrupt("user record: zero iters".into()));
        }
        let verifier = match form::first_value(&pairs, "verifier") {
            Some(text) => Some(fixed_bytes(text, "user verifier")?),
            None => None,
        };
        Ok(UserRecord {
            user: field(&pairs, "user", "user record")?.to_string(),
            salt: fixed_bytes(field(&pairs, "salt", "user record")?, "user salt")?,
            iterations,
            verifier,
        })
    }
}

/// A registered document: who owns it. The wrapped keys live in the
/// per-user [`GrantRecord`]s; the body lives in the ordinary doc store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocRecord {
    /// Document id.
    pub doc: String,
    /// Owner user name (the only user who may grant/revoke).
    pub owner: String,
}

impl DocRecord {
    /// The record-store key for this document.
    pub fn key(doc: &str) -> String {
        format!("{DOC_PREFIX}{doc}")
    }

    /// Serializes to the stored line format.
    pub fn encode(&self) -> String {
        form::encode_pairs(&[("doc", self.doc.as_str()), ("owner", self.owner.as_str())])
    }

    /// Parses a stored line.
    ///
    /// # Errors
    ///
    /// [`TenantError::Corrupt`] on any malformed field.
    pub fn decode(line: &str) -> Result<DocRecord, TenantError> {
        let pairs = parse(line, "doc record")?;
        Ok(DocRecord {
            doc: field(&pairs, "doc", "doc record")?.to_string(),
            owner: field(&pairs, "owner", "doc record")?.to_string(),
        })
    }
}

/// One user's wrapped copy of one document's data key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrantRecord {
    /// Document id.
    pub doc: String,
    /// Grantee user name.
    pub user: String,
    /// AES-KW(KEK_user, data key) — 40 bytes.
    pub wrapped: [u8; WRAPPED_KEY_BYTES],
    /// Who issued the grant (the owner; `user` itself for the owner's
    /// own grant).
    pub granted_by: String,
}

impl GrantRecord {
    /// The record-store key for a grant.
    pub fn key(doc: &str, user: &str) -> String {
        format!("{GRANT_PREFIX}{doc}/{user}")
    }

    /// The record-store key prefix for all of a document's grants.
    pub fn doc_prefix(doc: &str) -> String {
        format!("{GRANT_PREFIX}{doc}/")
    }

    /// Serializes to the stored line format.
    pub fn encode(&self) -> String {
        form::encode_pairs(&[
            ("doc", self.doc.as_str()),
            ("user", self.user.as_str()),
            ("wrapped", &hex::encode(&self.wrapped)),
            ("by", self.granted_by.as_str()),
        ])
    }

    /// Parses a stored line.
    ///
    /// # Errors
    ///
    /// [`TenantError::Corrupt`] on any malformed field.
    pub fn decode(line: &str) -> Result<GrantRecord, TenantError> {
        let pairs = parse(line, "grant record")?;
        Ok(GrantRecord {
            doc: field(&pairs, "doc", "grant record")?.to_string(),
            user: field(&pairs, "user", "grant record")?.to_string(),
            wrapped: fixed_bytes(field(&pairs, "wrapped", "grant record")?, "wrapped key")?,
            granted_by: field(&pairs, "by", "grant record")?.to_string(),
        })
    }
}

/// A pending grant: the data key wrapped under a one-time random invite
/// KEK whose bytes travel out of band inside the invite code (the paper's
/// password-sharing assumption, §IV-C, translated to the wrapped-key
/// model). Redeeming the invite rewraps under the grantee's own KEK and
/// deletes this record.
///
/// **The invite code is a bearer secret for the document key**: this
/// record is fetchable by anyone, so whoever learns the code can unwrap
/// `wrapped` directly. The `grantee` field routes the grant and lets the
/// directory refuse redemption by honest non-addressees; it is not a
/// cryptographic binding. Treat the code like the shared password of the
/// paper's §IV-C — the channel it travels over is the security boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InviteRecord {
    /// Document id.
    pub doc: String,
    /// Public invite id (the lookup half of the invite code).
    pub invite_id: String,
    /// The user name the invite is addressed to.
    pub grantee: String,
    /// AES-KW(invite KEK, data key) — 40 bytes.
    pub wrapped: [u8; WRAPPED_KEY_BYTES],
    /// Who issued the invite.
    pub issued_by: String,
}

impl InviteRecord {
    /// The record-store key for an invite.
    pub fn key(doc: &str, invite_id: &str) -> String {
        format!("{INVITE_PREFIX}{doc}/{invite_id}")
    }

    /// The record-store key prefix for all of a document's invites.
    pub fn doc_prefix(doc: &str) -> String {
        format!("{INVITE_PREFIX}{doc}/")
    }

    /// Serializes to the stored line format.
    pub fn encode(&self) -> String {
        form::encode_pairs(&[
            ("doc", self.doc.as_str()),
            ("invite", self.invite_id.as_str()),
            ("grantee", self.grantee.as_str()),
            ("wrapped", &hex::encode(&self.wrapped)),
            ("by", self.issued_by.as_str()),
        ])
    }

    /// Parses a stored line.
    ///
    /// # Errors
    ///
    /// [`TenantError::Corrupt`] on any malformed field.
    pub fn decode(line: &str) -> Result<InviteRecord, TenantError> {
        let pairs = parse(line, "invite record")?;
        Ok(InviteRecord {
            doc: field(&pairs, "doc", "invite record")?.to_string(),
            invite_id: field(&pairs, "invite", "invite record")?.to_string(),
            grantee: field(&pairs, "grantee", "invite record")?.to_string(),
            wrapped: fixed_bytes(field(&pairs, "wrapped", "invite record")?, "wrapped key")?,
            issued_by: field(&pairs, "by", "invite record")?.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(validate_name("alice").is_ok());
        assert!(validate_name("doc42").is_ok());
        assert!(validate_name("a.b_c-d").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name("a b").is_err());
        assert!(validate_name(&"x".repeat(65)).is_err());
    }

    #[test]
    fn user_record_roundtrip() {
        let record = UserRecord {
            user: "alice".into(),
            salt: [7u8; 16],
            iterations: 12_345,
            verifier: Some([9u8; 16]),
        };
        assert_eq!(UserRecord::decode(&record.encode()).unwrap(), record);
        assert_eq!(UserRecord::key("alice"), "u/alice");
        assert_eq!(UserRecord::pending_key("alice"), "p/alice");
        // A redacted record (no verifier) still decodes — login falls
        // back to store-side verification.
        let redacted = UserRecord { verifier: None, ..record };
        assert!(!redacted.encode().contains("verifier"));
        assert_eq!(UserRecord::decode(&redacted.encode()).unwrap(), redacted);
    }

    #[test]
    fn grant_record_roundtrip() {
        let record = GrantRecord {
            doc: "doc3".into(),
            user: "bob".into(),
            wrapped: [0xAB; WRAPPED_KEY_BYTES],
            granted_by: "alice".into(),
        };
        assert_eq!(GrantRecord::decode(&record.encode()).unwrap(), record);
        assert_eq!(GrantRecord::key("doc3", "bob"), "g/doc3/bob");
        assert_eq!(GrantRecord::doc_prefix("doc3"), "g/doc3/");
    }

    #[test]
    fn doc_and_invite_roundtrip() {
        let doc = DocRecord { doc: "doc1".into(), owner: "alice".into() };
        assert_eq!(DocRecord::decode(&doc.encode()).unwrap(), doc);
        let invite = InviteRecord {
            doc: "doc1".into(),
            invite_id: "ABCDEF".into(),
            grantee: "bob".into(),
            wrapped: [1u8; WRAPPED_KEY_BYTES],
            issued_by: "alice".into(),
        };
        assert_eq!(InviteRecord::decode(&invite.encode()).unwrap(), invite);
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(matches!(UserRecord::decode("user=a"), Err(TenantError::Corrupt(_))));
        assert!(matches!(
            UserRecord::decode("user=a&salt=zz&iters=10&verifier=00"),
            Err(TenantError::Corrupt(_))
        ));
        assert!(matches!(
            UserRecord::decode(&format!(
                "user=a&salt={}&iters=0&verifier={}",
                hex::encode(&[0u8; 16]),
                hex::encode(&[0u8; 16])
            )),
            Err(TenantError::Corrupt(_))
        ));
        assert!(matches!(
            GrantRecord::decode("doc=d&user=u&wrapped=00&by=o"),
            Err(TenantError::Corrupt(_))
        ));
    }
}
