//! Per-user master keys and per-document data keys.
//!
//! Key hierarchy (all client-side; the server never sees a usable key):
//!
//! ```text
//! passphrase ──PBKDF2(salt, iters)──▶ master secret (32 B, transient)
//!     master ──HKDF "pe.tenant.kek"────▶ KEK       (16 B, stays client-side)
//!     master ──HKDF "pe.tenant.verify"─▶ verifier  (16 B, stored server-side)
//!
//! per-document: random data key (32 B)
//!     stored per authorized user as AES-KW(KEK_user, data key)  (40 B)
//!     data key ──HKDF "pe.v1.aes"/"pe.v1.mac"──▶ DocumentKey (via pe-core)
//! ```
//!
//! The verifier lets a client reject a mistyped passphrase with a crisp
//! error before touching any wrapped keys; it is HKDF-separated from the
//! KEK, so the server learning it reveals nothing about the KEK (and it
//! cannot be used to unwrap anything — AES-KW unwrap authenticates the
//! KEK independently).

use pe_core::DocumentKey;
use pe_crypto::aes::Aes128;
use pe_crypto::drbg::NonceSource;
use pe_crypto::pbkdf2::pbkdf2_sha256;
use pe_crypto::{kw, zeroize, CryptoError};

use crate::error::TenantError;

/// HKDF label separating the key-encryption key from the master secret.
const KEK_LABEL: &[u8] = b"pe.tenant.kek";
/// HKDF label separating the login verifier from the master secret.
const VERIFIER_LABEL: &[u8] = b"pe.tenant.verify";

/// Size of a wrapped [`DataKey`]: 32-byte key + 8-byte AES-KW header.
pub const WRAPPED_KEY_BYTES: usize = 40;

/// A user's login-derived key material: the KEK that wraps document data
/// keys, and the public verifier stored in the user's directory record.
pub struct MasterKey {
    kek: [u8; 16],
    verifier: [u8; 16],
}

impl MasterKey {
    /// Stretches `passphrase` over `salt` and separates the KEK and
    /// verifier subkeys.
    pub fn derive(passphrase: &str, salt: &[u8; 16], iterations: u32) -> MasterKey {
        let timer = std::time::Instant::now();
        let mut master = [0u8; 32];
        pbkdf2_sha256(passphrase.as_bytes(), salt, iterations, &mut master);
        let mut kek = [0u8; 16];
        pe_crypto::hkdf::expand(&master, KEK_LABEL, &mut kek);
        let mut verifier = [0u8; 16];
        pe_crypto::hkdf::expand(&master, VERIFIER_LABEL, &mut verifier);
        zeroize::wipe(&mut master);
        pe_observe::static_histogram!("tenant.kdf_ns")
            .record(timer.elapsed().as_nanos() as u64);
        MasterKey { kek, verifier }
    }

    /// Wraps raw KEK bytes directly — used for one-time invite KEKs,
    /// which are random bytes carried inside the invite code rather than
    /// passphrase-derived. The verifier half is unused (zero).
    pub fn from_kek(kek: [u8; 16]) -> MasterKey {
        MasterKey { kek, verifier: [0u8; 16] }
    }

    /// The public login verifier (stored in the user record).
    pub fn verifier(&self) -> &[u8; 16] {
        &self.verifier
    }

    /// Constant-shape verifier comparison.
    pub fn verifier_matches(&self, stored: &[u8; 16]) -> bool {
        // XOR-accumulate instead of early-exit comparison; with a 16-byte
        // random-looking verifier this is belt and suspenders, not a
        // load-bearing side-channel defense.
        let diff = self
            .verifier
            .iter()
            .zip(stored.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b));
        diff == 0
    }

    fn cipher(&self) -> Aes128 {
        Aes128::new(&self.kek)
    }
}

impl Drop for MasterKey {
    fn drop(&mut self) {
        zeroize::wipe(&mut self.kek);
    }
}

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the KEK.
        f.debug_struct("MasterKey").finish_non_exhaustive()
    }
}

/// A document's random 256-bit data key.
///
/// Generated once at document creation; every authorized editor holds a
/// copy wrapped under their own KEK. The document body is encrypted under
/// (subkeys of) this key, so granting and revoking access are pure
/// wrapped-record operations — the body bytes are never touched.
pub struct DataKey([u8; 32]);

impl DataKey {
    /// Draws a fresh random data key.
    pub fn generate<R: NonceSource>(rng: &mut R) -> DataKey {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        DataKey(key)
    }

    /// Test/bench constructor from explicit bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> DataKey {
        DataKey(bytes)
    }

    /// Raw key bytes (needed to compare keys in tests).
    pub fn bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Derives the `pe-core` [`DocumentKey`] (AES + MAC subkeys) this
    /// data key encrypts the document with. `salt` is whatever the
    /// ciphertext preamble records; for tenant documents it does not feed
    /// the key derivation (the entropy is the data key itself).
    pub fn document_key(&self, salt: [u8; 16]) -> DocumentKey {
        DocumentKey::from_master(&self.0, salt)
    }

    /// Wraps this key under a user's KEK (RFC 3394): the 40-byte record
    /// the directory stores per grant.
    pub fn wrap(&self, master: &MasterKey) -> [u8; WRAPPED_KEY_BYTES] {
        let timer = std::time::Instant::now();
        let wrapped = kw::wrap(&master.cipher(), &self.0).expect("32 bytes is wrappable");
        pe_observe::static_histogram!("tenant.wrap_ns")
            .record(timer.elapsed().as_nanos() as u64);
        wrapped.try_into().expect("wrap of 32 bytes is 40 bytes")
    }

    /// Unwraps a stored 40-byte record under a user's KEK.
    ///
    /// # Errors
    ///
    /// [`TenantError::NotAuthorized`]-adjacent failures surface as
    /// [`TenantError::Corrupt`] via the AES-KW integrity check: a wrong
    /// KEK and a tampered record are indistinguishable by design.
    pub fn unwrap(master: &MasterKey, wrapped: &[u8]) -> Result<DataKey, TenantError> {
        let timer = std::time::Instant::now();
        let result = kw::unwrap(&master.cipher(), wrapped);
        pe_observe::static_histogram!("tenant.unwrap_ns")
            .record(timer.elapsed().as_nanos() as u64);
        match result {
            Ok(mut bytes) => {
                let key =
                    DataKey(bytes.as_slice().try_into().map_err(|_| {
                        TenantError::Corrupt(format!("data key of {} bytes", bytes.len()))
                    })?);
                zeroize::wipe(&mut bytes);
                Ok(key)
            }
            Err(CryptoError::IntegrityCheckFailed) => {
                pe_observe::static_counter!("tenant.unwrap_failures").inc();
                Err(TenantError::Corrupt("wrapped key failed its integrity check".into()))
            }
            Err(e) => Err(e.into()),
        }
    }
}

impl Drop for DataKey {
    fn drop(&mut self) {
        zeroize::wipe(&mut self.0);
    }
}

impl std::fmt::Debug for DataKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the key.
        f.debug_struct("DataKey").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_crypto::CtrDrbg;

    #[test]
    fn derive_is_deterministic_and_separated() {
        let a = MasterKey::derive("pw", &[1u8; 16], 50);
        let b = MasterKey::derive("pw", &[1u8; 16], 50);
        assert_eq!(a.kek, b.kek);
        assert_eq!(a.verifier(), b.verifier());
        assert_ne!(&a.kek[..], &a.verifier()[..], "HKDF labels must separate subkeys");
        let c = MasterKey::derive("pw", &[2u8; 16], 50);
        assert_ne!(a.kek, c.kek);
    }

    #[test]
    fn verifier_matches_only_itself() {
        let a = MasterKey::derive("pw", &[1u8; 16], 50);
        let b = MasterKey::derive("other", &[1u8; 16], 50);
        assert!(a.verifier_matches(a.verifier()));
        assert!(!a.verifier_matches(b.verifier()));
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let master = MasterKey::derive("pw", &[1u8; 16], 50);
        let mut rng = CtrDrbg::from_seed(5);
        let key = DataKey::generate(&mut rng);
        let wrapped = key.wrap(&master);
        let unwrapped = DataKey::unwrap(&master, &wrapped).unwrap();
        assert_eq!(key.bytes(), unwrapped.bytes());
        let wrong = MasterKey::derive("not-pw", &[1u8; 16], 50);
        assert!(DataKey::unwrap(&wrong, &wrapped).is_err());
    }

    #[test]
    fn document_key_matches_core_pipeline() {
        let key = DataKey::from_bytes([9u8; 32]);
        let salt = [4u8; 16];
        let doc_key = key.document_key(salt);
        let expected = DocumentKey::from_master(key.bytes(), salt);
        assert_eq!(doc_key.mac_key(), expected.mac_key());
        assert_eq!(doc_key.salt(), &salt);
    }

    #[test]
    fn debug_hides_key_material() {
        let master = MasterKey::derive("super-secret", &[1u8; 16], 50);
        let data = DataKey::from_bytes([0xAB; 32]);
        assert!(!format!("{master:?} {data:?}").contains("171")); // 0xAB
    }
}
