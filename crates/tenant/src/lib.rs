//! Multi-tenant key management for the private-editing system.
//!
//! The paper's prototype assumes one per-document password shared out of
//! band (§IV-C). This crate builds the "millions of users" data model on
//! top of that idea — the wrapped access-key design of PrivyDB and
//! PrivateGrid translated to the mediator:
//!
//! * every **user** has a master key derived from a login passphrase
//!   (PBKDF2, per-user random salt, configurable iterations), HKDF-split
//!   into a key-encryption key (client-side only) and a login verifier
//!   (stored server-side);
//! * every **document** gets a random 256-bit data key at create time;
//!   the body is encrypted under subkeys of it (via
//!   [`pe_core::DocumentKey::from_master`]);
//! * each authorized editor holds the data key **wrapped** (RFC 3394 AES
//!   Key Wrap, [`pe_crypto::kw`]) under their own KEK — a 40-byte record
//!   in the [`TenantDirectory`];
//! * **grant** adds a wrapped record (via a one-time invite code),
//!   **revoke** deletes one; both are O(1) in the document size and
//!   never re-encrypt the body — preserving the O(edit) property the
//!   paper proves for the ciphertext itself.
//!
//! The directory persists through the same [`DocStore`](pe_store::DocStore)
//! path as document bodies (reserved `~tenant/` record ids behind the
//! `/tenant/*` endpoints of [`pe_cloud::docs::DocsServer`]), so it
//! shards, group-commits, and survives `kill -9` like everything else.
//!
//! # Example
//!
//! ```
//! use pe_cloud::docs::DocsServer;
//! use pe_crypto::CtrDrbg;
//! use pe_tenant::{ServiceRecords, TenantDirectory};
//!
//! let server = DocsServer::new();
//! let dir = TenantDirectory::new(ServiceRecords::new(&server));
//! let mut rng = CtrDrbg::from_seed(7);
//! let alice = dir.register("alice", "correct horse", 1_000, &mut rng)?;
//! let bob = dir.register("bob", "battery staple", 1_000, &mut rng)?;
//! let key = dir.create_document(&alice, "doc1", &mut rng)?;
//! let code = dir.grant(&alice, "doc1", "bob", &mut rng)?; // travels out of band
//! dir.accept(&bob, "doc1", &code)?;
//! assert_eq!(dir.data_key(&bob, "doc1")?.bytes(), key.bytes());
//! dir.revoke(&alice, "doc1", "bob")?;
//! assert!(dir.data_key(&bob, "doc1").is_err());
//! # Ok::<(), pe_tenant::TenantError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod error;
pub mod keys;
pub mod records;
pub mod store;

pub use directory::{DirectoryStats, Session, TenantDirectory};
pub use error::TenantError;
pub use keys::{DataKey, MasterKey, WRAPPED_KEY_BYTES};
pub use records::{DocRecord, GrantRecord, InviteRecord, UserRecord};
pub use store::{Auth, MemRecords, RecordStore, ServiceRecords};
