//! The tenant directory: users, documents, grants, invites.
//!
//! All crypto happens on the client side of whatever [`RecordStore`] the
//! directory runs over — against a remote server the directory only ever
//! ships salts, verifiers, and AES-KW-wrapped keys. The server can deny
//! service, but it can neither read a document key nor forge a grant
//! that unwraps (AES-KW authenticates the KEK). Mutating operations
//! additionally carry an [`Auth`] proof (the user's login verifier), so
//! a server that enforces it — [`pe_cloud`]'s `/tenant/record` endpoint
//! does — refuses directory writes from clients that never derived the
//! user's passphrase; the ownership checks in this module are then
//! enforced on both sides of the wire, not just in honest clients.
//!
//! ## Sharing model
//!
//! * The document **owner** (its creator) is the only user who may grant
//!   or revoke access.
//! * A grant is a *pending invite*: the data key wrapped under a fresh
//!   one-time KEK whose bytes live in the returned invite code, which
//!   travels out of band (the paper's §IV-C password-sharing assumption).
//!   The grantee redeems the code with [`TenantDirectory::accept`],
//!   which rewraps the key under their own KEK and burns the invite.
//!   **The invite code is a bearer secret**: the invite record is
//!   readable, so anyone who learns the code can unwrap the data key
//!   without calling `accept` — the grantee addressing only routes the
//!   grant and stops honest mix-ups. Protect the code exactly like the
//!   shared password it replaces.
//! * Revocation deletes the grantee's wrapped record (and any pending
//!   invites for them) — an O(1) directory operation that never touches
//!   the document body. *Lazy revocation caveat:* a revoked user may
//!   have cached the data key while authorized; cryptographic re-lockout
//!   requires rotating the data key and re-encrypting the body, which
//!   this layer deliberately never does.
//! * [`TenantDirectory::rewrap`] rotates a user's passphrase: new salt,
//!   new KEK, and every grant they hold is unwrapped and rewrapped —
//!   again without touching any document body. Rotation is crash-safe:
//!   the new salt and verifier are parked in a pending record (`p/<user>`)
//!   **before** the first grant is rewrapped, so no grant is ever wrapped
//!   under a KEK whose salt isn't persisted. An interrupted rotation is
//!   finished by calling `rewrap` again with the same passphrase pair;
//!   until then the old passphrase keeps logging in and nothing is lost.

use pe_crypto::drbg::NonceSource;
use pe_crypto::{base32, hex, zeroize};

use crate::error::TenantError;
use crate::keys::{DataKey, MasterKey};
use crate::records::{
    validate_name, DocRecord, GrantRecord, InviteRecord, UserRecord, DOC_PREFIX, GRANT_PREFIX,
    INVITE_PREFIX, USER_PREFIX,
};
use crate::store::{Auth, RecordStore};

/// Bytes of invite-id material in an invite code (base32: 8 chars).
const INVITE_ID_BYTES: usize = 5;
/// Total invite-code payload: invite id + one-time KEK.
const INVITE_CODE_BYTES: usize = INVITE_ID_BYTES + 16;

/// A logged-in user: the name plus the KEK derived from their
/// passphrase. Key material is wiped on drop.
pub struct Session {
    user: String,
    master: MasterKey,
}

impl Session {
    /// The logged-in user name.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The mutation proof this session presents to an enforcing record
    /// store: the user name plus their hex-encoded login verifier.
    pub fn auth(&self) -> Auth {
        Auth { user: self.user.clone(), proof: hex::encode(self.master.verifier()) }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("user", &self.user).finish_non_exhaustive()
    }
}

/// Staged credentials of an in-flight passphrase rotation: the derived
/// master key plus the user record (salt, iterations, verifier) that is
/// parked in `p/<user>` and promoted at the commit point.
struct RotationMaster {
    master: MasterKey,
    record: UserRecord,
}

/// Directory record counts (tooling, benches, `pedit user list`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Registered users.
    pub users: usize,
    /// Registered documents.
    pub documents: usize,
    /// Stored grants (wrapped keys).
    pub grants: usize,
    /// Pending invites.
    pub invites: usize,
}

/// The multi-tenant key directory over any [`RecordStore`].
#[derive(Debug)]
pub struct TenantDirectory<R> {
    records: R,
}

impl<R: RecordStore> TenantDirectory<R> {
    /// Builds a directory over a record store.
    pub fn new(records: R) -> TenantDirectory<R> {
        TenantDirectory { records }
    }

    /// Registers a new user with a fresh random salt.
    ///
    /// # Errors
    ///
    /// [`TenantError::BadName`], [`TenantError::UserExists`], or a store
    /// failure.
    pub fn register<N: NonceSource>(
        &self,
        user: &str,
        passphrase: &str,
        iterations: u32,
        rng: &mut N,
    ) -> Result<Session, TenantError> {
        validate_name(user)?;
        if iterations == 0 {
            return Err(TenantError::Corrupt("kdf iterations must be positive".into()));
        }
        let mut salt = [0u8; 16];
        rng.fill_bytes(&mut salt);
        let master = MasterKey::derive(passphrase, &salt, iterations);
        let record = UserRecord {
            user: user.to_string(),
            salt,
            iterations,
            verifier: Some(*master.verifier()),
        };
        if !self.records.put_if_absent(&UserRecord::key(user), &record.encode(), None)? {
            return Err(TenantError::UserExists(user.to_string()));
        }
        pe_observe::static_counter!("tenant.registers").inc();
        Ok(Session { user: user.to_string(), master })
    }

    /// Logs a user in, deriving their KEK and checking the verifier —
    /// locally when the store serves it, through
    /// [`RecordStore::verify`] when the store redacts it.
    ///
    /// When the primary credentials fail but a pending rotation record
    /// matches, the login also fails ([`TenantError::BadPassphrase`]):
    /// an interrupted rotation is completed by [`rewrap`](Self::rewrap)
    /// (which holds both passphrases), not by login. A *stale* pending
    /// record from a completed rotation is swept here.
    ///
    /// # Errors
    ///
    /// [`TenantError::NoSuchUser`], [`TenantError::BadPassphrase`], or a
    /// store failure.
    pub fn login(&self, user: &str, passphrase: &str) -> Result<Session, TenantError> {
        let line = self
            .records
            .get(&UserRecord::key(user))?
            .ok_or_else(|| TenantError::NoSuchUser(user.to_string()))?;
        let record = UserRecord::decode(&line)?;
        let master = MasterKey::derive(passphrase, &record.salt, record.iterations);
        if !self.master_matches(&UserRecord::key(user), &record, &master)? {
            pe_observe::static_counter!("tenant.login_failures").inc();
            return Err(TenantError::BadPassphrase);
        }
        let session = Session { user: user.to_string(), master };
        self.sweep_stale_pending(&session);
        pe_observe::static_counter!("tenant.logins").inc();
        Ok(session)
    }

    /// Checks `master` against a user record: locally via its verifier
    /// field, or through the store's verify protocol when redacted.
    fn master_matches(
        &self,
        key: &str,
        record: &UserRecord,
        master: &MasterKey,
    ) -> Result<bool, TenantError> {
        match &record.verifier {
            Some(stored) => Ok(master.verifier_matches(stored)),
            None => self.records.verify(key, &hex::encode(master.verifier())),
        }
    }

    /// Deletes a leftover `p/<user>` record whose credentials match the
    /// live session — the residue of a rotation that promoted its new
    /// user record but crashed before cleaning up. A pending record with
    /// *different* credentials (a genuinely interrupted rotation) is
    /// left for [`rewrap`](Self::rewrap) to finish. Best-effort: a store
    /// failure here never fails the login.
    fn sweep_stale_pending(&self, session: &Session) {
        let pending_key = UserRecord::pending_key(&session.user);
        let Ok(Some(line)) = self.records.get(&pending_key) else { return };
        let Ok(pending) = UserRecord::decode(&line) else { return };
        let matches = match self.master_matches(&pending_key, &pending, &session.master) {
            Ok(matches) => matches,
            Err(_) => return,
        };
        if matches {
            let _ = self.records.delete(&pending_key, Some(&session.auth()));
        }
    }

    /// Registers a document owned by `session`'s user, generating its
    /// random data key and storing the owner's wrapped copy.
    ///
    /// # Errors
    ///
    /// [`TenantError::BadName`], [`TenantError::DocumentExists`], or a
    /// store failure.
    pub fn create_document<N: NonceSource>(
        &self,
        session: &Session,
        doc: &str,
        rng: &mut N,
    ) -> Result<DataKey, TenantError> {
        validate_name(doc)?;
        let auth = session.auth();
        let record = DocRecord { doc: doc.to_string(), owner: session.user.clone() };
        if !self.records.put_if_absent(&DocRecord::key(doc), &record.encode(), Some(&auth))? {
            return Err(TenantError::DocumentExists(doc.to_string()));
        }
        let key = DataKey::generate(rng);
        let grant = GrantRecord {
            doc: doc.to_string(),
            user: session.user.clone(),
            wrapped: key.wrap(&session.master),
            granted_by: session.user.clone(),
        };
        self.records.put(&GrantRecord::key(doc, &session.user), &grant.encode(), Some(&auth))?;
        pe_observe::static_counter!("tenant.docs_created").inc();
        Ok(key)
    }

    /// Unwraps the data key `session`'s user holds for `doc`.
    ///
    /// # Errors
    ///
    /// [`TenantError::NoSuchDocument`] when the document is unknown,
    /// [`TenantError::NotAuthorized`] when the user holds no grant,
    /// [`TenantError::Corrupt`] when the stored record does not unwrap
    /// under the user's KEK.
    pub fn data_key(&self, session: &Session, doc: &str) -> Result<DataKey, TenantError> {
        let Some(line) = self.records.get(&GrantRecord::key(doc, &session.user))? else {
            pe_observe::static_counter!("tenant.denied").inc();
            if self.records.get(&DocRecord::key(doc))?.is_none() {
                return Err(TenantError::NoSuchDocument(doc.to_string()));
            }
            return Err(TenantError::NotAuthorized {
                doc: doc.to_string(),
                user: session.user.clone(),
            });
        };
        let grant = GrantRecord::decode(&line)?;
        DataKey::unwrap(&session.master, &grant.wrapped)
    }

    /// The owner grants access: wraps the data key under a fresh
    /// one-time invite KEK and returns the invite code (base32, travels
    /// out of band). The grantee redeems it with
    /// [`accept`](TenantDirectory::accept).
    ///
    /// # Errors
    ///
    /// [`TenantError::NoSuchDocument`], [`TenantError::NotOwner`],
    /// [`TenantError::NoSuchUser`] (unknown grantee), or a store
    /// failure.
    pub fn grant<N: NonceSource>(
        &self,
        session: &Session,
        doc: &str,
        grantee: &str,
        rng: &mut N,
    ) -> Result<String, TenantError> {
        let owner = self.owner_of(doc)?;
        if owner != session.user {
            return Err(TenantError::NotOwner {
                doc: doc.to_string(),
                user: session.user.clone(),
            });
        }
        if self.records.get(&UserRecord::key(grantee))?.is_none() {
            return Err(TenantError::NoSuchUser(grantee.to_string()));
        }
        let key = self.data_key(session, doc)?;
        let mut code = [0u8; INVITE_CODE_BYTES];
        rng.fill_bytes(&mut code);
        let invite_id = base32::encode_unpadded(&code[..INVITE_ID_BYTES]);
        let mut kek = [0u8; 16];
        kek.copy_from_slice(&code[INVITE_ID_BYTES..]);
        let invite_master = MasterKey::from_kek(kek);
        let record = InviteRecord {
            doc: doc.to_string(),
            invite_id: invite_id.clone(),
            grantee: grantee.to_string(),
            wrapped: key.wrap(&invite_master),
            issued_by: session.user.clone(),
        };
        self.records.put(&InviteRecord::key(doc, &invite_id), &record.encode(), Some(&session.auth()))?;
        pe_observe::static_counter!("tenant.grants").inc();
        let text = base32::encode_unpadded(&code);
        zeroize::wipe(&mut code);
        Ok(text)
    }

    /// The grantee redeems an invite code: unwraps the data key with the
    /// one-time KEK from the code, rewraps it under their own KEK, and
    /// burns the invite.
    ///
    /// # Errors
    ///
    /// [`TenantError::BadInvite`] for a code that is malformed, unknown,
    /// already redeemed, addressed to someone else, or whose wrapped key
    /// fails its integrity check.
    pub fn accept(&self, session: &Session, doc: &str, code: &str) -> Result<(), TenantError> {
        let bytes = base32::decode_unpadded(code.trim())
            .map_err(|_| TenantError::BadInvite)?;
        if bytes.len() != INVITE_CODE_BYTES {
            return Err(TenantError::BadInvite);
        }
        let invite_id = base32::encode_unpadded(&bytes[..INVITE_ID_BYTES]);
        let Some(line) = self.records.get(&InviteRecord::key(doc, &invite_id))? else {
            return Err(TenantError::BadInvite);
        };
        let record = InviteRecord::decode(&line)?;
        if record.grantee != session.user || record.doc != doc {
            return Err(TenantError::BadInvite);
        }
        let mut kek = [0u8; 16];
        kek.copy_from_slice(&bytes[INVITE_ID_BYTES..]);
        let invite_master = MasterKey::from_kek(kek);
        let key = DataKey::unwrap(&invite_master, &record.wrapped)
            .map_err(|_| TenantError::BadInvite)?;
        let auth = session.auth();
        let grant = GrantRecord {
            doc: doc.to_string(),
            user: session.user.clone(),
            wrapped: key.wrap(&session.master),
            granted_by: record.issued_by,
        };
        self.records.put(&GrantRecord::key(doc, &session.user), &grant.encode(), Some(&auth))?;
        self.records.delete(&InviteRecord::key(doc, &invite_id), Some(&auth))?;
        pe_observe::static_counter!("tenant.accepts").inc();
        Ok(())
    }

    /// Grant-and-accept in one call when both sessions are at hand (CLI
    /// local mode, tests, benches). Semantically identical to the
    /// invite flow — it *is* the invite flow.
    ///
    /// # Errors
    ///
    /// Whatever [`grant`](TenantDirectory::grant) and
    /// [`accept`](TenantDirectory::accept) return.
    pub fn grant_direct<N: NonceSource>(
        &self,
        owner: &Session,
        doc: &str,
        grantee: &Session,
        rng: &mut N,
    ) -> Result<(), TenantError> {
        let code = self.grant(owner, doc, &grantee.user, rng)?;
        self.accept(grantee, doc, &code)
    }

    /// The owner revokes a user's access: deletes their wrapped-key
    /// record and any pending invites addressed to them. O(1) in the
    /// document size — the body is never touched. Returns whether a
    /// grant or invite actually existed.
    ///
    /// # Errors
    ///
    /// [`TenantError::NoSuchDocument`], [`TenantError::NotOwner`], or an
    /// attempt to revoke the owner themselves.
    pub fn revoke(&self, session: &Session, doc: &str, user: &str) -> Result<bool, TenantError> {
        let owner = self.owner_of(doc)?;
        if owner != session.user {
            return Err(TenantError::NotOwner {
                doc: doc.to_string(),
                user: session.user.clone(),
            });
        }
        if user == owner {
            // The owner's grant is load-bearing (it holds the only
            // guaranteed wrapped copy); surface the misuse crisply.
            return Err(TenantError::NotOwner { doc: doc.to_string(), user: user.to_string() });
        }
        let auth = session.auth();
        let mut existed = self.records.delete(&GrantRecord::key(doc, user), Some(&auth))?;
        for key in self.records.list(&InviteRecord::doc_prefix(doc))? {
            if let Some(line) = self.records.get(&key)? {
                if InviteRecord::decode(&line).is_ok_and(|r| r.grantee == user) {
                    existed |= self.records.delete(&key, Some(&auth))?;
                }
            }
        }
        pe_observe::static_counter!("tenant.revokes").inc();
        Ok(existed)
    }

    /// Rotates a user's passphrase: verifies the old one, persists the
    /// new credentials, and rewraps every grant the user holds under the
    /// new KEK. Returns the number of rewrapped grants. Document bodies
    /// are never touched.
    ///
    /// Crash safety — the rotation is staged so that every wrapped key
    /// remains recoverable from persisted salts at every instant:
    ///
    /// 1. the new salt/iterations/verifier are written to a *pending*
    ///    record (`p/<user>`) **before** any grant is touched — no grant
    ///    is ever wrapped under a KEK whose salt only lives in memory;
    /// 2. each grant is rewrapped old→new (a grant that already unwraps
    ///    under the new KEK — an interrupted earlier run of this same
    ///    rotation — is left as-is and counted);
    /// 3. the pending record is promoted to the primary user record (the
    ///    commit point: the new passphrase now logs in), then deleted
    ///    (best-effort; [`login`](Self::login) sweeps leftovers).
    ///
    /// A crash anywhere before step 3 leaves the old passphrase valid;
    /// rerunning `rewrap` with the same passphrase pair resumes and
    /// finishes the rotation.
    ///
    /// # Errors
    ///
    /// [`TenantError::NoSuchUser`], [`TenantError::BadPassphrase`],
    /// [`TenantError::RotationPending`] when a *different* interrupted
    /// rotation holds rewrapped grants, or a store failure.
    pub fn rewrap<N: NonceSource>(
        &self,
        user: &str,
        old_passphrase: &str,
        new_passphrase: &str,
        iterations: u32,
        rng: &mut N,
    ) -> Result<usize, TenantError> {
        if iterations == 0 {
            return Err(TenantError::Corrupt("kdf iterations must be positive".into()));
        }
        let old_session = self.login(user, old_passphrase)?;
        let auth = old_session.auth();
        let pending_key = UserRecord::pending_key(user);
        let new_master = self.rotation_master(
            user,
            new_passphrase,
            iterations,
            &old_session,
            &pending_key,
            rng,
        )?;
        let mut rewrapped = 0;
        for key in self.grant_keys_for(user)? {
            let Some(line) = self.records.get(&key)? else { continue };
            let mut grant = GrantRecord::decode(&line)?;
            match DataKey::unwrap(&old_session.master, &grant.wrapped) {
                Ok(data_key) => {
                    grant.wrapped = data_key.wrap(&new_master.master);
                    self.records.put(&key, &grant.encode(), Some(&auth))?;
                }
                // Already rewrapped by an interrupted run of this same
                // rotation — verify it unwraps under the new KEK.
                Err(_) => {
                    DataKey::unwrap(&new_master.master, &grant.wrapped)?;
                }
            }
            rewrapped += 1;
        }
        // Commit point: promote the new credentials, then clean up the
        // pending record (best-effort — login sweeps stale leftovers).
        self.records.put(&UserRecord::key(user), &new_master.record.encode(), Some(&auth))?;
        let new_auth =
            Auth { user: user.to_string(), proof: hex::encode(new_master.master.verifier()) };
        let _ = self.records.delete(&pending_key, Some(&new_auth));
        pe_observe::static_counter!("tenant.rewraps").inc();
        Ok(rewrapped)
    }

    /// Stages (or resumes) the new credentials of a passphrase rotation:
    /// reuses the pending record when its verifier matches the requested
    /// new passphrase, otherwise draws a fresh salt — refusing to
    /// overwrite a mismatched pending record while any grant is still
    /// wrapped under its KEK. The returned credentials are persisted in
    /// `p/<user>` before this function returns.
    fn rotation_master<N: NonceSource>(
        &self,
        user: &str,
        new_passphrase: &str,
        iterations: u32,
        old_session: &Session,
        pending_key: &str,
        rng: &mut N,
    ) -> Result<RotationMaster, TenantError> {
        if let Some(line) = self.records.get(pending_key)? {
            let pending = UserRecord::decode(&line)?;
            let master = MasterKey::derive(new_passphrase, &pending.salt, pending.iterations);
            if self.master_matches(pending_key, &pending, &master)? {
                // Resume: the pending credentials are already persisted.
                // Re-derive the verifier locally — the store may have
                // redacted it from the read.
                let record = UserRecord { verifier: Some(*master.verifier()), ..pending };
                return Ok(RotationMaster { master, record });
            }
            // A different rotation was interrupted. Its salt may be the
            // only way to unwrap grants it already rewrapped; overwrite
            // it only once every grant provably unwraps under the old
            // KEK (i.e. the interrupted run touched nothing).
            for key in self.grant_keys_for(user)? {
                let Some(line) = self.records.get(&key)? else { continue };
                let grant = GrantRecord::decode(&line)?;
                if DataKey::unwrap(&old_session.master, &grant.wrapped).is_err() {
                    return Err(TenantError::RotationPending(user.to_string()));
                }
            }
        }
        let mut salt = [0u8; 16];
        rng.fill_bytes(&mut salt);
        let master = MasterKey::derive(new_passphrase, &salt, iterations);
        let record = UserRecord {
            user: user.to_string(),
            salt,
            iterations,
            verifier: Some(*master.verifier()),
        };
        self.records.put(pending_key, &record.encode(), Some(&old_session.auth()))?;
        Ok(RotationMaster { master, record })
    }

    /// All registered user names, sorted.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn list_users(&self) -> Result<Vec<String>, TenantError> {
        Ok(self
            .records
            .list(USER_PREFIX)?
            .into_iter()
            .filter_map(|k| k.strip_prefix(USER_PREFIX).map(str::to_string))
            .collect())
    }

    /// All registered documents with their owners, sorted by id.
    ///
    /// # Errors
    ///
    /// Store failures or corrupt records.
    pub fn list_documents(&self) -> Result<Vec<DocRecord>, TenantError> {
        let mut docs = Vec::new();
        for key in self.records.list(DOC_PREFIX)? {
            if let Some(line) = self.records.get(&key)? {
                docs.push(DocRecord::decode(&line)?);
            }
        }
        Ok(docs)
    }

    /// The users holding a grant for `doc`, sorted.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn grants_for(&self, doc: &str) -> Result<Vec<String>, TenantError> {
        let prefix = GrantRecord::doc_prefix(doc);
        Ok(self
            .records
            .list(&prefix)?
            .into_iter()
            .filter_map(|k| k.strip_prefix(&prefix).map(str::to_string))
            .collect())
    }

    /// The documents `user` holds a grant for, sorted.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn documents_for(&self, user: &str) -> Result<Vec<String>, TenantError> {
        let suffix = format!("/{user}");
        Ok(self
            .records
            .list(GRANT_PREFIX)?
            .into_iter()
            .filter_map(|k| {
                k.strip_prefix(GRANT_PREFIX)
                    .and_then(|rest| rest.strip_suffix(&suffix))
                    .map(str::to_string)
            })
            .collect())
    }

    /// Record counts; also refreshes the `tenant.users` / `tenant.docs`
    /// / `tenant.grant_records` gauges.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn stats(&self) -> Result<DirectoryStats, TenantError> {
        let stats = DirectoryStats {
            users: self.records.list(USER_PREFIX)?.len(),
            documents: self.records.list(DOC_PREFIX)?.len(),
            grants: self.records.list(GRANT_PREFIX)?.len(),
            invites: self.records.list(INVITE_PREFIX)?.len(),
        };
        pe_observe::static_gauge!("tenant.users").set(stats.users as u64);
        pe_observe::static_gauge!("tenant.docs").set(stats.documents as u64);
        pe_observe::static_gauge!("tenant.grant_records").set(stats.grants as u64);
        Ok(stats)
    }

    fn owner_of(&self, doc: &str) -> Result<String, TenantError> {
        let line = self
            .records
            .get(&DocRecord::key(doc))?
            .ok_or_else(|| TenantError::NoSuchDocument(doc.to_string()))?;
        Ok(DocRecord::decode(&line)?.owner)
    }

    fn grant_keys_for(&self, user: &str) -> Result<Vec<String>, TenantError> {
        let suffix = format!("/{user}");
        Ok(self
            .records
            .list(GRANT_PREFIX)?
            .into_iter()
            .filter(|k| k.ends_with(&suffix))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemRecords;
    use pe_crypto::CtrDrbg;

    const ITERS: u32 = 32;

    fn directory() -> TenantDirectory<MemRecords> {
        TenantDirectory::new(MemRecords::new())
    }

    #[test]
    fn register_login_roundtrip() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(1);
        dir.register("alice", "pw-a", ITERS, &mut rng).unwrap();
        assert!(dir.login("alice", "pw-a").is_ok());
        assert!(matches!(dir.login("alice", "wrong"), Err(TenantError::BadPassphrase)));
        assert!(matches!(dir.login("bob", "pw"), Err(TenantError::NoSuchUser(_))));
        assert!(matches!(
            dir.register("alice", "again", ITERS, &mut rng),
            Err(TenantError::UserExists(_))
        ));
        assert!(matches!(
            dir.register("no spaces", "pw", ITERS, &mut rng),
            Err(TenantError::BadName(_))
        ));
        assert_eq!(dir.list_users().unwrap(), vec!["alice"]);
    }

    #[test]
    fn owner_creates_and_unwraps() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(2);
        let alice = dir.register("alice", "pw-a", ITERS, &mut rng).unwrap();
        let key = dir.create_document(&alice, "doc1", &mut rng).unwrap();
        let unwrapped = dir.data_key(&alice, "doc1").unwrap();
        assert_eq!(key.bytes(), unwrapped.bytes());
        // Same after a fresh login.
        let alice2 = dir.login("alice", "pw-a").unwrap();
        assert_eq!(dir.data_key(&alice2, "doc1").unwrap().bytes(), key.bytes());
        assert!(matches!(
            dir.create_document(&alice, "doc1", &mut rng),
            Err(TenantError::DocumentExists(_))
        ));
    }

    #[test]
    fn invite_flow_shares_the_key() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(3);
        let alice = dir.register("alice", "pw-a", ITERS, &mut rng).unwrap();
        let bob = dir.register("bob", "pw-b", ITERS, &mut rng).unwrap();
        let key = dir.create_document(&alice, "doc1", &mut rng).unwrap();
        assert!(matches!(
            dir.data_key(&bob, "doc1"),
            Err(TenantError::NotAuthorized { .. })
        ));
        let code = dir.grant(&alice, "doc1", "bob", &mut rng).unwrap();
        // Pending: still no direct grant until accept.
        assert!(dir.data_key(&bob, "doc1").is_err());
        dir.accept(&bob, "doc1", &code).unwrap();
        assert_eq!(dir.data_key(&bob, "doc1").unwrap().bytes(), key.bytes());
        // The invite burned.
        assert_eq!(dir.accept(&bob, "doc1", &code), Err(TenantError::BadInvite));
        assert_eq!(dir.grants_for("doc1").unwrap(), vec!["alice", "bob"]);
        assert_eq!(dir.documents_for("bob").unwrap(), vec!["doc1"]);
    }

    #[test]
    fn invite_is_bound_to_grantee_and_doc() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(4);
        let alice = dir.register("alice", "pw-a", ITERS, &mut rng).unwrap();
        let bob = dir.register("bob", "pw-b", ITERS, &mut rng).unwrap();
        let eve = dir.register("eve", "pw-e", ITERS, &mut rng).unwrap();
        dir.create_document(&alice, "doc1", &mut rng).unwrap();
        dir.create_document(&alice, "doc2", &mut rng).unwrap();
        let code = dir.grant(&alice, "doc1", "bob", &mut rng).unwrap();
        // The grantee binding is advisory, not cryptographic: the code
        // itself wraps the data key, so anyone holding it holds the key
        // (it is a bearer secret — keep the channel private). What the
        // binding buys is that the *directory* refuses to mint a grant
        // record for anyone but bob, so eve cannot enroll herself.
        assert_eq!(dir.accept(&eve, "doc1", &code), Err(TenantError::BadInvite));
        // Bob cannot redeem it against another document.
        assert_eq!(dir.accept(&bob, "doc2", &code), Err(TenantError::BadInvite));
        // Garbage codes are rejected.
        assert_eq!(dir.accept(&bob, "doc1", "NOT A CODE"), Err(TenantError::BadInvite));
        // The real redemption still works.
        dir.accept(&bob, "doc1", &code).unwrap();
    }

    #[test]
    fn revoke_removes_access_without_touching_others() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(5);
        let alice = dir.register("alice", "pw-a", ITERS, &mut rng).unwrap();
        let bob = dir.register("bob", "pw-b", ITERS, &mut rng).unwrap();
        let carol = dir.register("carol", "pw-c", ITERS, &mut rng).unwrap();
        let key = dir.create_document(&alice, "doc1", &mut rng).unwrap();
        dir.grant_direct(&alice, "doc1", &bob, &mut rng).unwrap();
        dir.grant_direct(&alice, "doc1", &carol, &mut rng).unwrap();
        assert!(dir.revoke(&alice, "doc1", "bob").unwrap());
        assert!(matches!(dir.data_key(&bob, "doc1"), Err(TenantError::NotAuthorized { .. })));
        // Carol and the owner are untouched.
        assert_eq!(dir.data_key(&carol, "doc1").unwrap().bytes(), key.bytes());
        assert_eq!(dir.data_key(&alice, "doc1").unwrap().bytes(), key.bytes());
        // Revoking again reports nothing existed; revoking the owner and
        // non-owner revokes are refused.
        assert!(!dir.revoke(&alice, "doc1", "bob").unwrap());
        assert!(dir.revoke(&alice, "doc1", "alice").is_err());
        assert!(matches!(
            dir.revoke(&carol, "doc1", "alice"),
            Err(TenantError::NotOwner { .. })
        ));
    }

    #[test]
    fn revoke_burns_pending_invites() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(6);
        let alice = dir.register("alice", "pw-a", ITERS, &mut rng).unwrap();
        let bob = dir.register("bob", "pw-b", ITERS, &mut rng).unwrap();
        dir.create_document(&alice, "doc1", &mut rng).unwrap();
        let code = dir.grant(&alice, "doc1", "bob", &mut rng).unwrap();
        assert!(dir.revoke(&alice, "doc1", "bob").unwrap());
        assert_eq!(dir.accept(&bob, "doc1", &code), Err(TenantError::BadInvite));
    }

    #[test]
    fn rewrap_rotates_passphrase_and_keeps_keys() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(7);
        let alice = dir.register("alice", "old-pw", ITERS, &mut rng).unwrap();
        let bob = dir.register("bob", "pw-b", ITERS, &mut rng).unwrap();
        let k1 = dir.create_document(&alice, "doc1", &mut rng).unwrap();
        let k2 = dir.create_document(&bob, "doc2", &mut rng).unwrap();
        dir.grant_direct(&bob, "doc2", &alice, &mut rng).unwrap();
        assert!(matches!(
            dir.rewrap("alice", "wrong", "new-pw", ITERS, &mut rng),
            Err(TenantError::BadPassphrase)
        ));
        let rewrapped = dir.rewrap("alice", "old-pw", "new-pw", 2 * ITERS, &mut rng).unwrap();
        assert_eq!(rewrapped, 2, "alice holds grants on doc1 and doc2");
        assert!(matches!(dir.login("alice", "old-pw"), Err(TenantError::BadPassphrase)));
        let alice2 = dir.login("alice", "new-pw").unwrap();
        assert_eq!(dir.data_key(&alice2, "doc1").unwrap().bytes(), k1.bytes());
        assert_eq!(dir.data_key(&alice2, "doc2").unwrap().bytes(), k2.bytes());
        // Bob is untouched.
        assert_eq!(dir.data_key(&bob, "doc2").unwrap().bytes(), k2.bytes());
    }

    /// A store that injects a failure after a budget of successful puts
    /// — simulates a crash mid-rotation at any chosen write.
    struct FailingRecords<'a> {
        inner: &'a MemRecords,
        puts_left: std::cell::Cell<u32>,
    }

    impl RecordStore for FailingRecords<'_> {
        fn get(&self, key: &str) -> Result<Option<String>, TenantError> {
            self.inner.get(key)
        }
        fn put(&self, key: &str, value: &str, auth: Option<&Auth>) -> Result<(), TenantError> {
            if self.puts_left.get() == 0 {
                return Err(TenantError::Store { status: 0, message: "injected crash".into() });
            }
            self.puts_left.set(self.puts_left.get() - 1);
            self.inner.put(key, value, auth)
        }
        fn put_if_absent(
            &self,
            key: &str,
            value: &str,
            auth: Option<&Auth>,
        ) -> Result<bool, TenantError> {
            self.inner.put_if_absent(key, value, auth)
        }
        fn delete(&self, key: &str, auth: Option<&Auth>) -> Result<bool, TenantError> {
            self.inner.delete(key, auth)
        }
        fn verify(&self, key: &str, proof: &str) -> Result<bool, TenantError> {
            self.inner.verify(key, proof)
        }
        fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError> {
            self.inner.list(prefix)
        }
    }

    /// Registers alice with three documents and returns the data keys.
    fn three_doc_setup(mem: &MemRecords, rng: &mut CtrDrbg) -> [[u8; 32]; 3] {
        let dir = TenantDirectory::new(mem);
        let alice = dir.register("alice", "old-pw", ITERS, rng).unwrap();
        let mut keys = [[0u8; 32]; 3];
        for (i, doc) in ["doc1", "doc2", "doc3"].iter().enumerate() {
            keys[i] = *dir.create_document(&alice, doc, rng).unwrap().bytes();
        }
        keys
    }

    fn assert_all_keys(dir: &TenantDirectory<&MemRecords>, session: &Session, keys: &[[u8; 32]; 3]) {
        for (i, doc) in ["doc1", "doc2", "doc3"].iter().enumerate() {
            assert_eq!(dir.data_key(session, doc).unwrap().bytes(), &keys[i]);
        }
    }

    #[test]
    fn rewrap_crash_mid_loop_is_resumable_with_no_key_loss() {
        let mem = MemRecords::new();
        let mut rng = CtrDrbg::from_seed(10);
        let keys = three_doc_setup(&mem, &mut rng);
        // Crash budget: pending write + one grant rewrap succeed, the
        // second grant write fails — the worst case the review flagged
        // (a grant wrapped under a KEK whose salt used to be in memory
        // only).
        let failing = FailingRecords { inner: &mem, puts_left: std::cell::Cell::new(2) };
        let dir_f = TenantDirectory::new(failing);
        assert!(matches!(
            dir_f.rewrap("alice", "old-pw", "new-pw", ITERS, &mut rng),
            Err(TenantError::Store { .. })
        ));
        let dir = TenantDirectory::new(&mem);
        // The old passphrase still logs in (primary record untouched)...
        let old_session = dir.login("alice", "old-pw").unwrap();
        // ...and the new salt survived the crash in the pending record,
        // so resuming the same rotation recovers every key.
        assert!(mem.get("p/alice").unwrap().is_some(), "pending credentials persisted");
        let rewrapped = dir.rewrap("alice", "old-pw", "new-pw", ITERS, &mut rng).unwrap();
        assert_eq!(rewrapped, 3);
        drop(old_session);
        assert!(matches!(dir.login("alice", "old-pw"), Err(TenantError::BadPassphrase)));
        let session = dir.login("alice", "new-pw").unwrap();
        assert_all_keys(&dir, &session, &keys);
        assert_eq!(mem.get("p/alice").unwrap(), None, "pending record cleaned up");
    }

    #[test]
    fn interrupted_rotation_refuses_a_different_new_passphrase() {
        let mem = MemRecords::new();
        let mut rng = CtrDrbg::from_seed(11);
        let keys = three_doc_setup(&mem, &mut rng);
        let failing = FailingRecords { inner: &mem, puts_left: std::cell::Cell::new(2) };
        let dir_f = TenantDirectory::new(failing);
        dir_f.rewrap("alice", "old-pw", "interim-pw", ITERS, &mut rng).unwrap_err();
        // One grant is wrapped under the interim KEK; starting a rotation
        // to a different passphrase would have to discard the interim
        // salt and strand that grant — it must be refused.
        let dir = TenantDirectory::new(&mem);
        assert!(matches!(
            dir.rewrap("alice", "old-pw", "other-pw", ITERS, &mut rng),
            Err(TenantError::RotationPending(_))
        ));
        // Finishing the interrupted rotation recovers everything.
        assert_eq!(dir.rewrap("alice", "old-pw", "interim-pw", ITERS, &mut rng).unwrap(), 3);
        let session = dir.login("alice", "interim-pw").unwrap();
        assert_all_keys(&dir, &session, &keys);
    }

    #[test]
    fn untouched_interrupted_rotation_allows_a_fresh_one() {
        let mem = MemRecords::new();
        let mut rng = CtrDrbg::from_seed(12);
        let keys = three_doc_setup(&mem, &mut rng);
        // Crash right after the pending write: no grant was rewrapped,
        // so the parked credentials are safely discardable.
        let failing = FailingRecords { inner: &mem, puts_left: std::cell::Cell::new(1) };
        let dir_f = TenantDirectory::new(failing);
        dir_f.rewrap("alice", "old-pw", "interim-pw", ITERS, &mut rng).unwrap_err();
        assert!(mem.get("p/alice").unwrap().is_some());
        let dir = TenantDirectory::new(&mem);
        assert_eq!(dir.rewrap("alice", "old-pw", "other-pw", ITERS, &mut rng).unwrap(), 3);
        let session = dir.login("alice", "other-pw").unwrap();
        assert_all_keys(&dir, &session, &keys);
    }

    #[test]
    fn login_sweeps_residue_of_a_completed_rotation() {
        let mem = MemRecords::new();
        let mut rng = CtrDrbg::from_seed(13);
        let keys = three_doc_setup(&mem, &mut rng);
        let dir = TenantDirectory::new(&mem);
        dir.rewrap("alice", "old-pw", "new-pw", ITERS, &mut rng).unwrap();
        // Simulate a crash between promotion and pending cleanup: the
        // pending record (same content as the new primary) lingers.
        let primary = mem.get("u/alice").unwrap().unwrap();
        mem.put("p/alice", &primary, None).unwrap();
        let session = dir.login("alice", "new-pw").unwrap();
        assert_eq!(mem.get("p/alice").unwrap(), None, "stale pending swept on login");
        assert_all_keys(&dir, &session, &keys);
    }

    #[test]
    fn stats_count_records() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(8);
        let alice = dir.register("alice", "pw", ITERS, &mut rng).unwrap();
        dir.register("bob", "pw", ITERS, &mut rng).unwrap();
        dir.create_document(&alice, "doc1", &mut rng).unwrap();
        dir.grant(&alice, "doc1", "bob", &mut rng).unwrap();
        assert_eq!(
            dir.stats().unwrap(),
            DirectoryStats { users: 2, documents: 1, grants: 1, invites: 1 }
        );
    }

    #[test]
    fn unknown_document_is_distinguished_from_denied() {
        let dir = directory();
        let mut rng = CtrDrbg::from_seed(9);
        let alice = dir.register("alice", "pw", ITERS, &mut rng).unwrap();
        assert!(matches!(
            dir.data_key(&alice, "ghost"),
            Err(TenantError::NoSuchDocument(_))
        ));
        assert!(matches!(
            dir.grant(&alice, "ghost", "bob", &mut rng),
            Err(TenantError::NoSuchDocument(_))
        ));
    }
}
