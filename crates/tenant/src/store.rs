//! Record-store abstraction the directory runs on.
//!
//! The [`TenantDirectory`](crate::TenantDirectory) only needs five tiny
//! operations over `(key, text)` records. Two implementations:
//!
//! * [`ServiceRecords`] — speaks the `/tenant/record` + `/tenant/list`
//!   wire protocol against any [`CloudService`]: the in-process
//!   [`DocsServer`](pe_cloud::docs::DocsServer) (records land in its
//!   `DocStore`, durable when the store is), or an HTTP client against a
//!   live `pedit serve`. This is the production path.
//! * [`MemRecords`] — a plain in-memory map for unit tests.

use std::collections::BTreeMap;
use std::sync::Mutex;

use pe_cloud::{CloudService, Request, Response};
use pe_crypto::hex;

use crate::error::TenantError;
use crate::records::UserRecord;

/// Proof of identity attached to mutating record operations: the acting
/// user plus the hex of their login verifier. The server compares the
/// proof against the verifier it stored at registration (and never
/// serves back), so only a client that derived the verifier from the
/// passphrase can mutate that user's directory state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Auth {
    /// Acting user name.
    pub user: String,
    /// Hex-encoded login verifier.
    pub proof: String,
}

/// Minimal keyed text-record storage.
///
/// Mutations carry an optional [`Auth`]; stores fronting an untrusted
/// server forward it for server-side enforcement, while trusted local
/// stores ([`MemRecords`]) may ignore it.
pub trait RecordStore {
    /// Fetches a record, `None` when absent.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure.
    fn get(&self, key: &str) -> Result<Option<String>, TenantError>;

    /// Creates or replaces a record.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure (including
    /// an authorization refusal).
    fn put(&self, key: &str, value: &str, auth: Option<&Auth>) -> Result<(), TenantError>;

    /// Creates a record only if absent; returns `false` (storing
    /// nothing) when the key already exists.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure.
    fn put_if_absent(
        &self,
        key: &str,
        value: &str,
        auth: Option<&Auth>,
    ) -> Result<bool, TenantError>;

    /// Deletes a record; returns whether it existed.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure (including
    /// an authorization refusal).
    fn delete(&self, key: &str, auth: Option<&Auth>) -> Result<bool, TenantError>;

    /// Lists record keys under a prefix, sorted.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure.
    fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError>;

    /// Checks a hex-encoded verifier proof against the verifier stored
    /// in the user record at `key` (a `u/` or `p/` key). Used by login
    /// when the store redacts verifiers from reads.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure;
    /// [`TenantError::NoSuchUser`] when no record exists at `key`.
    fn verify(&self, key: &str, proof: &str) -> Result<bool, TenantError>;
}

/// Record storage over the `/tenant/*` endpoints of any [`CloudService`].
#[derive(Debug, Clone)]
pub struct ServiceRecords<S> {
    service: S,
}

impl<S: CloudService> ServiceRecords<S> {
    /// Wraps a service (an in-process server, an `Arc` of one, a
    /// reference to one, or an HTTP client).
    pub fn new(service: S) -> ServiceRecords<S> {
        ServiceRecords { service }
    }
}

fn store_error(what: &str, response: &Response) -> TenantError {
    TenantError::Store {
        status: response.status,
        message: format!(
            "{what}: {}",
            response.body_text().unwrap_or("(non-text response)")
        ),
    }
}

/// Query parameters for a record mutation, with auth appended when
/// present.
fn mutation_query<'a>(
    key: &'a str,
    extra: Option<(&'a str, &'a str)>,
    auth: Option<&'a Auth>,
) -> Vec<(&'a str, &'a str)> {
    let mut query = vec![("key", key)];
    if let Some(pair) = extra {
        query.push(pair);
    }
    if let Some(auth) = auth {
        query.push(("auth", auth.user.as_str()));
        query.push(("proof", auth.proof.as_str()));
    }
    query
}

impl<S: CloudService> RecordStore for ServiceRecords<S> {
    fn get(&self, key: &str) -> Result<Option<String>, TenantError> {
        let response = self.service.handle(&Request::get("/tenant/record", &[("key", key)]));
        match response.status {
            200 => Ok(Some(response.body_text().unwrap_or("").to_string())),
            404 => Ok(None),
            _ => Err(store_error("get", &response)),
        }
    }

    fn put(&self, key: &str, value: &str, auth: Option<&Auth>) -> Result<(), TenantError> {
        let response = self.service.handle(&Request::post(
            "/tenant/record",
            &mutation_query(key, None, auth),
            value.to_string(),
        ));
        if response.is_success() {
            Ok(())
        } else {
            Err(store_error("put", &response))
        }
    }

    fn put_if_absent(
        &self,
        key: &str,
        value: &str,
        auth: Option<&Auth>,
    ) -> Result<bool, TenantError> {
        let response = self.service.handle(&Request::post(
            "/tenant/record",
            &mutation_query(key, Some(("if_absent", "1")), auth),
            value.to_string(),
        ));
        match response.status {
            200 => Ok(true),
            409 => Ok(false),
            _ => Err(store_error("put_if_absent", &response)),
        }
    }

    fn delete(&self, key: &str, auth: Option<&Auth>) -> Result<bool, TenantError> {
        let response = self.service.handle(&Request::post(
            "/tenant/record",
            &mutation_query(key, Some(("cmd", "delete")), auth),
            "",
        ));
        if !response.is_success() {
            return Err(store_error("delete", &response));
        }
        Ok(response.body_text() == Some("deleted=true"))
    }

    fn verify(&self, key: &str, proof: &str) -> Result<bool, TenantError> {
        let response = self.service.handle(&Request::post(
            "/tenant/verify",
            &[("key", key), ("proof", proof)],
            "",
        ));
        match response.status {
            200 => Ok(response.body_text() == Some("ok=true")),
            404 => Err(TenantError::NoSuchUser(key.to_string())),
            _ => Err(store_error("verify", &response)),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError> {
        let response =
            self.service.handle(&Request::get("/tenant/list", &[("prefix", prefix)]));
        if !response.is_success() {
            return Err(store_error("list", &response));
        }
        let body = response.body_text().unwrap_or("");
        let pairs = pe_crypto::form::parse_pairs(body)
            .map_err(|e| TenantError::Corrupt(format!("list response: {e}")))?;
        Ok(pairs.into_iter().filter(|(k, _)| k == "key").map(|(_, v)| v).collect())
    }
}

/// In-memory record storage for unit tests.
#[derive(Debug, Default)]
pub struct MemRecords {
    records: Mutex<BTreeMap<String, String>>,
}

impl MemRecords {
    /// Creates an empty store.
    pub fn new() -> MemRecords {
        MemRecords::default()
    }
}

impl RecordStore for MemRecords {
    fn get(&self, key: &str) -> Result<Option<String>, TenantError> {
        Ok(self.records.lock().unwrap().get(key).cloned())
    }

    // Trusted local backend: auth is not enforced (there is no server to
    // defend against — the map lives in the client process).
    fn put(&self, key: &str, value: &str, _auth: Option<&Auth>) -> Result<(), TenantError> {
        self.records.lock().unwrap().insert(key.to_string(), value.to_string());
        Ok(())
    }

    fn put_if_absent(
        &self,
        key: &str,
        value: &str,
        _auth: Option<&Auth>,
    ) -> Result<bool, TenantError> {
        let mut records = self.records.lock().unwrap();
        if records.contains_key(key) {
            return Ok(false);
        }
        records.insert(key.to_string(), value.to_string());
        Ok(true)
    }

    fn delete(&self, key: &str, _auth: Option<&Auth>) -> Result<bool, TenantError> {
        Ok(self.records.lock().unwrap().remove(key).is_some())
    }

    fn verify(&self, key: &str, proof: &str) -> Result<bool, TenantError> {
        let Some(line) = self.get(key)? else {
            return Err(TenantError::NoSuchUser(key.to_string()));
        };
        let record = UserRecord::decode(&line)?;
        let Some(stored) = record.verifier else { return Ok(false) };
        let Ok(presented) = hex::decode(proof) else { return Ok(false) };
        Ok(presented.as_slice() == stored.as_slice())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError> {
        Ok(self
            .records
            .lock()
            .unwrap()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }
}

impl<R: RecordStore + ?Sized> RecordStore for &R {
    fn get(&self, key: &str) -> Result<Option<String>, TenantError> {
        (**self).get(key)
    }
    fn put(&self, key: &str, value: &str, auth: Option<&Auth>) -> Result<(), TenantError> {
        (**self).put(key, value, auth)
    }
    fn put_if_absent(
        &self,
        key: &str,
        value: &str,
        auth: Option<&Auth>,
    ) -> Result<bool, TenantError> {
        (**self).put_if_absent(key, value, auth)
    }
    fn delete(&self, key: &str, auth: Option<&Auth>) -> Result<bool, TenantError> {
        (**self).delete(key, auth)
    }
    fn verify(&self, key: &str, proof: &str) -> Result<bool, TenantError> {
        (**self).verify(key, proof)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError> {
        (**self).list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_cloud::docs::DocsServer;

    // Keys outside the reserved directory prefixes: the server enforces
    // schema + auth on u/ p/ d/ g/ i/, which the directory tests cover.
    fn check_store<R: RecordStore>(records: R) {
        assert_eq!(records.get("x/alice").unwrap(), None);
        records.put("x/alice", "v1", None).unwrap();
        assert_eq!(records.get("x/alice").unwrap().as_deref(), Some("v1"));
        assert!(!records.put_if_absent("x/alice", "v2", None).unwrap());
        assert_eq!(records.get("x/alice").unwrap().as_deref(), Some("v1"));
        assert!(records.put_if_absent("x/bob", "b", None).unwrap());
        records.put("y/doc1/alice", "w", None).unwrap();
        assert_eq!(records.list("x/").unwrap(), vec!["x/alice", "x/bob"]);
        assert!(records.delete("x/bob", None).unwrap());
        assert!(!records.delete("x/bob", None).unwrap());
        assert_eq!(records.list("x/").unwrap(), vec!["x/alice"]);
    }

    fn check_verify<R: RecordStore>(records: R) {
        let record = UserRecord {
            user: "alice".into(),
            salt: [3u8; 16],
            iterations: 10,
            verifier: Some([0xC4; 16]),
        };
        records.put_if_absent("u/alice", &record.encode(), None).unwrap();
        let good = hex::encode(&[0xC4u8; 16]);
        let bad = hex::encode(&[0xC5u8; 16]);
        assert!(records.verify("u/alice", &good).unwrap());
        assert!(!records.verify("u/alice", &bad).unwrap());
        assert!(!records.verify("u/alice", "not hex").unwrap());
        assert!(matches!(
            records.verify("u/ghost", &good),
            Err(TenantError::NoSuchUser(_))
        ));
    }

    #[test]
    fn mem_records_semantics() {
        check_store(MemRecords::new());
        check_verify(MemRecords::new());
    }

    #[test]
    fn service_records_semantics() {
        check_store(ServiceRecords::new(DocsServer::new()));
        check_verify(ServiceRecords::new(DocsServer::new()));
    }

    #[test]
    fn service_records_by_reference() {
        let server = DocsServer::new();
        check_store(ServiceRecords::new(&server));
    }
}
