//! Record-store abstraction the directory runs on.
//!
//! The [`TenantDirectory`](crate::TenantDirectory) only needs five tiny
//! operations over `(key, text)` records. Two implementations:
//!
//! * [`ServiceRecords`] — speaks the `/tenant/record` + `/tenant/list`
//!   wire protocol against any [`CloudService`]: the in-process
//!   [`DocsServer`](pe_cloud::docs::DocsServer) (records land in its
//!   `DocStore`, durable when the store is), or an HTTP client against a
//!   live `pedit serve`. This is the production path.
//! * [`MemRecords`] — a plain in-memory map for unit tests.

use std::collections::BTreeMap;
use std::sync::Mutex;

use pe_cloud::{CloudService, Request, Response};

use crate::error::TenantError;

/// Minimal keyed text-record storage.
pub trait RecordStore {
    /// Fetches a record, `None` when absent.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure.
    fn get(&self, key: &str) -> Result<Option<String>, TenantError>;

    /// Creates or replaces a record.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure.
    fn put(&self, key: &str, value: &str) -> Result<(), TenantError>;

    /// Creates a record only if absent; returns `false` (storing
    /// nothing) when the key already exists.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure.
    fn put_if_absent(&self, key: &str, value: &str) -> Result<bool, TenantError>;

    /// Deletes a record; returns whether it existed.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure.
    fn delete(&self, key: &str) -> Result<bool, TenantError>;

    /// Lists record keys under a prefix, sorted.
    ///
    /// # Errors
    ///
    /// [`TenantError::Store`] on storage/transport failure.
    fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError>;
}

/// Record storage over the `/tenant/*` endpoints of any [`CloudService`].
#[derive(Debug, Clone)]
pub struct ServiceRecords<S> {
    service: S,
}

impl<S: CloudService> ServiceRecords<S> {
    /// Wraps a service (an in-process server, an `Arc` of one, a
    /// reference to one, or an HTTP client).
    pub fn new(service: S) -> ServiceRecords<S> {
        ServiceRecords { service }
    }
}

fn store_error(what: &str, response: &Response) -> TenantError {
    TenantError::Store {
        status: response.status,
        message: format!(
            "{what}: {}",
            response.body_text().unwrap_or("(non-text response)")
        ),
    }
}

impl<S: CloudService> RecordStore for ServiceRecords<S> {
    fn get(&self, key: &str) -> Result<Option<String>, TenantError> {
        let response = self.service.handle(&Request::get("/tenant/record", &[("key", key)]));
        match response.status {
            200 => Ok(Some(response.body_text().unwrap_or("").to_string())),
            404 => Ok(None),
            _ => Err(store_error("get", &response)),
        }
    }

    fn put(&self, key: &str, value: &str) -> Result<(), TenantError> {
        let response = self.service.handle(&Request::post(
            "/tenant/record",
            &[("key", key)],
            value.to_string(),
        ));
        if response.is_success() {
            Ok(())
        } else {
            Err(store_error("put", &response))
        }
    }

    fn put_if_absent(&self, key: &str, value: &str) -> Result<bool, TenantError> {
        let response = self.service.handle(&Request::post(
            "/tenant/record",
            &[("key", key), ("if_absent", "1")],
            value.to_string(),
        ));
        match response.status {
            200 => Ok(true),
            409 => Ok(false),
            _ => Err(store_error("put_if_absent", &response)),
        }
    }

    fn delete(&self, key: &str) -> Result<bool, TenantError> {
        let response = self.service.handle(&Request::post(
            "/tenant/record",
            &[("key", key), ("cmd", "delete")],
            "",
        ));
        if !response.is_success() {
            return Err(store_error("delete", &response));
        }
        Ok(response.body_text() == Some("deleted=true"))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError> {
        let response =
            self.service.handle(&Request::get("/tenant/list", &[("prefix", prefix)]));
        if !response.is_success() {
            return Err(store_error("list", &response));
        }
        let body = response.body_text().unwrap_or("");
        let pairs = pe_crypto::form::parse_pairs(body)
            .map_err(|e| TenantError::Corrupt(format!("list response: {e}")))?;
        Ok(pairs.into_iter().filter(|(k, _)| k == "key").map(|(_, v)| v).collect())
    }
}

/// In-memory record storage for unit tests.
#[derive(Debug, Default)]
pub struct MemRecords {
    records: Mutex<BTreeMap<String, String>>,
}

impl MemRecords {
    /// Creates an empty store.
    pub fn new() -> MemRecords {
        MemRecords::default()
    }
}

impl RecordStore for MemRecords {
    fn get(&self, key: &str) -> Result<Option<String>, TenantError> {
        Ok(self.records.lock().unwrap().get(key).cloned())
    }

    fn put(&self, key: &str, value: &str) -> Result<(), TenantError> {
        self.records.lock().unwrap().insert(key.to_string(), value.to_string());
        Ok(())
    }

    fn put_if_absent(&self, key: &str, value: &str) -> Result<bool, TenantError> {
        let mut records = self.records.lock().unwrap();
        if records.contains_key(key) {
            return Ok(false);
        }
        records.insert(key.to_string(), value.to_string());
        Ok(true)
    }

    fn delete(&self, key: &str) -> Result<bool, TenantError> {
        Ok(self.records.lock().unwrap().remove(key).is_some())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError> {
        Ok(self
            .records
            .lock()
            .unwrap()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect())
    }
}

impl<R: RecordStore + ?Sized> RecordStore for &R {
    fn get(&self, key: &str) -> Result<Option<String>, TenantError> {
        (**self).get(key)
    }
    fn put(&self, key: &str, value: &str) -> Result<(), TenantError> {
        (**self).put(key, value)
    }
    fn put_if_absent(&self, key: &str, value: &str) -> Result<bool, TenantError> {
        (**self).put_if_absent(key, value)
    }
    fn delete(&self, key: &str) -> Result<bool, TenantError> {
        (**self).delete(key)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>, TenantError> {
        (**self).list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_cloud::docs::DocsServer;

    fn check_store<R: RecordStore>(records: R) {
        assert_eq!(records.get("u/alice").unwrap(), None);
        records.put("u/alice", "v1").unwrap();
        assert_eq!(records.get("u/alice").unwrap().as_deref(), Some("v1"));
        assert!(!records.put_if_absent("u/alice", "v2").unwrap());
        assert_eq!(records.get("u/alice").unwrap().as_deref(), Some("v1"));
        assert!(records.put_if_absent("u/bob", "b").unwrap());
        records.put("g/doc1/alice", "w").unwrap();
        assert_eq!(records.list("u/").unwrap(), vec!["u/alice", "u/bob"]);
        assert!(records.delete("u/bob").unwrap());
        assert!(!records.delete("u/bob").unwrap());
        assert_eq!(records.list("u/").unwrap(), vec!["u/alice"]);
    }

    #[test]
    fn mem_records_semantics() {
        check_store(MemRecords::new());
    }

    #[test]
    fn service_records_semantics() {
        check_store(ServiceRecords::new(DocsServer::new()));
    }

    #[test]
    fn service_records_by_reference() {
        let server = DocsServer::new();
        check_store(ServiceRecords::new(&server));
    }
}
