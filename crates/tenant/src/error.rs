//! Error type for the multi-tenant directory.

use std::error::Error;
use std::fmt;

use pe_crypto::CryptoError;

/// Errors from tenant-directory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TenantError {
    /// Registration with a user name that is already taken.
    UserExists(String),
    /// An operation referenced a user the directory does not know.
    NoSuchUser(String),
    /// Login (or rewrap) with a passphrase whose verifier did not match.
    BadPassphrase,
    /// A user or document name with characters the record keyspace does
    /// not allow.
    BadName(String),
    /// Registering a document id that already has a directory record.
    DocumentExists(String),
    /// An operation referenced a document the directory does not know.
    NoSuchDocument(String),
    /// The acting user holds no grant for the document: unwrap denied.
    NotAuthorized {
        /// Document id.
        doc: String,
        /// Acting user.
        user: String,
    },
    /// The operation (grant/revoke) is restricted to the document owner.
    NotOwner {
        /// Document id.
        doc: String,
        /// Acting user.
        user: String,
    },
    /// An invite code that does not match a pending invite for this user
    /// and document — wrong code, already redeemed, or revoked.
    BadInvite,
    /// A passphrase rotation was interrupted mid-way under *different*
    /// new credentials than the ones now requested; it must be finished
    /// (rerun `rewrap` with the same new passphrase as the interrupted
    /// attempt) before a fresh rotation can start.
    RotationPending(String),
    /// A stored record failed to parse or failed its integrity check.
    Corrupt(String),
    /// The record store (local or over the wire) failed.
    Store {
        /// HTTP-style status code (0 for transport failures).
        status: u16,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::UserExists(user) => write!(f, "user {user} already exists"),
            TenantError::NoSuchUser(user) => write!(f, "no such user {user}"),
            TenantError::BadPassphrase => write!(f, "bad passphrase"),
            TenantError::BadName(name) => write!(
                f,
                "bad name {name:?}: use 1-64 characters from [A-Za-z0-9._-]"
            ),
            TenantError::DocumentExists(doc) => {
                write!(f, "document {doc} already registered")
            }
            TenantError::NoSuchDocument(doc) => write!(f, "no such document {doc}"),
            TenantError::NotAuthorized { doc, user } => {
                write!(f, "user {user} holds no key for document {doc}")
            }
            TenantError::NotOwner { doc, user } => {
                write!(f, "user {user} does not own document {doc}")
            }
            TenantError::BadInvite => write!(f, "invalid or expired invite"),
            TenantError::RotationPending(user) => write!(
                f,
                "an interrupted passphrase rotation is pending for {user}; \
                 rerun the rotation with the same new passphrase to finish it"
            ),
            TenantError::Corrupt(detail) => write!(f, "corrupt directory record: {detail}"),
            TenantError::Store { status, message } => {
                write!(f, "record store failure (status {status}): {message}")
            }
        }
    }
}

impl Error for TenantError {}

impl From<CryptoError> for TenantError {
    fn from(e: CryptoError) -> TenantError {
        TenantError::Corrupt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(TenantError::UserExists("a".into()).to_string(), "user a already exists");
        assert_eq!(TenantError::BadPassphrase.to_string(), "bad passphrase");
        assert!(TenantError::NotAuthorized { doc: "doc1".into(), user: "eve".into() }
            .to_string()
            .contains("no key"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<TenantError>();
    }
}
