//! The metric primitives: counters, log₂ histograms, and span timers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};

/// Number of histogram buckets: bucket 0 holds the value `0` and bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`, so every `u64` lands in an
/// index in `0..=64`.
pub const BUCKETS: usize = 65;

/// A monotonically increasing counter.
///
/// Cheap to clone; clones share the same atomic cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub(crate) fn new() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &str) -> CounterSnapshot {
        CounterSnapshot { name: name.to_string(), value: self.get() }
    }
}

#[derive(Debug)]
struct GaugeCells {
    value: AtomicU64,
    peak: AtomicU64,
}

/// A point-in-time level (current connections, queue depth): goes up
/// *and* down, and remembers the highest value it ever held.
///
/// Cheap to clone; clones share the same atomic cells. `dec` saturates
/// at zero rather than wrapping, so a stray extra decrement cannot turn
/// a small level into a huge one.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeCells>);

impl Gauge {
    pub(crate) fn new() -> Gauge {
        Gauge(Arc::new(GaugeCells { value: AtomicU64::new(0), peak: AtomicU64::new(0) }))
    }

    /// Raises the level by one and updates the peak.
    pub fn inc(&self) {
        let now = self.0.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.0.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Lowers the level by one (saturating at zero).
    pub fn dec(&self) {
        let _ = self.0.value.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Sets the level outright and updates the peak.
    pub fn set(&self, value: u64) {
        self.0.value.store(value, Ordering::Relaxed);
        self.0.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest level seen since creation (or the last reset).
    pub fn peak(&self) -> u64 {
        self.0.peak.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.0.value.store(0, Ordering::Relaxed);
        self.0.peak.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &str) -> GaugeSnapshot {
        GaugeSnapshot { name: name.to_string(), value: self.get(), peak: self.peak() }
    }
}

#[derive(Debug)]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A fixed-bucket log₂ histogram with running count, sum, min, and max.
///
/// Values are plain `u64`s; by convention latencies are recorded in
/// nanoseconds (metric names ending `_ns`). Cheap to clone; clones share
/// the same cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    pub(crate) fn new() -> Histogram {
        Histogram(Arc::new(HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let cells = &self.0;
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        cells.min.fetch_min(value, Ordering::Relaxed);
        cells.max.fetch_max(value, Ordering::Relaxed);
        cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a timer that records elapsed nanoseconds here when dropped.
    pub fn span(&self) -> Span {
        Span { histogram: self.clone(), start: Instant::now() }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        let cells = &self.0;
        cells.count.store(0, Ordering::Relaxed);
        cells.sum.store(0, Ordering::Relaxed);
        cells.min.store(u64::MAX, Ordering::Relaxed);
        cells.max.store(0, Ordering::Relaxed);
        for bucket in &cells.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let cells = &self.0;
        let count = cells.count.load(Ordering::Relaxed);
        let min = cells.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: cells.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: cells.max.load(Ordering::Relaxed),
            buckets: cells
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, bucket)| {
                    let n = bucket.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u8, n))
                })
                .collect(),
        }
    }
}

/// A timing guard: records elapsed wall-clock nanoseconds into its
/// histogram when dropped (including on early return and unwind).
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let counter = Counter::new();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 42);
        counter.reset();
        assert_eq!(counter.get(), 0);
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let gauge = Gauge::new();
        gauge.inc();
        gauge.inc();
        gauge.inc();
        gauge.dec();
        assert_eq!(gauge.get(), 2);
        assert_eq!(gauge.peak(), 3);
        gauge.set(10);
        assert_eq!((gauge.get(), gauge.peak()), (10, 10));
        gauge.reset();
        assert_eq!((gauge.get(), gauge.peak()), (0, 0));
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        let gauge = Gauge::new();
        gauge.dec();
        assert_eq!(gauge.get(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_stats_and_buckets() {
        let hist = Histogram::new();
        for value in [0, 1, 3, 1000, 1000] {
            hist.record(value);
        }
        let snap = hist.snapshot("h");
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 2004);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1000);
        // value 0 → bucket 0; 1 → bucket 1; 3 → bucket 2; 1000 ×2 → bucket 10.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 1), (10, 2)]);
    }

    #[test]
    fn empty_histogram_has_zero_min() {
        let snap = Histogram::new().snapshot("empty");
        assert_eq!((snap.count, snap.min, snap.max), (0, 0, 0));
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn span_records_on_drop() {
        let hist = Histogram::new();
        {
            let _span = hist.span();
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = hist.snapshot("timed");
        assert_eq!(snap.count, 1);
        assert!(snap.min >= 1_000_000, "slept ≥1ms, recorded {}ns", snap.min);
    }
}
