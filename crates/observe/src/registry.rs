//! The metric registry: named handles and snapshotting.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::Snapshot;

/// A collection of named metrics.
///
/// Handles returned by [`counter`](Registry::counter) and
/// [`histogram`](Registry::histogram) are cheap clones sharing the
/// registered atomics, so call sites may cache them (see
/// [`static_counter!`](crate::static_counter)); the registry lock is only
/// taken on lookup and snapshot, never on record.
///
/// Names are namespaced by kind: a counter and a histogram may share a
/// name without colliding (they never do in practice — see the naming
/// convention in the [crate docs](crate)).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        counters.entry(name.to_string()).or_insert_with(Counter::new).clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        gauges.entry(name.to_string()).or_insert_with(Gauge::new).clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        histograms.entry(name.to_string()).or_insert_with(Histogram::new).clone()
    }

    /// Captures the current value of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        let gauges = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        let histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Snapshot {
            counters: counters.iter().map(|(name, c)| c.snapshot(name)).collect(),
            gauges: gauges.iter().map(|(name, g)| g.snapshot(name)).collect(),
            histograms: histograms.iter().map(|(name, h)| h.snapshot(name)).collect(),
        }
    }

    /// Zeroes every metric **in place**: existing handles (including ones
    /// cached in `static_counter!` sites) keep recording into the same
    /// cells afterwards.
    pub fn reset(&self) {
        for counter in self.counters.lock().unwrap_or_else(|e| e.into_inner()).values() {
            counter.reset();
        }
        for gauge in self.gauges.lock().unwrap_or_else(|e| e.into_inner()).values() {
            gauge.reset();
        }
        for histogram in self.histograms.lock().unwrap_or_else(|e| e.into_inner()).values() {
            histogram.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_the_same_metric() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("x").get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let registry = Registry::new();
        registry.counter("zeta").inc();
        registry.counter("alpha").add(5);
        registry.histogram("mid").record(9);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.counter("alpha"), Some(5));
        assert_eq!(snap.histogram("mid").unwrap().count, 1);
    }

    #[test]
    fn gauge_handles_alias_and_reset() {
        let registry = Registry::new();
        let a = registry.gauge("depth");
        a.inc();
        registry.gauge("depth").inc();
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("depth").map(|g| (g.value, g.peak)), Some((2, 2)));
        registry.reset();
        a.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("depth").map(|g| (g.value, g.peak)), Some((1, 1)));
    }

    #[test]
    fn reset_preserves_existing_handles() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        let histogram = registry.histogram("h");
        counter.add(7);
        histogram.record(3);
        registry.reset();
        assert_eq!(registry.snapshot().counter("c"), Some(0));
        // The pre-reset handles still feed the registered metric.
        counter.inc();
        histogram.record(1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), Some(1));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }
}
