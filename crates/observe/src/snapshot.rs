//! Immutable snapshots and their two renderings (text, JSON lines).

use std::fmt::Write as _;

/// A counter's captured value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at capture time.
    pub value: u64,
}

/// A gauge's captured state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Level at capture time.
    pub value: u64,
    /// Highest level seen since creation (or the last reset).
    pub peak: u64,
}

/// A histogram's captured state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(index, count)`, ascending by index. Bucket 0
    /// holds the value 0; bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) from the log₂
    /// buckets: the bucket holding the target rank contributes its
    /// midpoint, clamped to the observed `[min, max]`. Exact for `q = 0`
    /// and `q = 1`; within a factor of 2 elsewhere — good enough for the
    /// p50/p99 latency reporting the benchmark harnesses do.
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly; don't approximate them.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for &(index, count) in &self.buckets {
            seen += count;
            if rank < seen {
                let mid = match index {
                    0 => 0, // bucket 0 holds only the value 0
                    1 => 1, // bucket 1 holds only the value 1
                    // Bucket i holds [2^(i-1), 2^i); midpoint 3·2^(i-2).
                    i => 3u64 << (i - 2),
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// The captured state of a whole [`Registry`](crate::Registry): plain
/// data, comparable with `==`, and renderable as text or JSON lines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sum of all counters whose name starts with `prefix` (for
    /// aggregating per-endpoint or per-status families).
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|c| c.name.starts_with(prefix)).map(|c| c.value).sum()
    }

    /// Renders a human-readable report with histogram bars.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== observability snapshot ==\n");
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.iter().map(|c| c.name.len()).max().unwrap_or(0);
            for c in &self.counters {
                let _ = writeln!(out, "  {:width$}  {}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.iter().map(|g| g.name.len()).max().unwrap_or(0);
            for g in &self.gauges {
                let _ = writeln!(out, "  {:width$}  {} (peak {})", g.name, g.value, g.peak);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                // A zero-count histogram has no min/mean/max to speak of;
                // printing the field defaults (all zero) would read as a
                // real sample at value 0.
                if h.count == 0 {
                    let _ = writeln!(out, "  {}  count=0 (no samples)", h.name);
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {}  count={} sum={} min={} mean={:.1} max={}",
                    h.name,
                    h.count,
                    h.sum,
                    h.min,
                    h.mean(),
                    h.max
                );
                let peak = h.buckets.iter().map(|&(_, n)| n).max().unwrap_or(0);
                for &(index, n) in &h.buckets {
                    let bar_len = if peak == 0 { 0 } else { (n * 32).div_ceil(peak) as usize };
                    let _ = writeln!(
                        out,
                        "    {:>24} {:7} {}",
                        bucket_label(index),
                        n,
                        "#".repeat(bar_len)
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as line-oriented JSON: one object per metric,
    /// one final `snapshot_end` object with totals, each on its own line.
    ///
    /// The format round-trips through [`Snapshot::parse_jsonl`]:
    ///
    /// ```
    /// use pe_observe::Registry;
    /// let registry = Registry::new();
    /// registry.counter("a").add(2);
    /// registry.histogram("b_ns").record(300);
    /// let snapshot = registry.snapshot();
    /// let reparsed = pe_observe::Snapshot::parse_jsonl(&snapshot.render_jsonl()).unwrap();
    /// assert_eq!(reparsed, snapshot);
    /// ```
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
                json_string(&c.name),
                c.value
            );
        }
        for g in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{},\"peak\":{}}}",
                json_string(&g.name),
                g.value,
                g.peak
            );
        }
        for h in &self.histograms {
            let buckets: Vec<String> =
                h.buckets.iter().map(|&(i, n)| format!("[{i},{n}]")).collect();
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                json_string(&h.name),
                h.count,
                h.sum,
                h.min,
                h.max,
                buckets.join(",")
            );
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"snapshot_end\",\"counters\":{},\"gauges\":{},\"histograms\":{}}}",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len()
        );
        out
    }

    /// Parses the output of [`Snapshot::render_jsonl`] back into a
    /// snapshot. Unknown object types are ignored so the format can grow.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_jsonl(input: &str) -> Result<Snapshot, String> {
        let mut snapshot = Snapshot::default();
        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let object = value.as_object().ok_or_else(|| {
                format!("line {}: expected a JSON object", lineno + 1)
            })?;
            let kind = object.get("type").and_then(Json::as_str).unwrap_or("");
            let field = |key: &str| -> Result<u64, String> {
                object.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    format!("line {}: missing numeric field {key:?}", lineno + 1)
                })
            };
            let name = || -> Result<String, String> {
                object.get("name").and_then(Json::as_str).map(str::to_string).ok_or_else(
                    || format!("line {}: missing string field \"name\"", lineno + 1),
                )
            };
            match kind {
                "counter" => snapshot
                    .counters
                    .push(CounterSnapshot { name: name()?, value: field("value")? }),
                "gauge" => snapshot.gauges.push(GaugeSnapshot {
                    name: name()?,
                    value: field("value")?,
                    peak: field("peak")?,
                }),
                "histogram" => {
                    let buckets = object
                        .get("buckets")
                        .and_then(Json::as_array)
                        .ok_or_else(|| format!("line {}: missing \"buckets\"", lineno + 1))?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_array().filter(|p| p.len() == 2);
                            let index = pair.and_then(|p| p[0].as_u64());
                            let count = pair.and_then(|p| p[1].as_u64());
                            match (index, count) {
                                (Some(i), Some(n)) if i < crate::BUCKETS as u64 => {
                                    Ok((i as u8, n))
                                }
                                _ => Err(format!("line {}: malformed bucket", lineno + 1)),
                            }
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    snapshot.histograms.push(HistogramSnapshot {
                        name: name()?,
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    });
                }
                _ => {} // snapshot_end and future types
            }
        }
        Ok(snapshot)
    }
}

/// Human label for a bucket: the value range it covers.
fn bucket_label(index: u8) -> String {
    match index {
        0 => "0".to_string(),
        1 => "1".to_string(),
        i => {
            let lo = 1u64 << (i - 1);
            let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
            format!("{lo}..{hi}")
        }
    }
}

/// Serializes a metric name as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

use json::Json;

/// A minimal JSON reader — just enough for the metric-line schema (and
/// the usual recursive value grammar, so the format can evolve).
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        /// Numbers are kept as f64; the schema only uses u64-safe values.
        Number(f64),
        String(String),
        Array(Vec<Json>),
        Object(BTreeMap<String, Json>),
    }

    impl Json {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Json]> {
            match self {
                Json::Array(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
            match self {
                Json::Object(map) => Some(map),
                _ => None,
            }
        }
    }

    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing bytes at offset {}", parser.pos));
        }
        Ok(value)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, byte: u8) -> Result<(), String> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at offset {}", byte as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Json, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::String(self.string()?)),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'n') => self.literal("null", Json::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected input at offset {}", self.pos)),
            }
        }

        fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                Ok(value)
            } else {
                Err(format!("bad literal at offset {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("sliced at byte boundaries of ASCII content");
            text.parse::<f64>()
                .map(Json::Number)
                .map_err(|_| format!("bad number at offset {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| {
                                        format!("bad \\u escape at offset {}", self.pos)
                                    })?;
                                // Surrogate pairs are not needed for metric
                                // names; reject rather than mis-decode.
                                let c = char::from_u32(hex).ok_or_else(|| {
                                    format!("unsupported \\u escape at offset {}", self.pos)
                                })?;
                                out.push(c);
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at offset {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Copy one UTF-8 code point verbatim.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        let c = rest.chars().next().expect("non-empty by peek");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                map.insert(key, value);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let registry = Registry::new();
        registry.counter("cloud.requests").add(17);
        registry.counter("core.blocks_sealed.rpc").add(1234);
        let gauge = registry.gauge("net.server.conns_open");
        gauge.set(9);
        gauge.set(3);
        let h = registry.histogram("mediator.encrypt_ns");
        for v in [0, 5, 900, 1_000_000, u64::MAX] {
            h.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn text_rendering_mentions_every_metric() {
        let text = sample().render_text();
        assert!(text.contains("cloud.requests"));
        assert!(text.contains("1234"));
        assert!(text.contains("net.server.conns_open"));
        assert!(text.contains("3 (peak 9)"), "gauge line shows level and peak: {text}");
        assert!(text.contains("mediator.encrypt_ns"));
        assert!(text.contains("count=5"));
        assert!(text.contains('#'), "histogram bars are rendered");
    }

    #[test]
    fn empty_snapshot_renders() {
        let empty = Snapshot::default();
        assert!(empty.render_text().contains("no metrics"));
        assert_eq!(Snapshot::parse_jsonl(&empty.render_jsonl()).unwrap(), empty);
    }

    #[test]
    fn zero_count_histogram_renders_without_fake_stats() {
        let registry = Registry::new();
        registry.histogram("store.append_ns"); // registered, never recorded
        let text = registry.snapshot().render_text();
        assert!(text.contains("store.append_ns  count=0 (no samples)"), "{text}");
        assert!(!text.contains("mean"), "no made-up statistics line: {text}");
    }

    #[test]
    fn jsonl_round_trips() {
        let snapshot = sample();
        let jsonl = snapshot.render_jsonl();
        assert!(jsonl.lines().count() >= 4, "one line per metric plus trailer");
        let reparsed = Snapshot::parse_jsonl(&jsonl).unwrap();
        assert_eq!(reparsed, snapshot);
    }

    #[test]
    fn names_with_escapes_round_trip() {
        let registry = Registry::new();
        registry.counter("odd \"name\"\\with\nescapes\t∆").inc();
        let snapshot = registry.snapshot();
        let reparsed = Snapshot::parse_jsonl(&snapshot.render_jsonl()).unwrap();
        assert_eq!(reparsed, snapshot);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Snapshot::parse_jsonl("{\"type\":\"counter\"").is_err());
        assert!(Snapshot::parse_jsonl("not json at all").is_err());
        assert!(Snapshot::parse_jsonl("{\"type\":\"counter\",\"name\":\"x\"}").is_err());
        // Unknown types are tolerated (forward compatibility).
        assert_eq!(
            Snapshot::parse_jsonl("{\"type\":\"comment\",\"text\":\"hi\"}").unwrap(),
            Snapshot::default()
        );
    }

    #[test]
    fn counter_family_sums_prefix() {
        let registry = Registry::new();
        registry.counter("cloud.req./Doc.2xx").add(3);
        registry.counter("cloud.req./Doc.5xx").add(2);
        registry.counter("client.other").add(9);
        assert_eq!(registry.snapshot().counter_family("cloud.req."), 5);
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let registry = Registry::new();
        let hist = registry.histogram("q.test");
        // 95 small values and a few huge outliers.
        for _ in 0..95 {
            hist.record(100);
        }
        for _ in 0..5 {
            hist.record(1_000_000);
        }
        let snapshot = registry.snapshot();
        let hist = snapshot.histogram("q.test").unwrap();
        assert_eq!(hist.quantile(0.0), hist.min);
        assert_eq!(hist.quantile(1.0), hist.max);
        let p50 = hist.quantile(0.5);
        assert!((64..=256).contains(&p50), "p50 in the 100s bucket, got {p50}");
        let p99 = hist.quantile(0.99);
        assert!(p99 >= 500_000, "p99 must see the outlier, got {p99}");
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let registry = Registry::new();
        registry.histogram("q.empty");
        assert_eq!(registry.snapshot().histogram("q.empty").unwrap().quantile(0.5), 0);
    }

    #[test]
    fn exact_quantiles_for_single_valued_histograms() {
        let registry = Registry::new();
        let hist = registry.histogram("q.single");
        for _ in 0..10 {
            hist.record(1);
        }
        let snapshot = registry.snapshot();
        let hist = snapshot.histogram("q.single").unwrap();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(hist.quantile(q), 1);
        }
    }
}
