//! Zero-dependency observability for the private-editing workspace.
//!
//! Every layer of the system — the incremental ciphers in `pe-core`, the
//! privacy mediator in `pe-extension`, the simulated cloud in `pe-cloud`,
//! and the editing client in `pe-client` — records what it does through
//! this crate: how many blocks were sealed, how long a decrypt took, how
//! often the flaky transport injected a fault. Metrics aggregate in a
//! [`Registry`] (usually the process-wide [`global()`] one) and are read
//! out as an immutable [`Snapshot`] that renders as human-readable text
//! or as line-oriented JSON.
//!
//! The crate uses only `std`: counters and histogram buckets are
//! [`AtomicU64`](std::sync::atomic::AtomicU64)s, so recording on the hot
//! path is a single relaxed atomic increment and never blocks.
//!
//! # Metric kinds
//!
//! * [`Counter`] — a monotonically increasing `u64`.
//! * [`Histogram`] — a fixed-bucket log₂ histogram with count/sum/min/max,
//!   suitable for latencies (nanoseconds), sizes, and ratios alike.
//! * [`Span`] — a guard started with [`Histogram::span`] that records the
//!   elapsed wall-clock nanoseconds into its histogram when dropped.
//!
//! # Example
//!
//! ```
//! use pe_observe::Registry;
//!
//! let registry = Registry::new();
//! registry.counter("demo.requests").inc();
//! registry.histogram("demo.latency_ns").record(1_500);
//! {
//!     let _timed = registry.histogram("demo.work_ns").span();
//!     // ... timed work ...
//! }
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("demo.requests"), Some(1));
//! // The JSON renderer round-trips losslessly.
//! let reparsed = pe_observe::Snapshot::parse_jsonl(&snapshot.render_jsonl()).unwrap();
//! assert_eq!(reparsed, snapshot);
//! ```
//!
//! # Naming convention
//!
//! Metric names are dotted paths, lowercase, with the owning layer first
//! (`core.`, `mediator.`, `cloud.`, `client.`) and a unit suffix where
//! one applies (`_ns` for nanoseconds, `_pct` for percentages).
//! EXPERIMENTS.md documents every name the workspace emits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, Span, BUCKETS};
pub use registry::Registry;
pub use snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};

use std::sync::OnceLock;

/// The process-wide registry all instrumented crates record into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Fetches (creating on first use) a counter in the [`global()`] registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Fetches (creating on first use) a gauge in the [`global()`] registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Fetches (creating on first use) a histogram in the [`global()`] registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// A counter in the global registry, resolved once per call site.
///
/// Expands to an expression of type `&'static Counter`; the registry
/// lookup happens only on the first execution, so hot paths pay just one
/// relaxed atomic increment. [`Registry::reset`] zeroes values in place,
/// so cached handles stay valid across resets.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::counter($name))
    }};
}

/// A gauge in the global registry, resolved once per call site.
///
/// See [`static_counter!`] for the caching semantics.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::gauge($name))
    }};
}

/// A histogram in the global registry, resolved once per call site.
///
/// See [`static_counter!`] for the caching semantics.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_handles_share_state() {
        counter("lib.test.shared").add(3);
        counter("lib.test.shared").inc();
        assert_eq!(counter("lib.test.shared").get(), 4);
    }

    #[test]
    fn static_macros_share_underlying_state() {
        // Distinct call sites cache distinct handles, but all handles on
        // one name alias the same atomic.
        static_counter!("lib.test.static").inc();
        static_counter!("lib.test.static").inc();
        assert!(counter("lib.test.static").get() >= 2);
        static_histogram!("lib.test.static_hist").record(7);
        assert!(global().snapshot().histogram("lib.test.static_hist").is_some());
        static_gauge!("lib.test.static_gauge").inc();
        static_gauge!("lib.test.static_gauge").inc();
        assert!(gauge("lib.test.static_gauge").peak() >= 2);
    }
}
