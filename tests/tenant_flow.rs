//! Full-stack multi-tenant flow over a real `pe-net` socket: register
//! two users, share a document by wrapped key, revoke, and prove the
//! provider never sees plaintext and never re-encrypts a body on a
//! membership change.

use std::sync::Arc;

use private_editing::prelude::*;

fn tenant_config() -> MediatorConfig {
    let mut config = MediatorConfig::recb(8);
    // Low stretching so the test measures the flow, not PBKDF2.
    config.kdf_iterations = 64;
    config
}

#[test]
fn tenant_share_and_revoke_over_a_real_socket() {
    let backend = Arc::new(DocsServer::new());
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&backend) as Arc<dyn Service>,
        Default::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Alice registers, creates a document under a wrapped per-document
    // key, and writes through the mediator — over the live socket.
    let mut alice =
        DocsMediator::with_rng(HttpClient::new(addr), tenant_config(), CtrDrbg::from_seed(0xa11));
    alice.tenant_register("alice", "alice-pass").unwrap();
    let doc_id = alice.tenant_create_document().unwrap();
    let secret = "the merger closes friday at nine";
    alice.save_full(&doc_id, secret).unwrap();

    // The provider holds ciphertext only (and the wrapped-key records,
    // which are useless without a user passphrase).
    let stored = backend.stored_content(&doc_id).unwrap();
    assert!(!stored.contains("merger"), "provider saw plaintext");
    assert!(!stored.contains("friday"), "provider saw plaintext");

    // Bob registers but holds no grant: the directory refuses the key
    // and the document stays closed.
    let mut bob =
        DocsMediator::with_rng(HttpClient::new(addr), tenant_config(), CtrDrbg::from_seed(0xb0b));
    bob.tenant_register("bob", "bob-pass").unwrap();
    assert!(bob.open_document(&doc_id).is_err(), "unauthorized read must fail closed");

    // Alice grants bob: one invite code out of band, zero body bytes
    // touched on the server.
    let before = backend.stored_content(&doc_id).unwrap();
    let code = alice.tenant_grant(&doc_id, "bob").unwrap();
    bob.tenant_accept(&doc_id, &code).unwrap();
    assert_eq!(backend.stored_content(&doc_id).unwrap(), before, "grant re-encrypted the body");
    assert_eq!(bob.open_document(&doc_id).unwrap(), secret);

    // Bob edits through his own mediator; alice reads the edit back.
    let mut delta = Delta::builder();
    delta.retain(secret.len()).insert(" (signed, bob)");
    bob.save_delta(&doc_id, &delta.build()).unwrap();
    assert_eq!(
        alice.open_document(&doc_id).unwrap(),
        "the merger closes friday at nine (signed, bob)"
    );

    // Revoke: deletes bob's wrapped-key record, body again untouched. A
    // fresh session for bob fails closed (his old mediator may still
    // hold the cached key — revocation is lazy, as the README documents).
    let before = backend.stored_content(&doc_id).unwrap();
    assert!(alice.tenant_revoke(&doc_id, "bob").unwrap());
    assert_eq!(backend.stored_content(&doc_id).unwrap(), before, "revoke re-encrypted the body");
    let mut bob_later =
        DocsMediator::with_rng(HttpClient::new(addr), tenant_config(), CtrDrbg::from_seed(0xb0c));
    bob_later.tenant_login("bob", "bob-pass").unwrap();
    assert!(bob_later.open_document(&doc_id).is_err(), "revoked read must fail closed");

    // Alice is untouched by the revocation.
    assert!(alice.open_document(&doc_id).unwrap().starts_with("the merger"));

    server.shutdown();
}

#[test]
fn passphrase_rotation_over_a_real_socket_rewraps_without_reencryption() {
    let backend = Arc::new(DocsServer::new());
    let server = HttpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&backend) as Arc<dyn Service>,
        Default::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut carol =
        DocsMediator::with_rng(HttpClient::new(addr), tenant_config(), CtrDrbg::from_seed(0xca1));
    carol.tenant_register("carol", "old-pass").unwrap();
    let doc_id = carol.tenant_create_document().unwrap();
    carol.save_full(&doc_id, "rotating soon").unwrap();

    let before = backend.stored_content(&doc_id).unwrap();
    let rewrapped = carol.tenant_passwd("carol", "old-pass", "new-pass").unwrap();
    assert_eq!(rewrapped, 1, "one wrapped key record to rewrap");
    assert_eq!(backend.stored_content(&doc_id).unwrap(), before, "rotation touched the body");

    // Old passphrase is dead; the new one opens the same ciphertext.
    let mut stale =
        DocsMediator::with_rng(HttpClient::new(addr), tenant_config(), CtrDrbg::from_seed(0xca2));
    assert!(stale.tenant_login("carol", "old-pass").is_err());
    let mut fresh =
        DocsMediator::with_rng(HttpClient::new(addr), tenant_config(), CtrDrbg::from_seed(0xca3));
    fresh.tenant_login("carol", "new-pass").unwrap();
    assert_eq!(fresh.open_document(&doc_id).unwrap(), "rotating soon");

    server.shutdown();
}
