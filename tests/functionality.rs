//! Asserts the §VII-A functionality matrix and the shape claims of the
//! paper's evaluation, using the benchmark harness as a library.

use pe_bench::ablation::{attack_matrix, coclo_crossover, AttackOutcome};
use pe_bench::blowup::fig7;
use pe_bench::matrix::{functionality_matrix, Status};

#[test]
fn functionality_matrix_reproduces_section_vii_a() {
    let rows = functionality_matrix(1);
    let status = |feature: &str| {
        rows.iter()
            .find(|r| r.feature == feature)
            .unwrap_or_else(|| panic!("missing row {feature}"))
            .with_extension
    };
    // The paper: these become unavailable…
    assert_eq!(status("translation"), Status::Broken);
    assert_eq!(status("spell checking"), Status::Broken);
    assert_eq!(status("drawing pictures"), Status::Blocked);
    assert_eq!(status("export (download as)"), Status::Broken);
    // …while core features keep working…
    assert_eq!(status("save / incremental save / load"), Status::Works);
    assert_eq!(status("formatting & word count (client-side)"), Status::Works);
    // …and collaboration is partially functional.
    assert_eq!(status("collaboration (passive readers)"), Status::Works);
    assert_eq!(status("collaboration (simultaneous editing)"), Status::Partial);
}

#[test]
fn figure7_shape_blowup_decreases_and_reduction_hits_80_percent() {
    let rows = fig7(5_000, 120, 2);
    assert_eq!(rows.len(), 8);
    for pair in rows.windows(2) {
        assert!(pair[1].blowup < pair[0].blowup);
    }
    // Paper: 0% → 82% reduction from b=1 to b=8.
    assert!(rows[7].reduction > 0.75 && rows[7].reduction < 0.95, "{:?}", rows[7]);
}

#[test]
fn incremental_beats_coclo_and_gap_grows_with_document_size() {
    let rows = coclo_crossover(&[500, 5_000, 20_000], 3);
    let advantage: Vec<f64> = rows
        .iter()
        .map(|r| r.coclo_bytes as f64 / r.incremental_bytes.max(1) as f64)
        .collect();
    assert!(advantage[0] > 1.0, "incremental must already win at 500 chars: {advantage:?}");
    assert!(advantage[2] > advantage[0] * 5.0, "advantage must grow with size: {advantage:?}");
}

#[test]
fn attack_matrix_shows_rpc_integrity_and_baseline_weakness() {
    let rows = attack_matrix(4);
    assert!(rows
        .iter()
        .filter(|r| r.scheme == "RPC")
        .all(|r| r.outcome == AttackOutcome::Detected));
    assert!(rows
        .iter()
        .any(|r| r.scheme == "XOR" && r.outcome == AttackOutcome::Accepted));
    assert!(rows
        .iter()
        .any(|r| r.scheme == "rECB" && r.outcome == AttackOutcome::Accepted));
    assert!(rows
        .iter()
        .any(|r| r.scheme == "rECB + Merkle" && r.outcome == AttackOutcome::Detected));
}
