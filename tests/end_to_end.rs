//! Full-stack integration tests spanning every crate: client → mediator →
//! simulated service, for all three target applications.

use std::sync::Arc;

use private_editing::client::workload::{MacroOp, WorkloadGen};
use private_editing::prelude::*;

#[test]
fn docs_session_over_every_scheme_configuration() {
    for (config, label) in [
        (MediatorConfig::recb(1), "recb b=1"),
        (MediatorConfig::recb(4), "recb b=4"),
        (MediatorConfig::recb(8), "recb b=8"),
        (MediatorConfig::rpc(1), "rpc b=1"),
        (MediatorConfig::rpc(7), "rpc b=7"),
    ] {
        let server = Arc::new(DocsServer::new());
        let mut mediator =
            DocsMediator::with_rng(Arc::clone(&server), config, CtrDrbg::from_seed(0xe2e));
        let doc_id = mediator.create_document("e2e-pw").unwrap();
        mediator.save_full(&doc_id, "the original document body").unwrap();
        let mut delta = Delta::builder();
        delta.retain(4).delete(8).insert("edited");
        mediator.save_delta(&doc_id, &delta.build()).unwrap();
        assert_eq!(mediator.plaintext(&doc_id), Some("the edited document body"), "{label}");
        // Fresh mediator, same password: decrypts the server copy.
        let mut reader =
            DocsMediator::with_rng(Arc::clone(&server), config, CtrDrbg::from_seed(1));
        reader.register_password(&doc_id, "e2e-pw");
        assert_eq!(reader.open_document(&doc_id).unwrap(), "the edited document body", "{label}");
    }
}

#[test]
fn long_realistic_session_with_full_client_stack() {
    let server = Arc::new(DocsServer::new());
    let mut mediator = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::rpc(7),
        CtrDrbg::from_seed(0xaaa),
    );
    let doc_id = mediator.create_document("long-session").unwrap();
    let mut workload = WorkloadGen::new(7);
    let draft = workload.document(2_000);
    mediator.save_full(&doc_id, &draft).unwrap();

    let mut client = DocsClient::open(PrivateChannel(mediator), &doc_id).unwrap();
    assert_eq!(client.content(), draft);
    for _ in 0..30 {
        for op in MacroOp::mix("inserts & deletes") {
            op.perform(client.editor(), &mut workload);
        }
        assert_eq!(client.save(), SaveOutcome::Saved);
    }
    let expected = client.content().to_string();
    // Server never saw any plaintext word from the workload vocabulary.
    let stored = server.stored_content(&doc_id).unwrap();
    assert!(!stored.contains("the "), "plaintext leaked to the provider");
    // A fresh reader recovers the exact final text with integrity.
    let mut reader = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::rpc(7),
        CtrDrbg::from_seed(0xbbb),
    );
    reader.register_password(&doc_id, "long-session");
    assert_eq!(reader.open_document(&doc_id).unwrap(), expected);
}

#[test]
fn bespin_and_buzzword_wrappers_end_to_end() {
    let bespin = Arc::new(BespinServer::new());
    let mut mediator = BespinMediator::with_rng(
        Arc::clone(&bespin),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(0xccc),
    );
    mediator.register_password("lib.rs", "code-pw");
    for revision in 0..5 {
        let content = format!("pub const REV: u32 = {revision};");
        mediator.put_file("lib.rs", &content).unwrap();
        assert_eq!(mediator.get_file("lib.rs").unwrap(), content);
        let raw = String::from_utf8(bespin.stored("lib.rs").unwrap()).unwrap();
        assert!(!raw.contains("REV"), "plaintext leaked to Bespin");
    }

    let buzzword = Arc::new(BuzzwordServer::new());
    let mut mediator = BuzzwordMediator::with_rng(
        Arc::clone(&buzzword),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(0xddd),
    );
    mediator.register_password("doc", "xml-pw");
    let xml = "<doc><h1><textRun>title secret</textRun></h1><textRun>body secret</textRun></doc>";
    mediator.post_document("doc", xml).unwrap();
    let stored = buzzword.stored("doc").unwrap();
    assert!(!stored.contains("secret"));
    assert!(stored.contains("<h1>"), "markup must survive");
    assert_eq!(mediator.get_document("doc").unwrap(), xml);
}

#[test]
fn paper_delta_examples_full_stack() {
    // §IV-A: "=2 -5" turns abcdefg into ab; "=2 -3 +uv =2 +w" into abuvfgw.
    let server = Arc::new(DocsServer::new());
    let mut mediator = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(0xeee),
    );
    let doc_id = mediator.create_document("paper-pw").unwrap();
    mediator.save_full(&doc_id, "abcdefg").unwrap();
    mediator.save_delta(&doc_id, &Delta::parse("=2\t-3\t+uv\t=2\t+w").unwrap()).unwrap();
    assert_eq!(mediator.plaintext(&doc_id), Some("abuvfgw"));
    mediator.save_delta(&doc_id, &Delta::parse("=2\t-5").unwrap()).unwrap();
    assert_eq!(mediator.plaintext(&doc_id), Some("ab"));
    let mut reader =
        DocsMediator::with_rng(Arc::clone(&server), MediatorConfig::recb(8), CtrDrbg::from_seed(2));
    reader.register_password(&doc_id, "paper-pw");
    assert_eq!(reader.open_document(&doc_id).unwrap(), "ab");
}

#[test]
fn document_size_limit_interacts_with_blowup() {
    // Google's 500 kB cap (§V-C): with 1-char blocks a ~20 kB plaintext
    // already exceeds the ciphertext limit; with 8-char blocks it fits.
    let server = Arc::new(DocsServer::new());
    let text = "x".repeat(20_000);
    let mut tiny_blocks = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(1),
        CtrDrbg::from_seed(3),
    );
    let doc_id = tiny_blocks.create_document("pw").unwrap();
    let mediated = tiny_blocks.save_full(&doc_id, &text).unwrap();
    assert_eq!(mediated.response.status, 413, "1-char blocks blow past the 500kB cap");

    let mut big_blocks = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(4),
    );
    let doc_id = big_blocks.create_document("pw").unwrap();
    let mediated = big_blocks.save_full(&doc_id, &text).unwrap();
    assert!(mediated.response.is_success(), "8-char blocks fit the same document");
}
