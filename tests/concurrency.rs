//! Concurrency tests: the simulated cloud services are shared,
//! thread-safe infrastructure; many users must be able to edit different
//! documents in parallel without interference.

use std::sync::Arc;

use private_editing::prelude::*;

#[test]
fn many_users_edit_distinct_documents_in_parallel() {
    let server = Arc::new(DocsServer::new());
    let users = 8;
    let edits_per_user = 20;
    crossbeam::thread::scope(|scope| {
        for user in 0..users {
            let server = Arc::clone(&server);
            scope.spawn(move |_| {
                let mut mediator = DocsMediator::with_rng(
                    Arc::clone(&server),
                    MediatorConfig::recb(8),
                    CtrDrbg::from_seed(user as u64),
                );
                let password = format!("pw-{user}");
                let doc_id = mediator.create_document(&password).unwrap();
                mediator.save_full(&doc_id, &format!("user {user} line 0. ")).unwrap();
                for edit in 1..edits_per_user {
                    let mut delta = Delta::builder();
                    let current = mediator.plaintext(&doc_id).unwrap().len();
                    delta.retain(current).insert(&format!("user {user} line {edit}. "));
                    mediator.save_delta(&doc_id, &delta.build()).unwrap();
                }
                // Verify through a fresh mediator (forces a server round-trip).
                let mut reader = DocsMediator::with_rng(
                    Arc::clone(&server),
                    MediatorConfig::recb(8),
                    CtrDrbg::from_seed(1000 + user as u64),
                );
                reader.register_password(&doc_id, &password);
                let text = reader.open_document(&doc_id).unwrap();
                for edit in 0..edits_per_user {
                    assert!(
                        text.contains(&format!("user {user} line {edit}. ")),
                        "user {user} missing line {edit}"
                    );
                }
                assert!(!text.contains(&format!("user {}", (user + 1) % users)));
            });
        }
    })
    .unwrap();
}

#[test]
fn concurrent_readers_share_one_document() {
    let server = Arc::new(DocsServer::new());
    let mut writer = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::rpc(7),
        CtrDrbg::from_seed(99),
    );
    let doc_id = writer.create_document("shared").unwrap();
    writer.save_full(&doc_id, "broadcast content for everyone").unwrap();
    crossbeam::thread::scope(|scope| {
        for reader_id in 0..6 {
            let server = Arc::clone(&server);
            let doc_id = doc_id.clone();
            scope.spawn(move |_| {
                let mut reader = DocsMediator::with_rng(
                    Arc::clone(&server),
                    MediatorConfig::rpc(7),
                    CtrDrbg::from_seed(500 + reader_id),
                );
                reader.register_password(&doc_id, "shared");
                for _ in 0..10 {
                    assert_eq!(
                        reader.open_document(&doc_id).unwrap(),
                        "broadcast content for everyone"
                    );
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn bespin_store_survives_parallel_writers() {
    let server = Arc::new(BespinServer::new());
    crossbeam::thread::scope(|scope| {
        for worker in 0..8u64 {
            let server = Arc::clone(&server);
            scope.spawn(move |_| {
                let mut mediator = BespinMediator::with_rng(
                    Arc::clone(&server),
                    MediatorConfig::recb(8),
                    CtrDrbg::from_seed(worker),
                );
                let path = format!("src/file{worker}.rs");
                mediator.register_password(&path, "repo");
                for revision in 0..15 {
                    let content = format!("// worker {worker} revision {revision}");
                    mediator.put_file(&path, &content).unwrap();
                    assert_eq!(mediator.get_file(&path).unwrap(), content);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(server.list().len(), 8);
}
