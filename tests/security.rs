//! Cross-crate security properties: the §VI analysis, verified end to end
//! through the full stack (taint checks, active attacks, covert channels).

use std::sync::Arc;

use private_editing::client::malicious;
use private_editing::client::workload::{MacroOp, WorkloadGen};
use private_editing::prelude::*;

/// A service wrapper that asserts no request ever contains any of the
/// given secret substrings — the server-side "taint check".
struct TaintCheck<S> {
    inner: S,
    secrets: Vec<String>,
}

impl<S: CloudService> CloudService for TaintCheck<S> {
    fn handle(&self, request: &Request) -> Response {
        let body = request.body_text().unwrap_or("");
        for secret in &self.secrets {
            assert!(
                !body.contains(secret.as_str()),
                "request body leaked secret {secret:?}"
            );
            for (k, v) in &request.query {
                assert!(!v.contains(secret.as_str()), "query {k} leaked {secret:?}");
            }
        }
        self.inner.handle(request)
    }

    fn name(&self) -> &'static str {
        "taint-check"
    }
}

#[test]
fn no_plaintext_fragment_ever_reaches_the_server() {
    // Workload words are 3+ chars; check 4+-char fragments of every word
    // the session could produce.
    let secrets: Vec<String> = ["quick", "brown", "private", "editing", "cloud", "secret",
        "document", "people", "think"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let server = Arc::new(DocsServer::new());
    let checked = TaintCheck { inner: Arc::clone(&server), secrets };
    let mut mediator =
        DocsMediator::with_rng(checked, MediatorConfig::recb(8), CtrDrbg::from_seed(0x5ec));
    let doc_id = mediator.create_document("taint-pw").unwrap();
    let mut workload = WorkloadGen::new(99);
    let draft = workload.document(1_500);
    mediator.save_full(&doc_id, &draft).unwrap();
    for _ in 0..40 {
        for op in MacroOp::mix("inserts & deletes") {
            // Drive the mediator directly with editor-produced deltas.
            let mut editor = Editor::new(mediator.plaintext(&doc_id).unwrap());
            op.perform(&mut editor, &mut workload);
            let delta = editor.take_pending();
            mediator.save_delta(&doc_id, &delta).unwrap();
        }
    }
}

#[test]
fn server_tampering_is_detected_by_rpc_but_not_recb() {
    for (config, expect_detection) in
        [(MediatorConfig::rpc(7), true), (MediatorConfig::recb(8), false)]
    {
        let server = Arc::new(DocsServer::new());
        let mut mediator =
            DocsMediator::with_rng(Arc::clone(&server), config, CtrDrbg::from_seed(0x7a3));
        let doc_id = mediator.create_document("pw").unwrap();
        mediator.save_full(&doc_id, "AAAAAAAABBBBBBBBCCCCCCCC").unwrap();
        // Malicious server swaps two ciphertext records.
        let stored = server.stored_content(&doc_id).unwrap();
        let records = private_editing::core::wire::split_records(&stored).unwrap();
        let preamble = private_editing::core::wire::PREAMBLE_CHARS;
        let mut shuffled: Vec<String> = records.iter().map(|r| r.to_string()).collect();
        shuffled.swap(1, 2);
        let tampered = format!("{}{}", &stored[..preamble], shuffled.concat());
        let body = private_editing::crypto::form::encode_pairs(&[(
            "docContents",
            tampered.as_str(),
        )]);
        server.handle(&Request::post("/Doc", &[("docID", &doc_id)], body));

        let mut reader =
            DocsMediator::with_rng(Arc::clone(&server), config, CtrDrbg::from_seed(0x7a4));
        reader.register_password(&doc_id, "pw");
        let result = reader.open_document(&doc_id);
        if expect_detection {
            assert!(result.is_err(), "RPC must detect the swap");
        } else {
            // rECB silently accepts the substitution — the documented
            // limitation of the privacy-only scheme.
            assert!(result.is_ok(), "rECB accepts (and mis-decrypts) the swap");
            assert_ne!(result.unwrap(), "AAAAAAAABBBBBBBBCCCCCCCC");
        }
    }
}

#[test]
fn ciphertexts_are_indistinguishable_by_repetition() {
    // The server must not learn that two regions of the document are
    // equal: encrypt a highly repetitive document and check no ciphertext
    // record repeats (each block carries fresh nonces).
    let server = Arc::new(DocsServer::new());
    let mut mediator = DocsMediator::with_rng(
        Arc::clone(&server),
        MediatorConfig::recb(8),
        CtrDrbg::from_seed(0x1d5),
    );
    let doc_id = mediator.create_document("pw").unwrap();
    mediator.save_full(&doc_id, &"same text. ".repeat(100)).unwrap();
    let stored = server.stored_content(&doc_id).unwrap();
    let records = private_editing::core::wire::split_records(&stored).unwrap();
    let unique: std::collections::HashSet<&&str> = records.iter().collect();
    assert_eq!(unique.len(), records.len(), "repeated plaintext must not repeat in ciphertext");
}

#[test]
fn same_document_encrypts_differently_every_session() {
    let make = |seed| {
        let server = Arc::new(DocsServer::new());
        let mut mediator = DocsMediator::with_rng(
            Arc::clone(&server),
            MediatorConfig::recb(8),
            CtrDrbg::from_seed(seed),
        );
        let doc_id = mediator.create_document("pw").unwrap();
        mediator.save_full(&doc_id, "identical plaintext").unwrap();
        server.stored_content(&doc_id).unwrap()
    };
    assert_ne!(make(1), make(2), "encryption must be randomized");
}

#[test]
fn covert_bits_survive_without_countermeasure_and_die_with_it() {
    let run = |canonicalize: bool| -> Vec<bool> {
        let server = Arc::new(DocsServer::new());
        let mut config = MediatorConfig::recb(8);
        config.canonicalize_deltas = canonicalize;
        let mut mediator =
            DocsMediator::with_rng(Arc::clone(&server), config, CtrDrbg::from_seed(0xc0c0));
        let doc_id = mediator.create_document("pw").unwrap();
        mediator.save_full(&doc_id, "host doc").unwrap();
        let mut observer = malicious::StorageObserver::new();
        observer.observe(&server.stored_content(&doc_id).unwrap());
        let mut received = Vec::new();
        for &bit in &[true, false, true, true, false] {
            let plaintext = mediator.plaintext(&doc_id).unwrap().to_string();
            let delta = malicious::self_replace_bit(&plaintext, bit);
            mediator.save_delta(&doc_id, &delta).unwrap();
            received.push(observer.observe(&server.stored_content(&doc_id).unwrap()).unwrap());
        }
        received
    };
    assert_eq!(run(false), vec![true, false, true, true, false], "channel open");
    assert_eq!(run(true), vec![false; 5], "channel closed by canonicalization");
}

#[test]
fn password_is_never_sent_anywhere() {
    struct PasswordSniffer<S> {
        inner: S,
    }
    impl<S: CloudService> CloudService for PasswordSniffer<S> {
        fn handle(&self, request: &Request) -> Response {
            let body = request.body_text().unwrap_or("");
            assert!(!body.contains("hunter2"), "password leaked in request body");
            self.inner.handle(request)
        }
        fn name(&self) -> &'static str {
            "sniffer"
        }
    }
    let server = Arc::new(DocsServer::new());
    let sniffer = PasswordSniffer { inner: Arc::clone(&server) };
    let mut mediator =
        DocsMediator::with_rng(sniffer, MediatorConfig::rpc(7), CtrDrbg::from_seed(0xbeef));
    let doc_id = mediator.create_document("hunter2").unwrap();
    mediator.save_full(&doc_id, "contents").unwrap();
    let mut delta = Delta::builder();
    delta.insert("more ");
    mediator.save_delta(&doc_id, &delta.build()).unwrap();
}

/// §VI-A "Information Leaks": the server sees *where* ciphertext changed.
/// With 1-character blocks the cdelta reveals the edit position to the
/// character; with 8-character blocks only to the block — quantified here
/// by inverting the observed cdelta offsets.
#[test]
fn position_leak_resolution_scales_with_block_size() {
    use private_editing::core::wire::{PREAMBLE_CHARS, RECORD_CHARS};
    use private_editing::core::{DeltaTransformer, DocumentKey, SchemeParams};

    let infer_positions = |b: usize| -> Vec<usize> {
        let key = DocumentKey::derive("leak", &[8u8; 16], 50);
        let text = vec![b'x'; 400];
        let mut observed = Vec::new();
        for edit_pos in [13usize, 97, 201, 333] {
            let doc = RecbDocument::create(
                &key,
                SchemeParams::recb(b),
                &text,
                CtrDrbg::from_seed(edit_pos as u64),
            )
            .unwrap();
            let mut transformer = DeltaTransformer::new(doc);
            let mut delta = Delta::builder();
            delta.retain(edit_pos).delete(1).insert("y");
            let cdelta = transformer.transform(&delta.build()).unwrap();
            // The adversary reads the leading retain of the cdelta: the
            // first touched record index, hence a plaintext position
            // estimate of record_index * b.
            let leading_retain = match cdelta.ops().first() {
                Some(DeltaOp::Retain(n)) => *n,
                _ => 0,
            };
            let record_index = leading_retain.saturating_sub(PREAMBLE_CHARS) / RECORD_CHARS;
            // Record 0 is the header; data block k starts at record k+1.
            observed.push(record_index.saturating_sub(1) * b);
        }
        observed
    };

    // b = 1: exact character positions recovered.
    assert_eq!(infer_positions(1), vec![13, 97, 201, 333]);
    // b = 8: only the containing block is visible (≤ 7 chars of error),
    // "the precise information about update positions is no longer
    // revealed" (§VI-A).
    let coarse = infer_positions(8);
    for (inferred, actual) in coarse.iter().zip([13usize, 97, 201, 333]) {
        let error = actual as isize - *inferred as isize;
        assert!((0..8).contains(&error), "inferred {inferred} for {actual}");
        assert_eq!(inferred % 8, 0, "resolution is block-granular");
    }
}
