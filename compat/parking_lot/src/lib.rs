//! Offline compatibility shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API the
//! workspace uses: infallible `lock()` / `read()` / `write()` that
//! recover from poisoning instead of returning a `Result`. Built because
//! the build environment cannot reach crates.io; semantics (minus
//! poisoning, which parking_lot also lacks) are identical for our use.

use std::sync::PoisonError;

/// Mutual exclusion primitive with `parking_lot`'s infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never fails: a
    /// poisoned lock is recovered, matching parking_lot's behaviour of
    /// not tracking poisoning at all.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s infallible accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
