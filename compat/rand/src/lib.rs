//! Offline compatibility shim for the `rand` crate.
//!
//! The build environment for this reproduction has no access to
//! crates.io, so the workspace vendors a tiny, dependency-free subset of
//! the `rand` 0.9 API surface it actually uses: [`rng()`] returning a
//! thread-local generator and the [`Rng`] trait with `fill_bytes` /
//! `next_u64`.
//!
//! The generator is a SplitMix64 stream seeded once per thread from
//! `/dev/urandom` (falling back to the system clock and an address-space
//! cookie when unavailable). It is *not* a cryptographic RNG; the
//! workspace only uses it as an entropy source for nonces in simulated
//! experiments, where the downstream construction (CTR-DRBG in
//! `pe-crypto`) provides the actual cryptographic guarantees.

use std::cell::Cell;

/// Minimal subset of `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }

    /// Returns a random value in `[0, bound)`.
    fn random_range_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for the simulation workloads this shim serves.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

thread_local! {
    static THREAD_STATE: Cell<u64> = Cell::new(seed_from_os());
}

fn seed_from_os() -> u64 {
    use std::io::Read;
    if let Ok(mut f) = std::fs::File::open("/dev/urandom") {
        let mut b = [0u8; 8];
        if f.read_exact(&mut b).is_ok() {
            return u64::from_le_bytes(b);
        }
    }
    fallback_seed()
}

fn fallback_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    let cookie = &nanos as *const u64 as u64;
    splitmix(nanos ^ cookie.rotate_left(32) ^ std::process::id() as u64)
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Handle to the thread-local generator, mirroring `rand::rngs::ThreadRng`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadRng;

impl Rng for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        THREAD_STATE.with(|state| {
            let s = state.get().wrapping_add(0x9e37_79b9_7f4a_7c15);
            state.set(s);
            splitmix(s)
        })
    }
}

/// Returns the thread-local generator (the `rand` 0.9 `rand::rng()` entry point).
pub fn rng() -> ThreadRng {
    ThreadRng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut buf = [0u8; 13];
        rng().fill_bytes(&mut buf);
        // 13 zero bytes from a random stream is astronomically unlikely.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn distinct_draws_differ() {
        let mut r = rng();
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
