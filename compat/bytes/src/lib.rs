//! Offline compatibility shim for the `bytes` crate.
//!
//! Provides an immutable, cheaply-cloneable byte buffer with the subset
//! of the `bytes::Bytes` API this workspace uses. Backed by an
//! `Arc<[u8]>`, so cloning a large ciphertext body is a reference-count
//! bump exactly as with the real crate. Built because the build
//! environment cannot reach crates.io.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Creates a buffer from a static slice (copies under the shim; the
    /// real crate borrows, but the observable API is identical).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Returns a sub-buffer covering `range` (copying; the workspace
    /// only slices small headers).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.0[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.0 == other.0
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.0 == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
    }

    #[test]
    fn clone_is_shallow() {
        let b = Bytes::from(vec![9; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(std::sync::Arc::ptr_eq(&b.0, &c.0));
    }
}
