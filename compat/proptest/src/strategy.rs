//! The [`Strategy`] trait and combinators (`prop_map`, boxing, unions,
//! integer ranges, tuples, `Just`).

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// Type of value produced.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates from an inner strategy produced per-case by `f`.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy so differently-typed strategies with a
    /// common value type can share a container (see [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn StrategyObj<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Weighted choice among strategies with a common value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// A uniform union.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// A union choosing each arm proportionally to its weight.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                rng.in_range_inclusive(self.start as u64, (self.end - 1) as u64) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.in_range_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i64 - *self.start() as i64) as u64;
                (*self.start() as i64 + rng.in_range_inclusive(0, span) as i64) as $t
            }
        }
    )*};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0usize..=4).generate(&mut rng);
            assert!(w <= 4);
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::deterministic("union");
        let s = Union::new(vec![
            (0u8..10).prop_map(|v| v as u32).boxed(),
            (100u32..110).boxed(),
        ]);
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
            low |= v < 10;
            high |= v >= 100;
        }
        assert!(low && high, "union should exercise both arms");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::deterministic("tuples");
        let (a, b, c) = (0u8..2, 10usize..12, Just('x')).generate(&mut rng);
        assert!(a < 2);
        assert!((10..12).contains(&b));
        assert_eq!(c, 'x');
    }
}
