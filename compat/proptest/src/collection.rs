//! Collection strategies: `vec(element, size_range)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len =
            rng.in_range_inclusive(self.size.lo as u64, self.size.hi_inclusive as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_bounds() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = vec(0u8..4, 1..9).generate(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 4));
        }
    }
}
