//! Fixed-size array strategies: `uniformN(element)`.
//!
//! The real crate provides `uniform1` … `uniform32`; this shim implements
//! the generic [`UniformArrayStrategy`] plus the sizes the workspace
//! uses.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy generating `[S::Value; N]` arrays, each element drawn
/// independently from the element strategy.
pub struct UniformArrayStrategy<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! uniform_fns {
    ($($name:ident => $n:literal),* $(,)?) => {
        $(
            /// Generates arrays of this size with elements from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*
    };
}

uniform_fns! {
    uniform4 => 4,
    uniform8 => 8,
    uniform16 => 16,
    uniform32 => 32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn arrays_have_fixed_size_and_vary() {
        let strategy = uniform16(any::<u8>());
        let mut rng = TestRng::deterministic("array");
        let a: [u8; 16] = strategy.generate(&mut rng);
        let b: [u8; 16] = strategy.generate(&mut rng);
        assert_ne!(a, b, "consecutive arrays should differ");
    }
}
