//! Glob-import surface mirroring `proptest::prelude`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Module alias so `prop::collection::vec(...)` etc. resolve.
pub use crate as prop;
