//! Test configuration, deterministic RNG, and case-level error type.

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

/// Resolves the effective case count, honouring `PROPTEST_CASES`.
pub fn resolved_cases(config: &Config) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Why a test case did not pass: an assertion failure or an
/// explicit `prop_assume!` rejection.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed with this message.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// An assertion failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A `prop_assume!` discard.
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }

    /// Whether this is a discard rather than a failure.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
        }
    }
}

/// Deterministic SplitMix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a stable FNV-1a hash of `name`, XORed with the
    /// optional `PROPTEST_SEED` environment override.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let env_seed: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        TestRng { state: h ^ env_seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a value uniform in `[lo, hi]` (inclusive).
    pub fn in_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.below(span + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_stable_per_name() {
        let a1 = TestRng::deterministic("mod::test_a").next_u64();
        let a2 = TestRng::deterministic("mod::test_a").next_u64();
        let b = TestRng::deterministic("mod::test_b").next_u64();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
