//! Offline compatibility shim for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a dependency-free subset of the proptest API its tests use:
//! the [`proptest!`] macro, `prop_assert*` / [`prop_assume!`] /
//! [`prop_oneof!`], [`arbitrary::any`], integer-range and tuple
//! strategies, [`collection::vec`], [`char::range`], and string
//! strategies from a small regex subset (`\PC{m,n}` and
//! `[class]{m,n}` repetitions).
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs (via the
//!   panic message of the failing assertion) but is not minimised.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   fully-qualified name, so runs are reproducible; set
//!   `PROPTEST_SEED` to explore a different universe and
//!   `PROPTEST_CASES` to override the case count globally.

pub mod arbitrary;
pub mod array;
pub mod char;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let cases = $crate::test_runner::resolved_cases(&config);
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategies = ($($strat,)+);
            for case in 0..cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(e) if e.is_rejection() => {}
                    ::std::result::Result::Err(e) => {
                        ::std::panic!("proptest case {}/{}: {}", case + 1, cases, e)
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pe_left, __pe_right) => {
                $crate::prop_assert!(
                    *__pe_left == *__pe_right,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __pe_left,
                    __pe_right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__pe_left, __pe_right) => {
                $crate::prop_assert!(
                    *__pe_left == *__pe_right,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __pe_left,
                    __pe_right,
                    ::std::format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current test case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__pe_left, __pe_right) => {
                $crate::prop_assert!(
                    *__pe_left != *__pe_right,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    __pe_left
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__pe_left, __pe_right) => {
                $crate::prop_assert!(
                    *__pe_left != *__pe_right,
                    "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                    __pe_left,
                    ::std::format!($($fmt)*)
                );
            }
        }
    };
}

/// Discards the current test case (counted as passed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Chooses uniformly (or by weight, with `w => strat` arms) among the
/// given strategies, which must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
