//! String strategies from a small regex subset.
//!
//! Real proptest accepts arbitrary regexes as string strategies. This
//! shim supports exactly the forms the workspace's tests use — a
//! concatenation of atoms, each optionally repeated:
//!
//! - `\PC` — any non-control character (drawn from a curated pool of
//!   ASCII and multi-byte characters so UTF-8 handling is exercised);
//! - `[class]` — a character class of literals and `a-b` ranges
//!   (negation is not supported);
//! - any literal character;
//! - `{m,n}` / `{m}` repetition suffixes (inclusive bounds).
//!
//! Unsupported syntax panics with a pointer to this module so the next
//! test author knows where to extend it.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Pool for `\PC` (any non-control char): ASCII-heavy with enough
/// multi-byte characters to exercise UTF-8 paths (2-, 3- and 4-byte
/// encodings). Every entry satisfies `!char::is_control`.
const NON_CONTROL_POOL: &[char] = &[
    ' ', '!', '"', '#', '$', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/', '0', '1',
    '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?', '@', 'A', 'B', 'C',
    'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S', 'T', 'U',
    'V', 'W', 'X', 'Y', 'Z', '[', '\\', ']', '^', '_', '`', 'a', 'b', 'c', 'd', 'e', 'f', 'g',
    'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y',
    'z', '{', '|', '}', '~', '£', 'é', 'ß', 'Ж', 'λ', 'Ω', '✓', '→', '中', '文', '日', '🙂',
    '🚀',
];

/// Draws one non-control character (used by `\PC` and `any::<char>()`).
pub(crate) fn non_control_char(rng: &mut TestRng) -> char {
    NON_CONTROL_POOL[rng.below(NON_CONTROL_POOL.len() as u64) as usize]
}

#[derive(Debug, Clone)]
enum Atom {
    NonControl,
    Class(Vec<(char, char)>),
    Literal(char),
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::NonControl => non_control_char(rng),
            Atom::Class(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32)
                            .expect("class ranges must not span the surrogate gap");
                    }
                    pick -= span;
                }
                unreachable!("class pick out of range")
            }
            Atom::Literal(c) => *c,
        }
    }
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A compiled pattern: a sequence of repeated atoms.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    pieces: Vec<Piece>,
}

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!(
        "string strategy {pattern:?}: {what} is not supported by the offline proptest shim \
         (see compat/proptest/src/string.rs)"
    )
}

fn parse(pattern: &str) -> StringStrategy {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Atom::NonControl
                } else if let Some(&escaped) = chars.get(i + 1) {
                    i += 2;
                    Atom::Literal(escaped)
                } else {
                    unsupported(pattern, "trailing backslash")
                }
            }
            '[' => {
                i += 1;
                if chars.get(i) == Some(&'^') {
                    unsupported(pattern, "negated character class")
                }
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let hi = chars[i + 2];
                        if hi < lo {
                            unsupported(pattern, "descending class range")
                        }
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                if i >= chars.len() {
                    unsupported(pattern, "unterminated character class")
                }
                i += 1; // consume ']'
                if ranges.is_empty() {
                    unsupported(pattern, "empty character class")
                }
                Atom::Class(ranges)
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '^' | '$' => {
                unsupported(pattern, "this metacharacter")
            }
            literal => {
                i += 1;
                Atom::Literal(literal)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| unsupported(pattern, "unterminated repetition"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            let mut parts = body.splitn(2, ',');
            let lo: usize = parts
                .next()
                .and_then(|p| p.trim().parse().ok())
                .unwrap_or_else(|| unsupported(pattern, "non-numeric repetition bound"));
            match parts.next() {
                None => (lo, lo),
                Some(hi) => {
                    let hi: usize = hi
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| unsupported(pattern, "open-ended repetition"));
                    if hi < lo {
                        unsupported(pattern, "descending repetition bounds")
                    }
                    (lo, hi)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    StringStrategy { pieces }
}

impl Strategy for StringStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = rng.in_range_inclusive(piece.min as u64, piece.max as u64) as usize;
            for _ in 0..count {
                out.push(piece.atom.generate(rng));
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        parse(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        parse(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, rng: &mut TestRng) -> String {
        parse(pattern).generate(rng)
    }

    #[test]
    fn class_repetition_respects_membership_and_length() {
        let mut rng = TestRng::deterministic("class");
        for _ in 0..200 {
            let s = gen("[A-Z2-7;b]{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_uppercase() || ('2'..='7').contains(&c) || c == ';' || c == 'b'));
        }
    }

    #[test]
    fn non_control_class_yields_no_control_chars() {
        let mut rng = TestRng::deterministic("pc");
        for _ in 0..100 {
            let s = gen("\\PC{0,120}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
            assert!(s.chars().count() <= 120);
        }
    }

    #[test]
    fn literals_and_fixed_counts() {
        let mut rng = TestRng::deterministic("lit");
        assert_eq!(gen("abc", &mut rng), "abc");
        assert_eq!(gen("x{3}", &mut rng), "xxx");
    }

    #[test]
    fn multibyte_pool_appears_eventually() {
        let mut rng = TestRng::deterministic("multibyte");
        let mut saw_multibyte = false;
        for _ in 0..200 {
            saw_multibyte |= gen("\\PC{0,50}", &mut rng).bytes().any(|b| b >= 0x80);
        }
        assert!(saw_multibyte, "pool should produce multi-byte UTF-8");
    }
}
