//! Character strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive character range strategy returned by [`range`].
#[derive(Debug, Clone, Copy)]
pub struct CharRange {
    lo: u32,
    hi: u32,
}

impl Strategy for CharRange {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        loop {
            let v = rng.in_range_inclusive(self.lo as u64, self.hi as u64) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
            // Only reachable when the range spans the surrogate gap.
        }
    }
}

/// Generates chars uniformly in `[lo, hi]` (inclusive), mirroring
/// `proptest::char::range`.
pub fn range(lo: char, hi: char) -> CharRange {
    assert!(lo <= hi, "char range start must not exceed end");
    CharRange { lo: lo as u32, hi: hi as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut rng = TestRng::deterministic("char-range");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let c = range('w', 'y').generate(&mut rng);
            assert!(('w'..='y').contains(&c));
            seen.insert(c);
        }
        assert_eq!(seen.len(), 3, "all of w, x, y should appear");
    }
}
