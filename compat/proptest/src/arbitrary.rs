//! `any::<T>()` and the [`Arbitrary`] trait for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::non_control_char(rng)
    }
}

impl<T: Arbitrary + std::fmt::Debug, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_and_scalars_generate() {
        let mut rng = TestRng::deterministic("arb");
        let key: [u8; 16] = Arbitrary::arbitrary(&mut rng);
        let other: [u8; 16] = Arbitrary::arbitrary(&mut rng);
        assert_ne!(key, other, "independent draws should differ");
        let c: char = Arbitrary::arbitrary(&mut rng);
        assert!(!c.is_control());
        let _ = any::<u64>().generate(&mut rng);
    }
}
