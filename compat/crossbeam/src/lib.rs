//! Offline compatibility shim for `crossbeam`.
//!
//! The workspace uses only `crossbeam::thread::scope`, which std has
//! provided natively since Rust 1.63 (`std::thread::scope`). This shim
//! adapts the std API to crossbeam's: the spawn closure receives the
//! scope handle as an argument, and `scope` returns a `Result` instead
//! of propagating child panics directly.

pub mod thread {
    /// Result type mirroring `crossbeam::thread`'s re-export.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle for spawning scoped threads, passed to spawn closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope handle so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which spawned threads are joined before the
    /// call returns. Mirrors `crossbeam::thread::scope`: returns
    /// `Err(payload)` if any child panicked (std's native scope would
    /// resume the panic; we catch it so callers' `.unwrap()` sees the
    /// crossbeam-shaped API).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_stack_data() {
        let counter = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
