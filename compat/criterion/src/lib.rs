//! Offline compatibility shim for `criterion`.
//!
//! Implements the subset of the Criterion API used by this workspace's
//! benches (`Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`/`criterion_main!`)
//! with a simple wall-clock harness: a short warm-up, then timed batches
//! until a sampling budget is exhausted, reporting the per-iteration
//! mean and min. No statistics engine, no plots — just stable,
//! dependency-free numbers so `cargo bench` keeps working without
//! crates.io access.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Anything acceptable as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkLabel {
    /// Renders the label text.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each batch, until the sampling
    /// budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates per-iteration cost to size batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.budget / 10 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters.max(1) as u32);
        let batch = match per_iter {
            Some(d) if d > Duration::ZERO => {
                (self.budget.as_nanos() / 20 / d.as_nanos().max(1)).clamp(1, 100_000) as u64
            }
            _ => 1_000,
        };
        let run_start = Instant::now();
        while run_start.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += t.elapsed();
            self.iters += batch;
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0, budget };
    f(&mut b);
    let mean = b.total.checked_div(b.iters.max(1) as u32).unwrap_or(Duration::ZERO);
    let mut line = format!("{label:<50} time: {:>12}", format_duration(mean));
    if let Some(tp) = throughput {
        let per_sec = |count: u64| {
            if mean.is_zero() {
                f64::INFINITY
            } else {
                count as f64 / mean.as_secs_f64()
            }
        };
        match tp {
            Throughput::Bytes(n) => {
                let _ = write!(line, "  thrpt: {:>10.3} MiB/s", per_sec(n) / (1024.0 * 1024.0));
            }
            Throughput::Elements(n) => {
                let _ = write!(line, "  thrpt: {:>10.3} Kelem/s", per_sec(n) / 1000.0);
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver, one per `criterion_group!`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // ~0.5 s per benchmark keeps full `cargo bench` runs tractable;
        // override with PE_BENCH_BUDGET_MS.
        let ms = std::env::var("PE_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(500);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Applies CLI configuration; a no-op in the shim (arguments such as
    /// `--bench` passed by `cargo bench` are accepted and ignored).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, label: impl IntoBenchmarkLabel, f: impl FnOnce(&mut Bencher)) -> &mut Criterion {
        run_one(&label.into_label(), None, self.budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, criterion: self }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to annotate subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Shrinks/extends the per-benchmark sampling budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget;
        self
    }

    /// Accepted and ignored (the shim does not resample).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, label: impl IntoBenchmarkLabel, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, label.into_label());
        run_one(&full, self.throughput, self.criterion.budget, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        label: impl IntoBenchmarkLabel,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, label.into_label());
        run_one(&full, self.throughput, self.criterion.budget, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        std::env::set_var("PE_BENCH_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_with_input_and_throughput() {
        std::env::set_var("PE_BENCH_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(128));
        group.bench_with_input(BenchmarkId::new("f", 128), &128usize, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
