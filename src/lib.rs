//! # private-editing
//!
//! A Rust reproduction of **"Private Editing Using Untrusted Cloud
//! Services"** (Yan Huang and David Evans, 2nd International Workshop on
//! Security and Privacy in Cloud Computing, 2011).
//!
//! The paper's insight: many cloud editing applications do all their
//! data-dependent computation client-side, so a client-side *mediator*
//! can keep only **ciphertext** on the server while preserving the
//! application. The technical core is **incremental encryption** —
//! ciphertext that can be updated in sub-linear time as the user edits —
//! extended to variable-length multi-character blocks managed by an
//! **IndexedSkipList**.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `pe-core` | rECB & RPC incremental encryption, delta transformation, baselines |
//! | [`crypto`] | `pe-crypto` | AES, SHA-256, HMAC, PBKDF2, Base32 — all from scratch |
//! | [`indexlist`] | `pe-indexlist` | IndexedSkipList and IndexedAvlTree |
//! | [`delta`] | `pe-delta` | the Google-Docs-style delta protocol |
//! | [`cloud`] | `pe-cloud` | simulated cloud services and the network model |
//! | [`net`] | `pe-net` | real TCP/HTTP transport: codec, server, pooling client |
//! | [`extension`] | `pe-extension` | the privacy mediator ("browser extension") |
//! | [`client`] | `pe-client` | simulated editors, workloads, malicious clients |
//!
//! # Quickstart
//!
//! ```
//! use private_editing::prelude::*;
//! use std::sync::Arc;
//!
//! // An untrusted cloud word processor…
//! let server = Arc::new(DocsServer::new());
//! // …fronted by the privacy mediator.
//! let mut mediator = DocsMediator::new(Arc::clone(&server), MediatorConfig::recb(8));
//! let doc_id = mediator.create_document("correct horse battery staple")?;
//! mediator.save_full(&doc_id, "meet me at noon")?;
//!
//! // The provider never sees the plaintext:
//! assert!(!server.stored_content(&doc_id).unwrap().contains("noon"));
//!
//! // Incremental edits travel as encrypted deltas:
//! let mut edit = Delta::builder();
//! edit.retain(8).insert("me ");
//! mediator.save_delta(&doc_id, &edit.build())?;
//! assert_eq!(mediator.plaintext(&doc_id), Some("meet me me at noon"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pe_client as client;
pub use pe_cloud as cloud;
pub use pe_core as core;
pub use pe_crypto as crypto;
pub use pe_delta as delta;
pub use pe_extension as extension;
pub use pe_indexlist as indexlist;
pub use pe_net as net;
pub use pe_tenant as tenant;

/// The most common imports, for examples and applications.
pub mod prelude {
    pub use pe_client::{DirectChannel, DocsClient, Editor, PrivateChannel, SaveOutcome};
    pub use pe_cloud::bespin::BespinServer;
    pub use pe_cloud::buzzword::BuzzwordServer;
    pub use pe_cloud::docs::DocsServer;
    pub use pe_cloud::{CloudService, Request, Response};
    pub use pe_core::{
        DocumentKey, EditOp, IncrementalCipherDoc, Mode, RecbDocument, RpcDocument, SchemeParams,
    };
    pub use pe_crypto::{CtrDrbg, SystemRandom};
    pub use pe_delta::{diff, Delta, DeltaOp};
    pub use pe_extension::{
        BespinMediator, BuzzwordMediator, DocsMediator, MediatorConfig, Outcome,
    };
    pub use pe_net::{HttpClient, HttpServer, NetError, Router, Service, Transport};
    pub use pe_tenant::{ServiceRecords, TenantDirectory, TenantError};
}
