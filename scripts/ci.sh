#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lints, all offline
# (dependencies are vendored path crates under compat/). Run from the
# repository root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test -q --offline

echo "== cargo clippy =="
cargo clippy --workspace --offline -- -D warnings

echo "== forced-backend crypto matrix =="
# The whole crypto + core suite must pass under every forced AES backend
# so non-AES-NI hosts still exercise the dispatch and fallback paths.
# The aesni pass is skipped gracefully when CPUID says unsupported
# (--detect exits 1), matching the runtime fallback.
backends="scalar table"
if ./target/release/crypto_throughput --detect; then
  backends="$backends aesni"
else
  echo "(CPU lacks AES-NI; skipping forced-aesni pass)"
fi
for backend in $backends; do
  echo "-- PE_CRYPTO_FORCE_BACKEND=$backend --"
  PE_CRYPTO_FORCE_BACKEND="$backend" cargo test -q --offline -p pe-crypto -p pe-core
done

echo "== crypto_throughput smoke =="
# The crypto benchmark must complete and emit valid JSON (tiny sizes,
# one rep — this checks the harness, not the numbers). Every row must
# carry its aes_backend label, and the fallback backends (scalar, table)
# must always be present.
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
./target/release/crypto_throughput --smoke --out "$smoke_out"
python3 - "$smoke_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["rows"]
assert report["bench"] == "crypto_throughput" and rows, "malformed smoke report"
assert isinstance(report["aesni_supported"], bool), "missing aesni_supported"
seen = set()
for row in rows:
    assert row["fast_encrypt_s"] > 0 and row["fast_decrypt_s"] > 0, row
    assert row["aes_backend"] in {"scalar", "table", "aesni"}, row
    seen.add(row["aes_backend"])
assert {"scalar", "table"} <= seen, f"fallback rows missing: {seen}"
if report["aesni_supported"]:
    assert "aesni" in seen, "aesni supported but no aesni rows"
cipher = {row["aes_backend"]: row for row in report["cipher_rows"]}
assert "table" in cipher, "missing table cipher row"
for row in cipher.values():
    assert row["encrypt_mib_s"] > 0 and row["decrypt_mib_s"] > 0, row
if report["aesni_supported"]:
    # The hardware acceptance bar: AES-NI must beat the T-table engine
    # by >= 5x at the block-cipher layer (it lands ~30x on real silicon;
    # the margin absorbs noisy CI machines).
    ratio = (cipher["aesni"]["encrypt_mib_s"] + cipher["aesni"]["decrypt_mib_s"]) \
        / (cipher["table"]["encrypt_mib_s"] + cipher["table"]["decrypt_mib_s"])
    assert ratio >= 5.0, f"aesni only {ratio:.1f}x over table"
    print(f"aesni cipher speedup vs table: {ratio:.1f}x")
print(f"smoke report OK ({len(rows)} rows, backends: {sorted(seen)})")
PY

echo "== net_load smoke (mem + durable sharded store) =="
# The network load bench must complete over real loopback sockets with
# zero unrecovered errors and emit valid JSON. --store adds a second
# sweep over a durable sharded WAL store, so the report must carry both
# mem and sharded-log rows.
net_out="$(mktemp)"
net_store="$(mktemp -d)"
trap 'rm -f "$smoke_out" "$net_out"; rm -rf "$net_store"' EXIT
./target/release/net_load --smoke --store "$net_store" --shards 4 --out "$net_out"
python3 - "$net_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["rows"]
assert report["bench"] == "net_load" and rows, "malformed net_load report"
for row in rows:
    for field in ("store", "clients", "requests", "wall_s", "rps", "p50_ns",
                  "p99_ns", "retries", "errors", "failed_sessions"):
        assert field in row, f"missing {field}: {row}"
    assert row["errors"] == 0 and row["failed_sessions"] == 0, row
    assert row["requests"] > 0 and row["p99_ns"] >= row["p50_ns"] > 0, row
stores = {row["store"] for row in rows}
assert "mem" in stores, f"mem rows missing: {stores}"
assert any(s.startswith("sharded-log") for s in stores), f"durable rows missing: {stores}"
print(f"net_load report OK ({len(rows)} rows, stores: {sorted(stores)})")
PY

echo "== collab_load smoke (live fan-out over a durable store) =="
# The live-collaboration bench must complete over real sockets with
# byte-for-byte convergence, zero unrecovered errors, and valid JSON.
collab_out="$(mktemp)"
collab_store="$(mktemp -d)"
trap 'rm -f "$smoke_out" "$net_out" "$collab_out"; rm -rf "$net_store" "$collab_store"' EXIT
./target/release/collab_load --smoke --store "$collab_store" --out "$collab_out"
python3 - "$collab_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["rows"]
assert report["bench"] == "collab_load" and rows, "malformed collab report"
for row in rows:
    assert row["errors"] == 0, f"unrecovered session errors: {row}"
    assert row["converged"] is True, f"editors diverged: {row}"
    assert row["saves"] > 0 and row["deliveries"] > 0, row
print(f"collab_load report OK ({len(rows)} rows)")
PY

echo "== store_recovery smoke =="
# The durable-store bench must complete and emit valid JSON covering
# both sweeps (append throughput per fsync policy, replay vs log size).
store_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$net_out" "$collab_out" "$store_out"; rm -rf "$net_store" "$collab_store"' EXIT
./target/release/store_recovery --smoke --out "$store_out"
python3 - "$store_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "store_recovery", "malformed store report"
appends, replays = report["append_rows"], report["replay_rows"]
groups, sharded = report["group_commit_rows"], report["sharded_replay_rows"]
assert appends and replays and groups and sharded, "empty store report"
policies = {row["policy"] for row in appends}
assert {"always", "never"} <= policies, policies
for row in appends:
    assert row["appends_per_s"] > 0 and row["records"] > 0, row
for row in replays:
    assert row["replay_per_s"] > 0 and row["log_bytes"] > 0, row
for row in groups:
    # Under fsync=always every append either led a group fsync or rode
    # a neighbour's batch — the counters must account for all of them.
    assert row["fsyncs"] + row["fsyncs_saved"] == row["records"], row
    assert row["writers"] > 0 and row["shards"] > 0 and row["max_batch"] >= 1, row
for row in sharded:
    assert row["replay_per_s"] > 0 and row["docs"] == row["records"], row
assert {row["shards"] for row in sharded} != {1}, "sharded sweep must cover multi-shard stores"
print(f"store report OK ({len(appends)} append, {len(groups)} group-commit, "
      f"{len(replays)} replay, {len(sharded)} sharded-replay rows)")
PY

echo "== tenant_bench smoke =="
# The multi-tenant key bench must complete and emit valid JSON: wrap and
# unwrap rows, grant/revoke rows whose stored bodies never changed, and
# a recovery row. Flatness is asserted loosely here (noisy CI hosts);
# the committed full run is held to the tight bar below.
tenant_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$net_out" "$collab_out" "$store_out" "$tenant_out"; rm -rf "$net_store" "$collab_store"' EXIT
./target/release/tenant_bench --smoke --out "$tenant_out"
python3 - "$tenant_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "tenant_bench", "malformed tenant report"
wraps, grants, recs = report["wrap_rows"], report["grant_rows"], report["recovery_rows"]
assert wraps and grants and recs, "empty tenant report"
ops = {row["op"] for row in wraps}
assert "wrap" in ops and "unwrap" in ops, ops
for row in wraps:
    assert row["mean_ns"] > 0 and row["reps"] > 0, row
for row in grants:
    assert row["body_unchanged"] is True, f"membership change touched a body: {row}"
    assert row["grant_us"] > 0 and row["accept_us"] > 0 and row["revoke_us"] > 0, row
sizes = [row["body_bytes"] for row in grants]
assert max(sizes) >= 64 * min(sizes), f"size sweep too narrow: {sizes}"
lo, hi = min(r["grant_us"] for r in grants), max(r["grant_us"] for r in grants)
assert hi <= 10 * lo, f"grant cost grew with body size: {lo:.1f}..{hi:.1f} us"
for row in recs:
    assert row["users"] > 0 and row["docs"] > 0 and row["grants"] == row["docs"], row
print(f"tenant report OK ({len(grants)} sizes, grant {lo:.1f}..{hi:.1f} us)")
PY

echo "== pedit serve smoke (sharded store) =="
# Serve a sharded store on an ephemeral port, run a mediated edit over
# the real socket, check the decrypted result and that the wire store
# holds only ciphertext, then stop the server cleanly. --shards 4 is
# explicit: the default is the core count, which is 1 on small runners.
serve_store="$(mktemp -u)"
serve_addr="$(mktemp -u)"
pedit() { ./target/release/pedit "$@"; }
# Spawn the binary directly (not via the function) so $! is the server
# itself — the crash drill's kill -9 must hit the real process, not a
# wrapper subshell.
./target/release/pedit --store "$serve_store" serve --addr 127.0.0.1:0 \
  --addr-file "$serve_addr" --shards 4 &
serve_pid=$!
cleanup_serve() {
  kill "$serve_pid" 2>/dev/null || true
  rm -f "$smoke_out" "$net_out" "$collab_out" "$store_out" "$tenant_out" "$serve_addr"
  rm -rf "$serve_store" "$net_store" "$collab_store"
}
trap cleanup_serve EXIT
for _ in $(seq 1 100); do
  [ -s "$serve_addr" ] && break
  sleep 0.1
done
[ -s "$serve_addr" ] || { echo "serve never wrote its address" >&2; exit 1; }
addr="$(cat "$serve_addr")"
doc="$(pedit --connect "$addr" create --password ci-pw | sed 's/^created //')"
pedit --connect "$addr" save --doc "$doc" --password ci-pw --text "ci wire secret"
shown="$(pedit --connect "$addr" show --doc "$doc" --password ci-pw)"
[ "$shown" = "ci wire secret" ] || { echo "bad decrypt over the wire: $shown" >&2; exit 1; }
raw="$(pedit --connect "$addr" raw --doc "$doc")"
case "$raw" in *secret*) echo "plaintext leaked to the provider" >&2; exit 1;; esac

echo "== high-concurrency smoke (256 clients vs live serve) =="
# 256 concurrent mediated editors against the same live pedit serve.
# net_load exits nonzero on any unrecovered error or failed session,
# so success here means every one of the 256 keep-alive connections was
# held open and served by the event loop simultaneously.
./target/release/net_load --connect "$addr" --clients 256 --edits 1
stats="$(pedit --connect "$addr" stats --format json)"
case "$stats" in
  *net.server.conns_open*) ;;
  *) echo "live stats missing server gauge: $stats" >&2; exit 1;;
esac

echo "== live collaboration drill (two editors, change-stream push) =="
# Two concurrent `edit --live` sessions on one encrypted document, each
# holding a change-stream subscription and rebasing the other's pushed
# changes between ops. Both must exit zero and the merged document must
# contain every editor's contribution; `watch` then reads the stream
# head over its own dedicated subscription.
ldoc="$(pedit --connect "$addr" create --password live-pw | sed 's/^created //')"
pedit --connect "$addr" save --doc "$ldoc" --password live-pw --text "base"
pedit --connect "$addr" edit --live --doc "$ldoc" --password live-pw \
  --editor drill-a --ops "a: from-a1,a: from-a2" --rounds 4 --wait-ms 200 >/dev/null &
live_a=$!
pedit --connect "$addr" edit --live --doc "$ldoc" --password live-pw \
  --editor drill-b --ops "a: from-b1,a: from-b2" --rounds 4 --wait-ms 200 >/dev/null &
live_b=$!
wait "$live_a" || { echo "live editor A failed" >&2; exit 1; }
wait "$live_b" || { echo "live editor B failed" >&2; exit 1; }
merged="$(pedit --connect "$addr" show --doc "$ldoc" --password live-pw)"
for token in from-a1 from-a2 from-b1 from-b2; do
  case "$merged" in
    *"$token"*) ;;
    *) echo "live merge lost $token: $merged" >&2; exit 1;;
  esac
done
pedit --connect "$addr" watch --doc "$ldoc" --password live-pw --rounds 1 --wait-ms 100 \
  | grep -q "watched 1 round" || { echo "watch failed on the live doc" >&2; exit 1; }
lraw="$(pedit --connect "$addr" raw --doc "$ldoc")"
case "$lraw" in *from-a1*|*from-b1*) echo "live plaintext leaked to the provider" >&2; exit 1;; esac

echo "== crash-recovery drill (sharded) =="
# SIGKILL the running sharded server mid-flight: every save it
# acknowledged must be on disk, fsck must walk every shard and call the
# store healthy, and a restarted server must pick up exactly where the
# dead one left off.
pedit --connect "$addr" save --doc "$doc" --password ci-pw --text "acked then killed"
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
[ -f "$serve_store/pe-shards" ] || { echo "serve did not create a sharded layout" >&2; exit 1; }
recovered="$(pedit --store "$serve_store" show --doc "$doc" --password ci-pw)"
[ "$recovered" = "acked then killed" ] || { echo "acknowledged save lost: $recovered" >&2; exit 1; }
fsck_out="$(pedit fsck "$serve_store")"
echo "$fsck_out" | grep -q "store healthy" || { echo "fsck failed after kill" >&2; exit 1; }
echo "$fsck_out" | grep -q "\[shard-003\]" || { echo "fsck did not walk every shard" >&2; exit 1; }
pedit compact "$serve_store" >/dev/null
pedit fsck "$serve_store" | grep -q "store healthy" || { echo "fsck failed after compact" >&2; exit 1; }
rm -f "$serve_addr"
./target/release/pedit --store "$serve_store" serve --addr 127.0.0.1:0 --addr-file "$serve_addr" &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -s "$serve_addr" ] && break
  sleep 0.1
done
[ -s "$serve_addr" ] || { echo "restarted serve never wrote its address" >&2; exit 1; }
addr="$(cat "$serve_addr")"
survived="$(pedit --connect "$addr" show --doc "$doc" --password ci-pw)"
[ "$survived" = "acked then killed" ] || { echo "restart lost the save: $survived" >&2; exit 1; }
# The collaboratively merged document must ride out the kill -9 too:
# every accepted live save was WAL-durable before its ack.
live_survived="$(pedit --connect "$addr" show --doc "$ldoc" --password live-pw)"
[ "$live_survived" = "$merged" ] \
  || { echo "kill -9 lost the merged live doc: $live_survived" >&2; exit 1; }

echo "== multi-tenant drill (live serve) =="
# Two users against the restarted server: alice creates a document under
# a wrapped per-document key, bob can read only between grant and
# revoke, and the provider-side ciphertext is byte-identical across both
# membership changes — grant/revoke are wrapped-key-record operations,
# never a re-encryption.
tpedit() { pedit --connect "$addr" --kdf-iters 64 "$@"; }
tpedit user register --name drill-alice --passphrase apw
tpedit user register --name drill-bob --passphrase bpw
tdoc="$(tpedit create --user drill-alice --passphrase apw | sed 's/^created //')"
tpedit save --doc "$tdoc" --user drill-alice --passphrase apw --text "tenant wire secret"
if tpedit show --doc "$tdoc" --user drill-bob --passphrase bpw >/dev/null 2>&1; then
  echo "unauthorized tenant read did not fail closed" >&2; exit 1
fi
traw="$(pedit --connect "$addr" raw --doc "$tdoc")"
case "$traw" in *secret*) echo "tenant plaintext leaked to the provider" >&2; exit 1;; esac
# The invite code is the last line of the grant output.
invite="$(tpedit grant --doc "$tdoc" --user drill-alice --passphrase apw --to drill-bob | tail -n 1)"
[ "$(pedit --connect "$addr" raw --doc "$tdoc")" = "$traw" ] \
  || { echo "grant re-encrypted the body" >&2; exit 1; }
tpedit accept --doc "$tdoc" --user drill-bob --passphrase bpw --invite "$invite"
bobread="$(tpedit show --doc "$tdoc" --user drill-bob --passphrase bpw)"
[ "$bobread" = "tenant wire secret" ] || { echo "granted tenant read failed: $bobread" >&2; exit 1; }
tpedit insert --doc "$tdoc" --user drill-bob --passphrase bpw --at 0 --text "shared: " >/dev/null
traw="$(pedit --connect "$addr" raw --doc "$tdoc")"
tpedit revoke --doc "$tdoc" --user drill-alice --passphrase apw --to drill-bob >/dev/null
[ "$(pedit --connect "$addr" raw --doc "$tdoc")" = "$traw" ] \
  || { echo "revoke re-encrypted the body" >&2; exit 1; }
if tpedit show --doc "$tdoc" --user drill-bob --passphrase bpw >/dev/null 2>&1; then
  echo "revoked tenant read did not fail closed" >&2; exit 1
fi
aliceread="$(tpedit show --doc "$tdoc" --user drill-alice --passphrase apw)"
[ "$aliceread" = "shared: tenant wire secret" ] \
  || { echo "owner read broken after revoke: $aliceread" >&2; exit 1; }
echo "tenant drill OK ($tdoc shared and revoked with zero re-encryption)"

pedit --connect "$addr" stop
wait "$serve_pid"
echo "serve + crash drill OK ($doc survived kill -9 and restart)"

echo "== committed benchmark reports =="
# The checked-in BENCH_*.json files must match the schema the current
# binaries emit — a bench schema change without regenerated reports is
# a CI failure, not a silent drift.
python3 - <<'PY'
import json
with open("BENCH_store.json") as f:
    store = json.load(f)
assert store["bench"] == "store_recovery"
for key in ("append_rows", "group_commit_rows", "replay_rows", "sharded_replay_rows"):
    assert store[key], f"BENCH_store.json missing {key}"
single = next(r for r in store["append_rows"] if r["policy"] == "always")
best = max(r["appends_per_s"] for r in store["group_commit_rows"]
           if r["policy"] == "always" and r["writers"] >= 8)
assert best >= 5 * single["appends_per_s"], \
    f"group commit {best:.0f}/s < 5x single-writer {single['appends_per_s']:.0f}/s"
with open("BENCH_net.json") as f:
    net = json.load(f)
assert net["bench"] == "net_load"
stores = {row["store"] for row in net["rows"]}
assert "mem" in stores and any(s.startswith("sharded-log") for s in stores), stores
assert all(row["errors"] == 0 and row["failed_sessions"] == 0 for row in net["rows"])
with open("BENCH_collab.json") as f:
    collab = json.load(f)
assert collab["bench"] == "collab_load"
crows = collab["rows"]
assert crows and {r["editors"] for r in crows} >= {2, 8, 32}, \
    f"committed collab sweep must cover K=2,8,32: {[r['editors'] for r in crows]}"
for row in crows:
    assert row["errors"] == 0, f"unrecovered collab errors: {row}"
    assert row["converged"] is True, f"collab editors diverged: {row}"
    assert row["saves"] > 0 and row["deliveries"] > 0 and row["doc_bytes"] > 0, row
    assert row["push_p99_ns"] > 0 and row["poll_p50_ns"] > 0, row
    # The change-stream claim: pushed delivery beats the poll interval
    # even at the p99, at every fan-out level.
    assert row["push_p99_ns"] < row["poll_interval_ms"] * 1_000_000, \
        f"push p99 {row['push_p99_ns']}ns >= {row['poll_interval_ms']}ms poll interval: {row}"
with open("BENCH_tenant.json") as f:
    tenant = json.load(f)
assert tenant["bench"] == "tenant_bench"
grants = tenant["grant_rows"]
assert grants and all(r["body_unchanged"] for r in grants), "a membership change touched a body"
sizes = [r["body_bytes"] for r in grants]
assert min(sizes) <= 1024 and max(sizes) >= 1024 * 1024, \
    f"committed sweep must span 1 KiB..1 MiB: {sizes}"
# The paper-level claim: grant/revoke cost is independent of document
# size. Over a 1024x size range the committed numbers must stay within
# a small constant factor.
for field in ("grant_us", "revoke_us"):
    lo = min(r[field] for r in grants)
    hi = max(r[field] for r in grants)
    assert hi <= 5 * lo, f"{field} not flat across sizes: {lo:.1f}..{hi:.1f} us"
rec = tenant["recovery_rows"][0]
assert rec["users"] >= 10_000 and rec["docs"] >= 10_000, rec
assert rec["reopen_wall_s"] < 5.0, f"directory recovery too slow: {rec}"
print(f"committed reports OK (group commit {best / single['appends_per_s']:.1f}x "
      f"over single-writer fsync=always; tenant grant flat over "
      f"{max(sizes) // min(sizes)}x body sizes)")
PY

echo "CI OK"
