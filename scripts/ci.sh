#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lints, all offline
# (dependencies are vendored path crates under compat/). Run from the
# repository root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test -q --offline

echo "== cargo clippy =="
cargo clippy --workspace --offline -- -D warnings

echo "CI OK"
