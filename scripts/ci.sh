#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lints, all offline
# (dependencies are vendored path crates under compat/). Run from the
# repository root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test -q --offline

echo "== cargo clippy =="
cargo clippy --workspace --offline -- -D warnings

echo "== crypto_throughput smoke =="
# The crypto benchmark must complete and emit valid JSON (tiny sizes,
# one rep — this checks the harness, not the numbers).
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
./target/release/crypto_throughput --smoke --out "$smoke_out"
python3 - "$smoke_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["rows"]
assert report["bench"] == "crypto_throughput" and rows, "malformed smoke report"
for row in rows:
    assert row["fast_encrypt_s"] > 0 and row["fast_decrypt_s"] > 0, row
print(f"smoke report OK ({len(rows)} rows)")
PY

echo "CI OK"
