#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and lints, all offline
# (dependencies are vendored path crates under compat/). Run from the
# repository root: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test -q --offline

echo "== cargo clippy =="
cargo clippy --workspace --offline -- -D warnings

echo "== crypto_throughput smoke =="
# The crypto benchmark must complete and emit valid JSON (tiny sizes,
# one rep — this checks the harness, not the numbers).
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
./target/release/crypto_throughput --smoke --out "$smoke_out"
python3 - "$smoke_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["rows"]
assert report["bench"] == "crypto_throughput" and rows, "malformed smoke report"
for row in rows:
    assert row["fast_encrypt_s"] > 0 and row["fast_decrypt_s"] > 0, row
print(f"smoke report OK ({len(rows)} rows)")
PY

echo "== net_load smoke =="
# The network load bench must complete over real loopback sockets with
# zero unrecovered errors and emit valid JSON.
net_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$net_out"' EXIT
./target/release/net_load --smoke --out "$net_out"
python3 - "$net_out" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = report["rows"]
assert report["bench"] == "net_load" and rows, "malformed net_load report"
for row in rows:
    for field in ("clients", "requests", "wall_s", "rps", "p50_ns",
                  "p99_ns", "retries", "errors", "failed_sessions"):
        assert field in row, f"missing {field}: {row}"
    assert row["errors"] == 0 and row["failed_sessions"] == 0, row
    assert row["requests"] > 0 and row["p99_ns"] >= row["p50_ns"] > 0, row
print(f"net_load report OK ({len(rows)} rows)")
PY

echo "== pedit serve smoke =="
# Serve a store on an ephemeral port, run a mediated edit over the real
# socket, check the decrypted result and that the wire store holds only
# ciphertext, then stop the server cleanly.
serve_store="$(mktemp -u)"
serve_addr="$(mktemp -u)"
pedit() { ./target/release/pedit "$@"; }
pedit --store "$serve_store" serve --addr 127.0.0.1:0 --addr-file "$serve_addr" &
serve_pid=$!
cleanup_serve() {
  kill "$serve_pid" 2>/dev/null || true
  rm -f "$smoke_out" "$net_out" "$serve_store" "$serve_addr"
}
trap cleanup_serve EXIT
for _ in $(seq 1 100); do
  [ -s "$serve_addr" ] && break
  sleep 0.1
done
[ -s "$serve_addr" ] || { echo "serve never wrote its address" >&2; exit 1; }
addr="$(cat "$serve_addr")"
doc="$(pedit --connect "$addr" create --password ci-pw | sed 's/^created //')"
pedit --connect "$addr" save --doc "$doc" --password ci-pw --text "ci wire secret"
shown="$(pedit --connect "$addr" show --doc "$doc" --password ci-pw)"
[ "$shown" = "ci wire secret" ] || { echo "bad decrypt over the wire: $shown" >&2; exit 1; }
raw="$(pedit --connect "$addr" raw --doc "$doc")"
case "$raw" in *secret*) echo "plaintext leaked to the provider" >&2; exit 1;; esac
pedit --connect "$addr" stop
wait "$serve_pid"
echo "serve smoke OK ($doc round-tripped, store ciphertext-only)"

echo "CI OK"
